//! Integration: the `ccam` CLI binary end to end — generate a network,
//! build databases with several methods, inspect and query them.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ccam(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccam"))
        .args(args)
        .output()
        .expect("spawn ccam")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccam-cli-{}-{}", std::process::id(), name));
    p
}

#[test]
fn generate_build_stats_query_pipeline() {
    let net = tmp("pipe.net");
    let db = tmp("pipe.db");
    let net_s = net.to_str().unwrap();
    let db_s = db.to_str().unwrap();

    // generate
    let out = ccam(&["generate", net_s, "--grid", "8", "--seed", "7"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("nodes"));

    // build (CCAM-S)
    let out = ccam(&["build", net_s, db_s, "--block", "1024"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("CCAM-S"), "{text}");
    assert!(text.contains("CRR"), "{text}");

    // stats
    let out = ccam(&["stats", db_s]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("CRR"), "{text}");
    assert!(text.contains("records"), "{text}");

    // find: grab a node id from the window query over everything.
    let out = ccam(&["window", db_s, "0", "0", "99999", "99999"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let first_id = text
        .lines()
        .find(|l| l.contains(" at ("))
        .and_then(|l| l.split_whitespace().next())
        .expect("at least one node")
        .to_string();
    assert!(text.contains("nodes in window"));

    let out = ccam(&["find", db_s, &first_id]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains(&format!("node {first_id}")));

    let out = ccam(&["succ", db_s, &first_id]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("successors"));

    // bench (small).
    let out = ccam(&["bench", db_s, "--routes", "5", "--len", "6"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("page accesses/route"));

    std::fs::remove_file(&net).ok();
    std::fs::remove_file(&db).ok();
}

#[test]
fn build_every_method_and_astar() {
    let net = tmp("methods.net");
    let net_s = net.to_str().unwrap();
    assert!(ccam(&["generate", net_s, "--grid", "7", "--seed", "3"])
        .status
        .success());

    for method in ["ccam-s", "ccam-d", "dfs", "bfs", "wdfs", "grid"] {
        let db = tmp(&format!("m-{method}.db"));
        let db_s = db.to_str().unwrap();
        let out = ccam(&["build", net_s, db_s, "--method", method, "--block", "512"]);
        assert!(out.status.success(), "{method}: {out:?}");

        // A* between two window-discovered nodes.
        let w = ccam(&["window", db_s, "0", "0", "99999", "99999"]);
        let text = stdout(&w);
        let ids: Vec<&str> = text
            .lines()
            .filter(|l| l.contains(" at ("))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert!(ids.len() > 10, "{method}");
        let out = ccam(&["astar", db_s, ids[0], ids[ids.len() - 1]]);
        assert!(out.status.success(), "{method}: {out:?}");
        assert!(stdout(&out).contains("cost"), "{method}");
        std::fs::remove_file(&db).ok();
    }
    std::fs::remove_file(&net).ok();
}

#[test]
fn check_and_replay() {
    let net = tmp("cr.net");
    let db = tmp("cr.db");
    let trace = tmp("cr.trace");
    assert!(ccam(&["generate", net.to_str().unwrap(), "--grid", "6"])
        .status
        .success());
    assert!(
        ccam(&["build", net.to_str().unwrap(), db.to_str().unwrap()])
            .status
            .success()
    );

    // check: clean database.
    let out = ccam(&["check", db.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("no integrity issues"));

    // replay: trace built from real node ids.
    let w = ccam(&["window", db.to_str().unwrap(), "0", "0", "99999", "99999"]);
    let ids: Vec<String> = stdout(&w)
        .lines()
        .filter(|l| l.contains(" at ("))
        .filter_map(|l| l.split_whitespace().next())
        .map(String::from)
        .collect();
    let text = format!(
        "find {}\nsucc {}\nastar {} {}\ndelete-node {}\nreinsert-node {}\n",
        ids[0],
        ids[1],
        ids[0],
        ids[ids.len() - 1],
        ids[2],
        ids[2]
    );
    std::fs::write(&trace, text).unwrap();
    let out = ccam(&["replay", db.to_str().unwrap(), trace.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("replayed 5 ops"), "{text}");
    assert!(text.contains("0 misses"), "{text}");

    // The database is still clean after the mutating replay.
    let out = ccam(&["check", db.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");

    // Malformed traces are rejected with a line number.
    std::fs::write(&trace, "find 1\nbogus 2\n").unwrap();
    let out = ccam(&["replay", db.to_str().unwrap(), trace.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));

    std::fs::remove_file(&net).ok();
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn profile_explain_and_metrics_json() {
    let net = tmp("obs.net");
    let db = tmp("obs.db");
    let metrics = tmp("obs.metrics.json");
    let net_s = net.to_str().unwrap();
    let db_s = db.to_str().unwrap();
    let metrics_s = metrics.to_str().unwrap();

    assert!(ccam(&["generate", net_s, "--grid", "8", "--seed", "11"])
        .status
        .success());
    assert!(ccam(&["build", net_s, db_s, "--block", "1024"])
        .status
        .success());

    // profile: the cost-model validation table, text and JSON forms.
    let out = ccam(&[
        "profile", db_s, "--ops", "16", "--routes", "3", "--len", "8",
    ]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    for needle in [
        "cost-model validation",
        "find",
        "get_successors",
        "route",
        "rel.err",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    let out = ccam(&[
        "profile", db_s, "--ops", "8", "--routes", "2", "--len", "6", "--json",
    ]);
    assert!(out.status.success(), "{out:?}");
    let json = stdout(&out);
    assert!(
        json.contains("\"classes\"") && json.contains("\"mean_rel_error\""),
        "{json}"
    );

    // a node id for the query commands.
    let w = ccam(&["window", db_s, "0", "0", "99999", "99999"]);
    let wtext = stdout(&w);
    let id = wtext
        .lines()
        .find(|l| l.contains(" at ("))
        .and_then(|l| l.split_whitespace().next())
        .expect("at least one node")
        .to_string();

    // --explain prints the ordered page-access trace.
    let out = ccam(&["succ", db_s, &id, "--explain"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("explain get_successors_degraded"), "{text}");
    assert!(text.contains("trace:"), "{text}");
    let out = ccam(&["find", db_s, &id, "--explain"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("explain find"), "{text}");
    // The trace labels every access as hit, miss or write.
    let trace_line = text.lines().find(|l| l.contains("trace:")).unwrap();
    assert!(
        ["hit", "miss", "write"]
            .iter()
            .any(|k| trace_line.contains(k)),
        "{trace_line}"
    );

    // --metrics-json dumps counters and per-operation histograms.
    let out = ccam(&["succ", db_s, &id, "--metrics-json", metrics_s]);
    assert!(out.status.success(), "{out:?}");
    let dumped = std::fs::read_to_string(&metrics).expect("metrics file written");
    for needle in [
        "\"counters\"",
        "\"histograms\"",
        "io.physical_reads",
        "op.get_successors_degraded.count",
        "op.get_successors_degraded.data_page_accesses",
    ] {
        assert!(dumped.contains(needle), "missing {needle:?} in:\n{dumped}");
    }
    assert_eq!(dumped.matches('{').count(), dumped.matches('}').count());

    std::fs::remove_file(&net).ok();
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn errors_are_clean() {
    // Unknown command.
    let out = ccam(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing database.
    let out = ccam(&["stats", "/nonexistent/definitely-not-here.db"]);
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());

    // Bad node id.
    let net = tmp("err.net");
    let db = tmp("err.db");
    assert!(ccam(&["generate", net.to_str().unwrap(), "--grid", "5"])
        .status
        .success());
    assert!(
        ccam(&["build", net.to_str().unwrap(), db.to_str().unwrap()])
            .status
            .success()
    );
    let out = ccam(&["find", db.to_str().unwrap(), "18446744073709551615"]);
    assert!(!out.status.success(), "missing node must exit nonzero");
    let out = ccam(&["find", db.to_str().unwrap(), "not-a-number"]);
    assert!(!out.status.success());
    std::fs::remove_file(&net).ok();
    std::fs::remove_file(&db).ok();
}
