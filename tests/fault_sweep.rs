//! Seeded randomized fault sweep: a mixed operation workload runs over a
//! store that injects transient glitches and persistent page corruption
//! (`CorruptStore`), shielded by a `RetryStore`. The invariant is the
//! robustness contract of the storage stack:
//!
//! * with the retry budget above the glitch burst length, every
//!   operation — reads and multi-page mutations alike — succeeds;
//! * persistent corruption surfaces as the typed
//!   [`StorageError::ChecksumMismatch`] on strict paths and as a
//!   [`Degraded`](ccam::core::Degraded) answer (bad page skipped and
//!   reported) on degraded paths — never as a panic;
//! * once the corruption heals, the surviving file passes the full
//!   integrity verifier.
//!
//! Everything derives from the proptest-generated seed; a failing
//! schedule replays exactly.

use ccam::core::am::{AccessMethod, CcamBuilder};
use ccam::core::check;
use ccam::graph::generators::grid_network;
use ccam::storage::{CorruptStore, MemPageStore, RetryPolicy, RetryStore, StorageError};
use proptest::prelude::*;

/// Local default kept modest (each case builds a CCAM file); CI elevates
/// via `PROPTEST_CASES`.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]
    #[test]
    fn mixed_ops_survive_transient_and_persistent_faults(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 8..24),
    ) {
        let (store, ctl) = CorruptStore::new(MemPageStore::new(512).unwrap(), seed);
        let store = RetryStore::new(
            store,
            // Budget comfortably above the burst length of 2, so even a
            // glitch chaining into a fresh one stays absorbed.
            RetryPolicy {
                max_attempts: 8,
                base_delay_ticks: 1,
                max_delay_ticks: 4,
                jitter_seed: None,
            },
        );
        let net = grid_network(8, 8, 1.0);
        let mut am = CcamBuilder::new(512).build_static_on(store, &net).unwrap();
        let ids = net.node_ids();

        // -- Phase 1: transient glitches only; every op must succeed. ----
        ctl.set_fault_rate(16, 2);
        for (code, ai, bi) in &ops {
            let a = ids[*ai as usize % ids.len()];
            let b = ids[*bi as usize % ids.len()];
            match code {
                0 => {
                    let r = am.find(a);
                    prop_assert!(r.is_ok(), "find under glitches: {r:?}");
                }
                1 => {
                    let r = am.get_successors(a);
                    prop_assert!(r.is_ok(), "get_successors under glitches: {r:?}");
                }
                2 if a != b => {
                    let cost = 1 + (*bi as u32 % 40);
                    let r = am.insert_edge(a, b, cost);
                    prop_assert!(r.is_ok(), "insert_edge under glitches: {r:?}");
                }
                3 => {
                    let r = am.delete_edge(a, b);
                    prop_assert!(r.is_ok(), "delete_edge under glitches: {r:?}");
                }
                4 => {
                    // Delete and immediately re-insert: the heaviest
                    // multi-page mutation pair in the stack.
                    let del = am.delete_node(a);
                    prop_assert!(del.is_ok(), "delete_node under glitches: {del:?}");
                    if let Some(del) = del.unwrap() {
                        let r = am.insert_node(&del.data, &del.incoming);
                        prop_assert!(r.is_ok(), "insert_node under glitches: {r:?}");
                    }
                }
                _ => {}
            }
        }

        // -- Phase 2: one page rots persistently. ------------------------
        ctl.set_fault_rate(0, 1); // isolate the persistent fault
        let victim = ids[seed as usize % ids.len()];
        let vpage = am.file().find(victim).unwrap().expect("phase 1 preserves every node").0;
        // Push every dirty page down and evict, so reads go to the store.
        am.file().commit().unwrap();
        am.file().pool().clear().unwrap();
        ctl.mark_corrupt(vpage);

        // The degraded lookup detects the corruption, quarantines the
        // page, and reports the skip instead of aborting.
        let miss = am.file().find_degraded(victim).unwrap();
        prop_assert!(miss.value.is_none());
        prop_assert!(miss.skipped.contains(&vpage), "skip list {:?} missing {vpage:?}", miss.skipped);
        prop_assert!(am.file().is_quarantined(vpage));

        // Strict and degraded reads over the whole id space: success, the
        // typed checksum error naming the bad page, or a Degraded answer.
        for &id in ids.iter().take(12) {
            match am.find(id) {
                Ok(_) => {}
                Err(StorageError::ChecksumMismatch { page, .. }) => {
                    prop_assert_eq!(page, vpage);
                }
                Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            }
            let deg = am.get_successors_degraded(id);
            prop_assert!(deg.is_ok(), "degraded read must not abort: {deg:?}");
            for p in deg.unwrap().skipped {
                prop_assert_eq!(p, vpage);
            }
        }

        // -- Phase 3: heal; the surviving file verifies clean. -----------
        ctl.clear_corrupt(vpage);
        am.file().clear_quarantined();
        prop_assert!(am.find(victim).unwrap().is_some());
        let report = check::verify(am.file()).unwrap();
        prop_assert!(
            report.issues.is_empty(),
            "verifier found issues after heal: {:?}",
            report.issues
        );
    }
}
