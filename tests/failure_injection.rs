//! Integration: injected storage failures surface as errors at every
//! layer — access-method operations, queries, creation — never as panics
//! or silent data corruption, and the stack recovers once I/O heals.

use ccam::core::am::{AccessMethod, CcamBuilder};
use ccam::core::query::route::evaluate_path;
use ccam::core::query::search::dijkstra;
use ccam::graph::generators::grid_network;
use ccam::storage::{FlakyStore, MemPageStore};

#[test]
fn create_fails_cleanly_when_io_dies_immediately() {
    let net = grid_network(6, 6, 1.0);
    let (store, switch) = FlakyStore::new(MemPageStore::new(512).unwrap());
    switch.arm_after(0);
    let r = CcamBuilder::new(512).build_static_on(store, &net);
    assert!(r.is_err(), "create over dead storage must fail, not panic");
}

#[test]
fn reads_fail_then_recover() {
    let net = grid_network(8, 8, 1.0);
    let (store, switch) = FlakyStore::new(MemPageStore::new(512).unwrap());
    let am = CcamBuilder::new(512).build_static_on(store, &net).unwrap();
    let id = net.node_ids()[30];

    // Healthy read.
    assert!(am.find(id).unwrap().is_some());

    // Kill I/O; a cold read must error.
    am.file().pool().clear().unwrap();
    switch.arm_after(0);
    assert!(am.find(id).is_err());
    assert!(am.get_successors(id).is_err());

    // Heal; everything works again and the data is intact.
    switch.disarm();
    let rec = am.find(id).unwrap().unwrap();
    assert_eq!(&rec, net.node(id).unwrap());
}

#[test]
fn queries_propagate_errors() {
    let net = grid_network(7, 7, 1.0);
    let (store, switch) = FlakyStore::new(MemPageStore::new(512).unwrap());
    let am = CcamBuilder::new(512).build_static_on(store, &net).unwrap();
    let ids = net.node_ids();

    am.file().pool().clear().unwrap();
    switch.arm_after(1); // the first page fetch succeeds, then death
    let r = dijkstra(&am, ids[0], ids[ids.len() - 1]);
    assert!(r.is_err(), "search across dead storage must error");

    switch.disarm();
    am.file().pool().clear().unwrap();
    switch.arm_after(0);
    assert!(evaluate_path(&am, &ids[..3]).is_err());

    switch.disarm();
    assert!(dijkstra(&am, ids[0], ids[ids.len() - 1]).unwrap().is_some());
}

#[test]
fn data_survives_a_mid_update_failure_window() {
    // Updates during an outage fail; after healing, every record that the
    // failed operation touched is still findable and decodable (the
    // buffer pool held the dirty pages, nothing was half-written to the
    // store at a torn boundary).
    let net = grid_network(8, 8, 1.0);
    let (store, switch) = FlakyStore::new(MemPageStore::new(512).unwrap());
    let mut am = CcamBuilder::new(512).build_static_on(store, &net).unwrap();
    let ids = net.node_ids();

    let mut errored = 0;
    for (i, &id) in ids.iter().take(12).enumerate() {
        if i % 3 == 1 {
            // A tiny failure window around this delete.
            am.file().pool().clear().unwrap();
            switch.arm_after(1);
        }
        match am.delete_node(id) {
            Ok(Some(del)) => {
                switch.disarm();
                am.insert_node(&del.data, &del.incoming).unwrap();
            }
            Ok(None) => panic!("node {id:?} should exist"),
            Err(_) => {
                errored += 1;
                switch.disarm();
            }
        }
    }
    assert!(errored > 0, "the failure window must have fired");

    // After healing: every node findable, cross-references consistent.
    // (A delete that died mid-flight may have partially patched neighbor
    // lists — acceptable for a non-transactional 1995 design — but
    // records themselves must never be torn.)
    for id in net.node_ids() {
        if let Some(rec) = am.find(id).unwrap() {
            assert_eq!(rec.id, id);
            for e in &rec.successors {
                // Target records, when present, decode fine.
                let _ = am.find(e.to).unwrap();
            }
        }
    }
}
