//! Integration: concurrent read queries. The buffer pool serialises page
//! access internally (`parking_lot::Mutex`), so any number of reader
//! threads can share one access method — a property a production release
//! must actually demonstrate, not just claim.

use std::sync::Arc;

use ccam::core::am::{AccessMethod, Ccam, CcamBuilder};
use ccam::core::query::route::evaluate_route;
use ccam::core::query::search::dijkstra;
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::walks::random_walk_routes;

fn build() -> (Ccam, ccam::graph::Network) {
    let net = road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 5,
    });
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    (am, net)
}

#[test]
fn parallel_finds_agree_with_serial() {
    let (am, net) = build();
    let am = Arc::new(am);
    let ids = net.node_ids();
    let threads = 8;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let am = Arc::clone(&am);
                let ids = ids.clone();
                let net = &net;
                s.spawn(move || {
                    for (i, &id) in ids.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        let rec = am.find(id).unwrap().unwrap();
                        assert_eq!(&rec, net.node(id).unwrap());
                        let succs = am.get_successors(id).unwrap();
                        assert_eq!(succs.len(), rec.successors.len());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn parallel_queries_mixed_workload() {
    let (am, net) = build();
    let am = Arc::new(am);
    let ids = net.node_ids();
    let routes = random_walk_routes(&net, 16, 12, 9);
    std::thread::scope(|s| {
        // Route evaluators...
        for chunk in routes.chunks(4) {
            let am = Arc::clone(&am);
            let chunk = chunk.to_vec();
            s.spawn(move || {
                for r in &chunk {
                    let eval = evaluate_route(am.as_ref(), r).unwrap();
                    assert!(eval.complete);
                }
            });
        }
        // ... racing shortest-path searches.
        for t in 0..4usize {
            let am = Arc::clone(&am);
            let ids = ids.clone();
            s.spawn(move || {
                let a = ids[t * 7 % ids.len()];
                let b = ids[(t * 31 + 13) % ids.len()];
                let _ = dijkstra(am.as_ref(), a, b).unwrap();
            });
        }
    });
    // The pool is intact afterwards.
    assert!(am.crr().unwrap() > 0.0);
}
