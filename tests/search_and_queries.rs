//! Integration: graph search and aggregate queries return identical
//! answers through every access method (placement must never change
//! query semantics, only I/O cost).

use std::collections::HashMap;

use ccam::core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam::core::query::aggregate::{location_allocation, route_unit_aggregate};
use ccam::core::query::route::evaluate_route;
use ccam::core::query::search::{a_star, dijkstra};
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::walks::random_walk_routes;
use ccam::graph::{Network, NodeId};

fn net() -> Network {
    road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 42,
    })
}

fn methods(net: &Network) -> Vec<Box<dyn AccessMethod>> {
    let w = HashMap::new();
    vec![
        Box::new(CcamBuilder::new(512).build_static(net).unwrap()),
        Box::new(TopoAm::create(net, 512, TraversalOrder::DepthFirst, None, &w).unwrap()),
        Box::new(GridAm::create(net, 512).unwrap()),
    ]
}

#[test]
fn shortest_paths_are_placement_independent() {
    let net = net();
    let ams = methods(&net);
    let ids = net.node_ids();
    for i in (0..ids.len()).step_by(13) {
        let (s, g) = (ids[i], ids[(i * 7 + 29) % ids.len()]);
        let costs: Vec<Option<u64>> = ams
            .iter()
            .map(|am| dijkstra(am.as_ref(), s, g).unwrap().map(|r| r.cost))
            .collect();
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "dijkstra {s:?}->{g:?} disagrees across methods: {costs:?}"
        );
        // A* agrees with Dijkstra on every method.
        for am in &ams {
            let a = a_star(am.as_ref(), s, g).unwrap().map(|r| r.cost);
            assert_eq!(a, costs[0], "{}: A* vs dijkstra {s:?}->{g:?}", am.name());
        }
    }
}

#[test]
fn route_evaluation_is_placement_independent() {
    let net = net();
    let ams = methods(&net);
    for route in random_walk_routes(&net, 25, 15, 5) {
        let evals: Vec<_> = ams
            .iter()
            .map(|am| evaluate_route(am.as_ref(), &route).unwrap())
            .collect();
        assert!(evals.iter().all(|e| e.complete));
        assert!(
            evals.windows(2).all(|w| w[0] == w[1]),
            "route evaluation disagrees: {evals:?}"
        );
    }
}

#[test]
fn route_unit_aggregates_are_placement_independent() {
    let net = net();
    let ams = methods(&net);
    let routes = random_walk_routes(&net, 5, 12, 6);
    for route in &routes {
        let arcs: Vec<(NodeId, NodeId)> = route.edges().collect();
        let aggs: Vec<_> = ams
            .iter()
            .map(|am| route_unit_aggregate(am.as_ref(), &arcs).unwrap())
            .collect();
        assert!(aggs.windows(2).all(|w| w[0] == w[1]), "{aggs:?}");
        assert_eq!(aggs[0].arcs_found, arcs.len());
    }
}

#[test]
fn location_allocation_is_placement_independent() {
    let net = net();
    let ams = methods(&net);
    let ids = net.node_ids();
    let candidates = [ids[0], ids[ids.len() / 2], ids[ids.len() - 1]];
    let demands: Vec<NodeId> = ids.iter().step_by(17).copied().collect();
    let results: Vec<_> = ams
        .iter()
        .map(|am| location_allocation(am.as_ref(), &candidates, &demands).unwrap())
        .collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn search_io_reflects_clustering_quality() {
    // The same A* query costs fewer page accesses on CCAM than on
    // BFS-AM: the point of the whole paper.
    let net = net();
    let w = HashMap::new();
    let ccam = CcamBuilder::new(512).build_static(&net).unwrap();
    let bfs = TopoAm::create(&net, 512, TraversalOrder::BreadthFirst, None, &w).unwrap();
    let ids = net.node_ids();
    let mut ccam_io = 0u64;
    let mut bfs_io = 0u64;
    for i in (0..ids.len()).step_by(9) {
        let (s, g) = (ids[i], ids[(i * 11 + 31) % ids.len()]);
        for (am, total) in [
            (&ccam as &dyn AccessMethod, &mut ccam_io),
            (&bfs, &mut bfs_io),
        ] {
            am.file().pool().set_capacity(4).unwrap();
            am.file().pool().clear().unwrap();
            let before = am.stats().snapshot();
            let _ = a_star(am, s, g).unwrap();
            *total += am.stats().snapshot().since(&before).physical_reads;
        }
    }
    assert!(
        ccam_io < bfs_io,
        "A* over CCAM ({ccam_io}) must beat BFS-AM ({bfs_io})"
    );
}
