//! Crash recovery: kill the store at arbitrary points during updates and
//! assert that reopening through the WAL restores a consistent database.
//!
//! The harness is `WalStore<CrashStore<FilePageStore>>`: the crash
//! controller schedules a "power failure" after the k-th physical
//! mutation, optionally tearing the page write it dies on. A sweep over
//! crash indices covers every phase of the commit protocol —
//! pass-through allocation (before logging), the apply phase (after the
//! batch is durable), and the inner sync — plus the no-crash tail.
//!
//! Invariants checked after every simulated crash:
//!
//! * the reopened file passes the full `check::verify` audit,
//! * no operation that returned `Ok` is lost (committed = durable),
//! * the in-flight operation is all-or-nothing,
//! * records the crash never touched are byte-identical.

use std::collections::{BTreeMap, BTreeSet};

use ccam::core::am::{AccessMethod, CcamBuilder, DeletedNode};
use ccam::core::check;
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::{Network, NodeId};
use ccam::storage::{wal_sidecar, CrashStore, FilePageStore, TornWrite, WalStore};

const BLOCK: usize = 512;

fn net() -> Network {
    road_map(&RoadMapConfig {
        grid_w: 9,
        grid_h: 9,
        removed_nodes: 2,
        target_segments: 120,
        target_directed: 210,
        cell: 64,
        jitter: 24,
        seed: 23,
    })
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccam-rec-{}-{}", std::process::id(), name));
    p
}

/// Nodes whose records a delete/reinsert of any victim may rewrite:
/// the victims themselves plus every neighbor on either side.
fn touched_set(net: &Network, victims: &[NodeId]) -> BTreeSet<NodeId> {
    let mut touched = BTreeSet::new();
    for &v in victims {
        touched.insert(v);
        let rec = net.node(v).unwrap();
        for e in &rec.successors {
            touched.insert(e.to);
        }
        for &p in &rec.predecessors {
            touched.insert(p);
        }
    }
    touched
}

/// One crash round: build a WAL-backed file, churn delete/reinsert ops
/// with a crash scheduled after `k` physical mutations, then reopen and
/// audit. Returns `true` when the crash actually fired.
fn crash_round(net: &Network, k: u64, mode: TornWrite, name: &str) -> bool {
    let path = temp_path(name);
    let wal = wal_sidecar(&path);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();

    let store = FilePageStore::create(&path, BLOCK).unwrap();
    let (cstore, ctl) = CrashStore::new(store);
    let ws = WalStore::create(cstore, &wal).unwrap();
    let mut am = CcamBuilder::new(BLOCK).build_static_on(ws, net).unwrap();
    am.file().commit().unwrap();
    am.file_mut().set_auto_commit(true);

    let ids = net.node_ids();
    let victims: Vec<NodeId> = ids.iter().step_by(9).copied().collect();

    ctl.crash_after(k, mode);

    // Churn: delete each victim, then put it back. Every op that returns
    // Ok has auto-committed; the first Err is the in-flight op.
    let mut committed_present: BTreeMap<NodeId, bool> = BTreeMap::new();
    let mut stash: BTreeMap<NodeId, DeletedNode> = BTreeMap::new();
    let mut inflight: Option<(NodeId, bool, bool)> = None; // (victim, pre, post)
    'ops: for &v in &victims {
        match am.delete_node(v) {
            Ok(del) => {
                stash.insert(v, del.expect("victim should be live"));
                committed_present.insert(v, false);
            }
            Err(_) => {
                inflight = Some((v, true, false));
                break 'ops;
            }
        }
        let del = &stash[&v];
        match am.insert_node(&del.data, &del.incoming) {
            Ok(()) => {
                committed_present.insert(v, true);
            }
            Err(_) => {
                inflight = Some((v, false, true));
                break 'ops;
            }
        }
    }

    let crashed = ctl.is_dead();
    if crashed {
        // Power is gone: nothing gets flushed, dropped or rolled back.
        std::mem::forget(am);
    } else {
        assert!(inflight.is_none(), "ops failed without a crash");
        drop(am);
    }

    // Reboot: reopen the file, replaying the log.
    let store = FilePageStore::open(&path).unwrap();
    let (ws, report) = WalStore::open(store, &wal).unwrap();
    let am2 = CcamBuilder::new(BLOCK).open_on(ws).unwrap();

    let audit = check::verify(am2.file()).unwrap();
    assert!(
        audit.is_clean(),
        "k={k} {mode:?}: recovered file fails audit: {:?} (recovery {report:?})",
        audit.issues
    );

    // Zero lost committed records.
    for (&v, &present) in &committed_present {
        if inflight.map(|(iv, _, _)| iv) == Some(v) {
            continue; // judged by the in-flight rule below
        }
        assert_eq!(
            am2.find(v).unwrap().is_some(),
            present,
            "k={k} {mode:?}: committed state of victim {v} lost"
        );
    }
    // The in-flight op is atomic: its victim is in the pre- or the
    // post-state, never half of each (the audit above rules that out).
    if let Some((v, pre, post)) = inflight {
        let got = am2.find(v).unwrap().is_some();
        assert!(
            got == pre || got == post,
            "k={k} {mode:?}: in-flight victim {v} in impossible state"
        );
    }
    // Untouched records survive byte-for-byte.
    let touched = touched_set(net, &victims);
    for id in net.node_ids() {
        if !touched.contains(&id) {
            assert_eq!(
                &am2.find(id).unwrap().unwrap(),
                net.node(id).unwrap(),
                "k={k} {mode:?}: untouched record {id} damaged"
            );
        }
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
    crashed
}

#[test]
fn crash_sweep_over_churn_recovers_every_time() {
    let net = net();
    let modes = [TornWrite::None, TornWrite::Partial, TornWrite::Zeroed];
    let mut crashes = 0;
    for (i, k) in [
        0u64, 1, 2, 3, 5, 8, 12, 17, 23, 30, 40, 55, 75, 100, 150, 400,
    ]
    .into_iter()
    .enumerate()
    {
        if crash_round(&net, k, modes[i % modes.len()], &format!("sweep{k}")) {
            crashes += 1;
        }
    }
    // The sweep must actually exercise crashes, not just the happy path.
    assert!(crashes >= 8, "only {crashes} rounds crashed");
}

#[test]
fn crash_mid_reorganization_recovers() {
    let net = net();
    for k in [0u64, 4, 9, 20, 45] {
        let path = temp_path(&format!("reorg{k}"));
        let wal = wal_sidecar(&path);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();

        let store = FilePageStore::create(&path, BLOCK).unwrap();
        let (cstore, ctl) = CrashStore::new(store);
        let ws = WalStore::create(cstore, &wal).unwrap();
        let mut am = CcamBuilder::new(BLOCK).build_static_on(ws, &net).unwrap();
        am.file().commit().unwrap();
        am.file_mut().set_auto_commit(true);

        ctl.crash_after(k, TornWrite::Partial);
        let crashed = am.reorganize_full().is_err();
        assert_eq!(crashed, ctl.is_dead());
        if crashed {
            std::mem::forget(am);
        } else {
            drop(am);
        }

        let store = FilePageStore::open(&path).unwrap();
        let (ws, _report) = WalStore::open(store, &wal).unwrap();
        let am2 = CcamBuilder::new(BLOCK).open_on(ws).unwrap();
        let audit = check::verify(am2.file()).unwrap();
        assert!(audit.is_clean(), "k={k}: {:?}", audit.issues);
        // Reorganization only moves records; every node must still be
        // present and identical whichever side of the crash we landed on.
        for id in net.node_ids() {
            assert_eq!(
                &am2.find(id).unwrap().unwrap(),
                net.node(id).unwrap(),
                "k={k}: record {id} damaged by crashed reorganization"
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&wal).ok();
    }
}

#[test]
fn torn_log_tail_is_truncated_not_fatal() {
    use std::io::Write;

    let net = net();
    let path = temp_path("torntail");
    let wal = wal_sidecar(&path);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();

    let store = FilePageStore::create(&path, BLOCK).unwrap();
    let ws = WalStore::create(store, &wal).unwrap();
    let am = CcamBuilder::new(BLOCK).build_static_on(ws, &net).unwrap();
    am.file().commit().unwrap();
    drop(am);

    // Fake a torn append: a frame header promising more bytes than were
    // ever written, followed by garbage.
    {
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&4096u32.to_le_bytes()).unwrap();
        f.write_all(&[0xAB; 24]).unwrap();
    }

    let store = FilePageStore::open(&path).unwrap();
    let (ws, report) = WalStore::open(store, &wal).unwrap();
    assert!(!report.was_clean());
    assert!(report.torn_bytes > 0, "torn tail not detected: {report:?}");
    assert_eq!(report.replayed_batches, 0);

    let am2 = CcamBuilder::new(BLOCK).open_on(ws).unwrap();
    assert!(check::verify(am2.file()).unwrap().is_clean());
    for id in net.node_ids() {
        assert!(am2.find(id).unwrap().is_some());
    }
    drop(am2);

    // A second open finds a clean, already-truncated log.
    let store = FilePageStore::open(&path).unwrap();
    let (_ws, report) = WalStore::open(store, &wal).unwrap();
    assert!(report.was_clean(), "second recovery not clean: {report:?}");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
}
