//! WAL replay idempotency for replication: a follower that crashes
//! mid-apply and is re-shipped the same segment batch must converge to
//! byte-identical pages, including when the shipped range crosses a
//! checkpoint boundary on the primary.
//!
//! These tests drive the storage-level shipping primitives directly —
//! [`WalStore::repl_records_after`] on the primary feeding
//! [`Ccam::apply_replicated`] on the follower — the same path the
//! server's replication threads use, minus the sockets. Divergence is
//! detected two ways, in `reads_during_commit.rs` style: a
//! layout-independent generation digest over every logical record, and
//! a strict byte comparison of every live page (replication ships
//! physical images, so a correct follower is byte-identical, not just
//! logically equal).

use std::hash::{Hash, Hasher};

use ccam::core::am::{AccessMethod, Ccam, CcamBuilder};
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::Network;
use ccam::storage::{MemPageStore, PageStore, ReplFeed, RetentionSlot, StampedRecord, WalStore};

type WalMem = WalStore<MemPageStore>;

fn test_network(seed: u64) -> Network {
    road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed,
    })
}

fn temp_wal(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ccam-replay-{}-{}.wal", std::process::id(), name))
}

/// A WAL-backed primary with a retention slot subscribed from LSN 0
/// *before* the build — like a follower that subscribed at birth — so
/// checkpoints (including any auto-checkpoint during the build itself)
/// retain the full shippable tail.
fn primary_with(net: &Network, tag: &str) -> (Ccam<WalMem>, RetentionSlot) {
    let wal = WalStore::create(MemPageStore::new(1024).unwrap(), &temp_wal(tag)).unwrap();
    let slot = wal.wal_retention().subscribe(0);
    let mut am = CcamBuilder::new(1024).build_static_on(wal, net).unwrap();
    am.file_mut().set_auto_commit(true);
    (am, slot)
}

fn empty_follower(tag: &str) -> Ccam<WalMem> {
    let wal = WalStore::create(MemPageStore::new(1024).unwrap(), &temp_wal(tag)).unwrap();
    let mut am = CcamBuilder::new(1024)
        .build_static_on(wal, &Network::new())
        .unwrap();
    am.file_mut().set_auto_commit(true);
    am
}

/// Layout-independent digest of the logical record set.
fn ledger_digest(am: &Ccam<WalMem>) -> u64 {
    let mut nodes = std::collections::BTreeMap::new();
    for (_page, records) in am.file().scan_uncounted().expect("scan") {
        for node in records {
            nodes.insert(node.id.0, node);
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (id, node) in &nodes {
        id.hash(&mut h);
        node.x.hash(&mut h);
        node.y.hash(&mut h);
        node.payload.hash(&mut h);
        for e in &node.successors {
            e.to.0.hash(&mut h);
            e.cost.hash(&mut h);
        }
        for p in &node.predecessors {
            p.0.hash(&mut h);
        }
    }
    h.finish()
}

/// Raw bytes of every live page, by id — the strict form of parity.
fn page_bytes(am: &Ccam<WalMem>) -> Vec<(u32, Vec<u8>)> {
    am.file().pool().with_store(|s| {
        let mut out = Vec::new();
        let mut buf = vec![0u8; s.page_size()];
        for page in s.live_pages() {
            s.read(page, &mut buf).expect("read live page");
            out.push((page.0, buf.clone()));
        }
        out
    })
}

/// Pulls everything committed after `after` out of the primary's WAL.
fn ship_after(primary: &Ccam<WalMem>, after: u64) -> (Vec<StampedRecord>, u64) {
    let feed = primary
        .file()
        .pool()
        .with_store_mut(|s| s.repl_records_after(after))
        .expect("repl feed");
    match feed {
        ReplFeed::Records { records, next_lsn } => (records, next_lsn),
        other => panic!("expected a shippable tail, got {other:?}"),
    }
}

/// Rewrite a node's payload through the primary (one WAL batch per op
/// thanks to auto-commit; same shape the server's upsert produces).
fn mutate(primary: &mut Ccam<WalMem>, id: ccam::graph::NodeId, stamp: u8) {
    let del = primary
        .delete_node(id)
        .expect("delete")
        .expect("node exists");
    let mut data = del.data;
    data.payload = vec![stamp; 11];
    primary.insert_node(&data, &del.incoming).expect("reinsert");
}

#[test]
fn reshipped_segments_apply_idempotently_across_checkpoint_boundary() {
    let net = test_network(5);
    let (mut primary, slot) = primary_with(&net, "ckpt-p");
    let mut follower = empty_follower("ckpt-f");
    let ids = net.node_ids();

    // History part 1, then a checkpoint, then history part 2: the
    // shipped range now crosses a checkpoint record.
    for (i, &id) in ids.iter().take(6).enumerate() {
        mutate(&mut primary, id, 0x10 + i as u8);
    }
    primary
        .file()
        .pool()
        .with_store_mut(|s| s.checkpoint())
        .expect("mid-history checkpoint");
    for (i, &id) in ids.iter().skip(6).take(6).enumerate() {
        mutate(&mut primary, id, 0x20 + i as u8);
    }

    // First shipment: the follower applies the full history and
    // reaches parity.
    let (records, next_lsn) = ship_after(&primary, 0);
    let apply = follower.apply_replicated(&records, 0).expect("first apply");
    assert!(apply.batches > 0, "nothing applied");
    assert_eq!(
        apply.applied_lsn,
        next_lsn - 1,
        "position short of the tail"
    );
    assert_eq!(
        ledger_digest(&primary),
        ledger_digest(&follower),
        "divergence after first apply"
    );
    let settled = page_bytes(&follower);
    assert_eq!(page_bytes(&primary), settled, "pages not byte-identical");

    // Crash: the follower loses its position sidecar and is re-shipped
    // the same range from LSN 0. Every batch must be skipped (its
    // commit LSN is at or below the follower's real position), leaving
    // the pages untouched byte for byte.
    let (again, _) = ship_after(&primary, 0);
    let reapply = follower
        .apply_replicated(&again, apply.applied_lsn)
        .expect("idempotent re-apply");
    assert_eq!(reapply.batches, 0, "re-applied already-applied batches");
    assert_eq!(reapply.applied_lsn, apply.applied_lsn, "position moved");
    assert_eq!(
        page_bytes(&follower),
        settled,
        "re-shipment changed follower pages"
    );
    assert_eq!(ledger_digest(&primary), ledger_digest(&follower));

    // And from a *stale* (but nonzero) position: the overlap is
    // skipped, only genuinely new history (none here) would apply.
    let stale = apply.applied_lsn / 2;
    let (overlap, _) = ship_after(&primary, stale);
    let re2 = follower
        .apply_replicated(&overlap, apply.applied_lsn)
        .expect("stale re-apply");
    assert_eq!(re2.batches, 0);
    assert_eq!(page_bytes(&follower), settled);
    drop(slot);
}

#[test]
fn torn_shipment_holds_back_tail_and_full_reship_converges() {
    let net = test_network(9);
    let (mut primary, _slot) = primary_with(&net, "torn-p");
    let mut follower = empty_follower("torn-f");
    let ids = net.node_ids();
    for (i, &id) in ids.iter().take(8).enumerate() {
        mutate(&mut primary, id, 0x40 + i as u8);
    }

    let (records, next_lsn) = ship_after(&primary, 0);
    assert!(records.len() > 4, "history too short to tear");

    // The follower crashes mid-apply: only a torn prefix of the
    // segment arrives. `apply_segment` must hold back the unterminated
    // final batch — the follower lands on a committed boundary, never
    // a half-applied batch.
    let torn = &records[..records.len() - 2];
    let partial = follower.apply_replicated(torn, 0).expect("torn apply");
    assert!(
        partial.applied_lsn < next_lsn - 1,
        "torn tail was applied as if complete"
    );

    // Recovery re-ships from the follower's surviving position; the
    // overlap is skipped, the rest applied, and the stores converge to
    // byte-identical pages.
    let (rest, rest_next) = ship_after(&primary, partial.applied_lsn);
    let done = follower
        .apply_replicated(&rest, partial.applied_lsn)
        .expect("resumed apply");
    assert_eq!(done.applied_lsn, rest_next - 1);
    assert_eq!(
        ledger_digest(&primary),
        ledger_digest(&follower),
        "divergence after resumed apply"
    );
    assert_eq!(page_bytes(&primary), page_bytes(&follower));

    // A second identical re-shipment is a no-op.
    let before = page_bytes(&follower);
    let (again, _) = ship_after(&primary, 0);
    let re = follower
        .apply_replicated(&again, done.applied_lsn)
        .expect("full re-ship");
    assert_eq!(re.batches, 0);
    assert_eq!(page_bytes(&follower), before);
}
