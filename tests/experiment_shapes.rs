//! Integration: the paper's headline experimental claims hold on a
//! reduced-scale road map (fast versions of the fig5/fig6/fig7 and
//! Table 5 shape checks — the full-scale runs live in `ccam-bench`).

use std::collections::HashMap;

use ccam::core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam::core::costmodel::CostParams;
use ccam::core::query::route::evaluate_route;
use ccam::core::reorg::ReorgPolicy;
use ccam::core::validate::{validate, ValidationConfig};
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::walks::random_walk_routes;
use ccam::graph::Network;

fn small_map() -> Network {
    road_map(&RoadMapConfig {
        grid_w: 15,
        grid_h: 15,
        removed_nodes: 3,
        target_segments: 330,
        target_directed: 580,
        cell: 64,
        jitter: 24,
        seed: 1995,
    })
}

fn crr_of(net: &Network, block: usize) -> Vec<(String, f64)> {
    let w = HashMap::new();
    let ams: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(CcamBuilder::new(block).build_static(net).unwrap()),
        Box::new(CcamBuilder::new(block).build_dynamic(net).unwrap()),
        Box::new(TopoAm::create(net, block, TraversalOrder::DepthFirst, None, &w).unwrap()),
        Box::new(GridAm::create(net, block).unwrap()),
        Box::new(TopoAm::create(net, block, TraversalOrder::BreadthFirst, None, &w).unwrap()),
    ];
    ams.iter()
        .map(|am| (am.name().to_string(), am.crr().unwrap()))
        .collect()
}

/// Figure 5's core claims at two block sizes.
#[test]
fn ccam_has_the_highest_crr() {
    let net = small_map();
    for block in [512usize, 2048] {
        let crr = crr_of(&net, block);
        let get = |n: &str| crr.iter().find(|(m, _)| m == n).unwrap().1;
        let ccam_s = get("CCAM-S");
        for (name, c) in &crr {
            assert!(
                ccam_s >= *c,
                "block {block}: CCAM-S {ccam_s:.3} must top {name} {c:.3}"
            );
        }
        assert!(get("CCAM-D") > get("BFS-AM"));
        assert!(get("DFS-AM") > get("BFS-AM"));
    }
}

/// Figure 5: CRR grows with block size for every method.
#[test]
fn crr_grows_with_block_size() {
    let net = small_map();
    let small = crr_of(&net, 512);
    let large = crr_of(&net, 4096);
    for ((name, c_small), (_, c_large)) in small.iter().zip(&large) {
        assert!(
            c_large > c_small,
            "{name}: CRR must grow with block size ({c_small:.3} -> {c_large:.3})"
        );
    }
}

/// Figure 6: CCAM's route evaluation is cheapest, and cost grows with
/// route length.
#[test]
fn route_evaluation_cost_ordering() {
    let net = small_map();
    let w = HashMap::new();
    let ccam = CcamBuilder::new(1024).build_static(&net).unwrap();
    let bfs = TopoAm::create(&net, 1024, TraversalOrder::BreadthFirst, None, &w).unwrap();

    let mut costs = Vec::new();
    for (am, name) in [(&ccam as &dyn AccessMethod, "ccam"), (&bfs, "bfs")] {
        am.file().pool().set_capacity(1).unwrap();
        let mut per_length = Vec::new();
        for (i, len) in [10usize, 30].iter().enumerate() {
            let routes = random_walk_routes(&net, 40, *len, 9 + i as u64);
            let mut total = 0u64;
            for r in &routes {
                am.file().pool().clear().unwrap();
                let before = am.stats().snapshot();
                let eval = evaluate_route(am, r).unwrap();
                assert!(eval.complete);
                total += am.stats().snapshot().since(&before).physical_reads;
            }
            per_length.push(total as f64 / routes.len() as f64);
        }
        assert!(
            per_length[1] > per_length[0],
            "{name}: longer routes must cost more"
        );
        costs.push(per_length);
    }
    assert!(
        costs[0][0] < costs[1][0] && costs[0][1] < costs[1][1],
        "CCAM routes must be cheaper than BFS: {costs:?}"
    );
}

/// Table 3/5: measured Get-successors and Get-A-successor costs track
/// the cost model within a generous envelope.
#[test]
fn search_costs_track_the_cost_model() {
    let net = small_map();
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let params = CostParams::measure(am.file()).unwrap();

    let ids = net.node_ids();
    let (mut gs, mut ga, mut n) = (0u64, 0u64, 0u64);
    for id in ids.into_iter().step_by(2) {
        let rec = am.find(id).unwrap().unwrap();
        if rec.successors.is_empty() {
            continue;
        }
        am.file().pool().clear().unwrap();
        am.find(id).unwrap();
        let before = am.stats().snapshot();
        am.get_successors(id).unwrap();
        gs += am.stats().snapshot().since(&before).physical_reads;

        am.file().pool().clear().unwrap();
        am.find(id).unwrap();
        let before = am.stats().snapshot();
        am.get_a_successor(id, rec.successors[0].to).unwrap();
        ga += am.stats().snapshot().since(&before).physical_reads;
        n += 1;
    }
    let gs = gs as f64 / n as f64;
    let ga = ga as f64 / n as f64;
    let pred_gs = params.get_successors_cost();
    let pred_ga = params.get_a_successor_cost();
    assert!(
        (gs - pred_gs).abs() < 0.35 + 0.5 * pred_gs,
        "get-successors measured {gs:.3} vs predicted {pred_gs:.3}"
    );
    assert!(
        (ga - pred_ga).abs() < 0.25 + 0.5 * pred_ga,
        "get-a-successor measured {ga:.3} vs predicted {pred_ga:.3}"
    );
}

/// The reusable validation harness reproduces the Table 5 methodology:
/// observed page accesses per operation class stay within a generous
/// envelope of the §3.2 predictions (same tolerances as the manual
/// measurement above), and every class the workload can exercise shows
/// up in the report.
#[test]
fn validation_harness_tracks_the_cost_model() {
    let net = small_map();
    let mut am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let cfg = ValidationConfig {
        sample: 48,
        routes: 6,
        route_len: 15,
        seed: 7,
        ..ValidationConfig::default()
    };
    let report = validate(&mut am, &cfg).unwrap();

    let find = report.class("find").unwrap();
    assert!(
        (find.observed - 1.0).abs() < 1e-9,
        "find on a cold buffer must cost exactly one page, got {:.3}",
        find.observed
    );
    let gs = report.class("get_successors").unwrap();
    assert!(
        (gs.observed - gs.predicted).abs() < 0.35 + 0.5 * gs.predicted,
        "get-successors observed {:.3} vs predicted {:.3}",
        gs.observed,
        gs.predicted
    );
    let ga = report.class("get_a_successor").unwrap();
    assert!(
        (ga.observed - ga.predicted).abs() < 0.25 + 0.5 * ga.predicted,
        "get-a-successor observed {:.3} vs predicted {:.3}",
        ga.observed,
        ga.predicted
    );
    let route = report.class("route").unwrap();
    assert!(route.observed >= 1.0, "a route faults at least one page");
    assert!(
        (route.observed - route.predicted).abs() < 0.5 + 0.5 * route.predicted,
        "route observed {:.3} vs predicted {:.3}",
        route.observed,
        route.predicted
    );
    // Updates ran (delete + re-insert). Table 4 predicts a worst case and
    // the re-insert runs on the buffer the delete warmed, so only the
    // delete is guaranteed to do physical I/O.
    let del = report.class("delete").unwrap();
    assert!(del.trials > 0 && del.observed > 0.0, "delete did no I/O");
    assert!(report.class("insert").unwrap().trials > 0);
    let text = report.render();
    for c in &report.classes {
        assert!(text.contains(&c.class), "render lost class {}", c.class);
    }
}

/// Operation spans attribute page accesses to the public entry point:
/// each call yields exactly one profile (nested `find`s fold in), named
/// after the operation, with a non-empty ordered page-access trace.
#[test]
fn operation_spans_capture_page_access_traces() {
    let net = small_map();
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let id = net.node_ids()[0];
    am.stats().set_profiling(true);
    am.file().pool().clear().unwrap();
    am.find(id).unwrap();
    am.get_successors(id).unwrap();
    let profiles = am.stats().take_profiles();
    assert_eq!(
        profiles.len(),
        2,
        "two entry points must yield two profiles"
    );
    assert_eq!(profiles[0].op, "find");
    assert_eq!(profiles[1].op, "get_successors");
    assert!(profiles[0].data_page_accesses() >= 1);
    assert!(!profiles[0].trace_string().is_empty());
    // Profiling off again: no further collection.
    am.stats().set_profiling(false);
    am.find(id).unwrap();
    assert!(am.stats().take_profiles().is_empty());
}

/// Figure 7: higher-order reorganization costs much more I/O than
/// second-order for little extra CRR; first-order degrades CRR most.
#[test]
fn reorg_policy_tradeoff() {
    let net = small_map();
    let held: Vec<_> = net.node_ids().into_iter().step_by(5).collect();
    let mut base = net.clone();
    for &id in &held {
        base.remove_node(id);
    }

    let mut results = Vec::new();
    for policy in [
        ReorgPolicy::FirstOrder,
        ReorgPolicy::SecondOrder,
        ReorgPolicy::HigherOrder,
    ] {
        let mut am = CcamBuilder::new(1024)
            .policy(policy)
            .build_static(&base)
            .unwrap();
        let mut present: std::collections::HashSet<_> = base.node_ids().into_iter().collect();
        let mut io = 0u64;
        for &id in &held {
            let full = net.node(id).unwrap();
            let data = ccam::graph::NodeData {
                successors: full
                    .successors
                    .iter()
                    .filter(|e| present.contains(&e.to))
                    .copied()
                    .collect(),
                predecessors: full
                    .predecessors
                    .iter()
                    .filter(|p| present.contains(p))
                    .copied()
                    .collect(),
                ..full.clone()
            };
            let incoming: Vec<_> = data
                .predecessors
                .iter()
                .map(|&p| {
                    (
                        p,
                        net.node(p)
                            .unwrap()
                            .successors
                            .iter()
                            .find(|e| e.to == id)
                            .unwrap()
                            .cost,
                    )
                })
                .collect();
            am.file().pool().clear().unwrap();
            let before = am.stats().snapshot();
            am.insert_node(&data, &incoming).unwrap();
            am.file().pool().flush_all().unwrap();
            let d = am.stats().snapshot().since(&before);
            io += d.physical_reads + d.physical_writes;
            present.insert(id);
        }
        results.push((policy, io as f64 / held.len() as f64, am.crr().unwrap()));
    }
    let (first, second, higher) = (&results[0], &results[1], &results[2]);
    assert!(
        higher.1 > second.1,
        "higher-order I/O {:.2} must exceed second-order {:.2}",
        higher.1,
        second.1
    );
    assert!(
        first.2 <= second.2 + 0.02,
        "first-order CRR {:.3} must not beat second-order {:.3}",
        first.2,
        second.2
    );
}
