//! Integration: the whole stack runs on a genuinely persistent page
//! file — build CCAM on disk, reopen it cold, and keep querying and
//! updating it.

use ccam::core::am::{AccessMethod, CcamBuilder};
use ccam::core::query::route::evaluate_route;
use ccam::core::query::search::a_star;
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::walks::random_walk_routes;
use ccam::graph::Network;
use ccam::storage::FilePageStore;

fn net() -> Network {
    road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 11,
    })
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccam-it-{}-{}", std::process::id(), name));
    p
}

#[test]
fn build_directly_on_a_page_file() {
    let net = net();
    let path = temp_path("direct");
    {
        let store = FilePageStore::create(&path, 1024).unwrap();
        let am = CcamBuilder::new(1024).build_static_on(store, &net).unwrap();
        assert_eq!(am.file().len(), net.len());
        for id in net.node_ids().into_iter().step_by(7) {
            assert_eq!(&am.find(id).unwrap().unwrap(), net.node(id).unwrap());
        }
        am.file().pool().flush_all().unwrap();
    }
    // Reopen cold: the index rebuilds from the data pages alone.
    {
        let store = FilePageStore::open(&path).unwrap();
        let am = CcamBuilder::new(1024).open_on(store).unwrap();
        assert_eq!(am.file().len(), net.len());
        for id in net.node_ids() {
            assert_eq!(
                &am.find(id).unwrap().unwrap(),
                net.node(id).unwrap(),
                "{id:?} after reopen"
            );
        }
        // CRR survives the round trip (placement is byte-identical).
        assert!(am.crr().unwrap() > 0.4);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_mem_file_then_reopen_and_query() {
    let net = net();
    let path = temp_path("saved");
    let mem_am = CcamBuilder::new(512).build_static(&net).unwrap();
    let crr_before = mem_am.crr().unwrap();
    mem_am.file().save_to(&path).unwrap();

    let store = FilePageStore::open(&path).unwrap();
    let am = CcamBuilder::new(512).open_on(store).unwrap();
    assert_eq!(am.file().len(), net.len());
    assert!((am.crr().unwrap() - crr_before).abs() < 1e-12);

    // Queries over the disk file.
    let routes = random_walk_routes(&net, 10, 12, 3);
    for r in &routes {
        let eval = evaluate_route(&am, r).unwrap();
        assert!(eval.complete);
    }
    let ids = net.node_ids();
    let sp = a_star(&am, ids[0], ids[ids.len() - 1]).unwrap();
    assert!(sp.is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn updates_on_disk_survive_reopen() {
    let net = net();
    let path = temp_path("updates");
    let victim = net.node_ids()[17];
    {
        let store = FilePageStore::create(&path, 1024).unwrap();
        let mut am = CcamBuilder::new(1024).build_static_on(store, &net).unwrap();
        let del = am.delete_node(victim).unwrap().unwrap();
        am.insert_node(&del.data, &del.incoming).unwrap();
        // And one permanent deletion.
        let gone = net.node_ids()[3];
        am.delete_node(gone).unwrap().unwrap();
        am.file().pool().flush_all().unwrap();
    }
    {
        let store = FilePageStore::open(&path).unwrap();
        let am = CcamBuilder::new(1024).open_on(store).unwrap();
        assert_eq!(am.file().len(), net.len() - 1);
        assert!(am.find(victim).unwrap().is_some());
        assert!(am.find(net.node_ids()[3]).unwrap().is_none());
        // Cross-references still consistent on the reopened file.
        for id in net.node_ids().into_iter().step_by(5) {
            if let Some(rec) = am.find(id).unwrap() {
                for e in &rec.successors {
                    if let Some(t) = am.find(e.to).unwrap() {
                        assert!(t.predecessors.contains(&id));
                    }
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_preserves_page_ids_across_gaps() {
    // Delete enough nodes to free whole pages, save, reopen: the index
    // rebuilt from the surviving pages must agree with the original
    // placement (page ids preserved, gaps skipped).
    let net = net();
    let path = temp_path("gaps");
    let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
    let ids = net.node_ids();
    // First-order deletes (with merging) free pages.
    for &id in ids.iter().take(ids.len() / 2) {
        am.delete_node(id).unwrap().unwrap();
    }
    let survivors: Vec<_> = ids.iter().skip(ids.len() / 2).copied().collect();
    let placement_before: Vec<_> = survivors
        .iter()
        .map(|&id| am.file().page_of(id).unwrap().unwrap())
        .collect();
    am.file().save_to(&path).unwrap();

    let store = FilePageStore::open(&path).unwrap();
    let reopened = CcamBuilder::new(512).open_on(store).unwrap();
    assert_eq!(reopened.file().len(), survivors.len());
    for (&id, &page) in survivors.iter().zip(&placement_before) {
        assert_eq!(
            reopened.file().page_of(id).unwrap(),
            Some(page),
            "{id:?} moved across save/reopen"
        );
        assert!(reopened.find(id).unwrap().is_some());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn dirty_evictions_write_back_under_tiny_pool() {
    // With a single buffer frame every page the churn dirties is evicted
    // — and must be written back — before the next page faults in. If
    // eviction dropped dirty frames, the final flush (which only sees
    // the one resident frame) could not save the rest and the reopened
    // file would have lost most of the updates.
    let net = net();
    let path = temp_path("evict");
    let ids = net.node_ids();
    let gone = ids[1];
    {
        let store = FilePageStore::create(&path, 512).unwrap();
        let mut am = CcamBuilder::new(512).build_static_on(store, &net).unwrap();
        am.file().pool().set_capacity(1).unwrap();
        for &id in ids.iter().step_by(6) {
            let del = am.delete_node(id).unwrap().unwrap();
            am.insert_node(&del.data, &del.incoming).unwrap();
        }
        am.delete_node(gone).unwrap().unwrap();
        am.file().pool().flush_all().unwrap();
    }
    let store = FilePageStore::open(&path).unwrap();
    let am = CcamBuilder::new(512).open_on(store).unwrap();
    assert_eq!(am.file().len(), net.len() - 1);
    assert!(am.find(gone).unwrap().is_none());
    for &id in ids.iter().filter(|&&id| id != gone) {
        assert!(am.find(id).unwrap().is_some(), "{id} lost across eviction");
    }
    assert!(ccam::core::check::verify(am.file()).unwrap().is_clean());
    std::fs::remove_file(&path).ok();
}

#[test]
fn dynamic_create_on_disk() {
    let net = net();
    let path = temp_path("dynamic");
    let store = FilePageStore::create(&path, 1024).unwrap();
    let am = CcamBuilder::new(1024)
        .build_dynamic_on(store, &net)
        .unwrap();
    assert_eq!(am.file().len(), net.len());
    assert!(am.crr().unwrap() > 0.3);
    std::fs::remove_file(&path).ok();
}
