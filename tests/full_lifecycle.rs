//! Integration: full lifecycle of every access method on a generated
//! road network — create, read back, search ops, node/edge maintenance,
//! and invariants after churn.

use std::collections::HashMap;

use ccam::core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam::core::reorg::ReorgPolicy;
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::Network;

fn test_network(seed: u64) -> Network {
    road_map(&RoadMapConfig {
        grid_w: 12,
        grid_h: 12,
        removed_nodes: 3,
        target_segments: 210,
        target_directed: 370,
        cell: 64,
        jitter: 24,
        seed,
    })
}

fn all_methods(net: &Network, block: usize) -> Vec<Box<dyn AccessMethod>> {
    let w = HashMap::new();
    vec![
        Box::new(CcamBuilder::new(block).build_static(net).unwrap()),
        Box::new(CcamBuilder::new(block).build_dynamic(net).unwrap()),
        Box::new(TopoAm::create(net, block, TraversalOrder::DepthFirst, None, &w).unwrap()),
        Box::new(TopoAm::create(net, block, TraversalOrder::BreadthFirst, None, &w).unwrap()),
        Box::new(TopoAm::create(net, block, TraversalOrder::WeightedDepthFirst, None, &w).unwrap()),
        Box::new(GridAm::create(net, block).unwrap()),
    ]
}

#[test]
fn every_method_round_trips_every_record() {
    let net = test_network(1);
    for am in all_methods(&net, 1024) {
        for id in net.node_ids() {
            let rec = am
                .find(id)
                .unwrap()
                .unwrap_or_else(|| panic!("{}: {id:?} missing", am.name()));
            assert_eq!(&rec, net.node(id).unwrap(), "{}: {id:?}", am.name());
        }
        let crr = am.crr().unwrap();
        assert!((0.0..=1.0).contains(&crr), "{}: CRR {crr}", am.name());
    }
}

#[test]
fn get_successors_agrees_with_network_everywhere() {
    let net = test_network(2);
    for am in all_methods(&net, 512) {
        for id in net.node_ids().into_iter().step_by(3) {
            let mut got: Vec<_> = am
                .get_successors(id)
                .unwrap()
                .into_iter()
                .map(|r| r.id)
                .collect();
            got.sort_unstable();
            let mut want: Vec<_> = net
                .node(id)
                .unwrap()
                .successors
                .iter()
                .map(|e| e.to)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "{}: successors of {id:?}", am.name());
        }
    }
}

#[test]
fn get_a_successor_finds_each_neighbor() {
    let net = test_network(3);
    for am in all_methods(&net, 1024) {
        for id in net.node_ids().into_iter().step_by(11) {
            let rec = am.find(id).unwrap().unwrap();
            for e in &rec.successors {
                let s = am.get_a_successor(id, e.to).unwrap();
                assert_eq!(s.unwrap().id, e.to, "{}", am.name());
            }
        }
    }
}

#[test]
fn delete_everything_then_file_is_empty() {
    let net = test_network(4);
    for mut am in all_methods(&net, 1024) {
        for id in net.node_ids() {
            assert!(am.delete_node(id).unwrap().is_some(), "{}", am.name());
        }
        assert_eq!(am.file().len(), 0, "{}", am.name());
        for id in net.node_ids().into_iter().take(5) {
            assert!(am.find(id).unwrap().is_none());
            assert!(am.delete_node(id).unwrap().is_none());
        }
    }
}

#[test]
fn churn_preserves_consistency_under_every_policy() {
    let net = test_network(5);
    for policy in [
        ReorgPolicy::FirstOrder,
        ReorgPolicy::SecondOrder,
        ReorgPolicy::HigherOrder,
    ] {
        let mut am = CcamBuilder::new(512)
            .policy(policy)
            .build_static(&net)
            .unwrap();
        // Delete and re-insert a third of the nodes, twice.
        for round in 0..2 {
            for id in net.node_ids().into_iter().skip(round).step_by(3) {
                let del = am.delete_node(id).unwrap().unwrap();
                am.insert_node(&del.data, &del.incoming).unwrap();
            }
        }
        // All records intact, all cross-references consistent.
        for id in net.node_ids() {
            let rec = am.find(id).unwrap().unwrap();
            for e in &rec.successors {
                let t = am.find(e.to).unwrap().unwrap();
                assert!(
                    t.predecessors.contains(&id),
                    "{policy:?}: {id:?}->{:?} lost its back-link",
                    e.to
                );
            }
            for p in &rec.predecessors {
                let s = am.find(*p).unwrap().unwrap();
                assert!(
                    s.successors.iter().any(|e| e.to == id),
                    "{policy:?}: pred link {p:?} of {id:?} dangling"
                );
            }
        }
    }
}

#[test]
fn edge_churn_keeps_lists_consistent() {
    let net = test_network(6);
    let mut am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let ids = net.node_ids();
    // Add a batch of long-range edges, then delete them.
    let mut added = Vec::new();
    for i in 0..30 {
        let a = ids[(i * 17) % ids.len()];
        let b = ids[(i * 37 + 11) % ids.len()];
        if a != b && am.insert_edge(a, b, 50 + i as u32).unwrap() {
            added.push((a, b, 50 + i as u32));
        }
    }
    assert!(!added.is_empty());
    for &(a, b, c) in &added {
        let rec = am.find(a).unwrap().unwrap();
        assert!(rec.successors.iter().any(|e| e.to == b && e.cost == c));
    }
    for &(a, b, c) in &added {
        assert_eq!(am.delete_edge(a, b).unwrap(), Some(c));
    }
    // Network content equals the original again.
    for id in net.node_ids() {
        let rec = am.find(id).unwrap().unwrap();
        let want = net.node(id).unwrap();
        let mut got_s: Vec<_> = rec.successors.clone();
        let mut want_s = want.successors.clone();
        got_s.sort_by_key(|e| e.to);
        want_s.sort_by_key(|e| e.to);
        assert_eq!(got_s, want_s, "{id:?}");
    }
}

#[test]
fn block_size_sweep_preserves_contents() {
    let net = test_network(7);
    for block in [512usize, 1024, 2048, 4096] {
        for am in all_methods(&net, block) {
            assert_eq!(am.file().len(), net.len(), "{} at {block}", am.name());
        }
    }
}
