//! Stress: snapshot-consistent reads racing a committing writer.
//!
//! The serving layer shares one `Ccam` between a single writer and many
//! readers through `EpochCell`. Since the MVCC-lite rework, readers do
//! not block on the writer at all: `read()` pins the last *published*
//! snapshot (a `Ccam<SnapshotStore>` view), and a commit atomically
//! publishes a new one. A reader can therefore never observe a
//! half-applied transaction — only the committed state before it or
//! after it — and a pinned snapshot never changes underneath the
//! reader, even while `reorganize_full` rewrites the whole file.
//!
//! Three escalating tests:
//!
//! 1. `reads_during_commit_see_only_committed_states` — sentinel
//!    stamping: every transaction stamps one generation number into
//!    several nodes; readers must see all sentinels agree (atomicity)
//!    and generations move forward only (no uncommitted state).
//! 2. `pinned_snapshots_match_the_committed_generation_ledger` — the
//!    snapshot-isolation property proper, over a WAL-backed store with
//!    injected ENOSPC aborts: every pinned snapshot is byte-identical
//!    to exactly the generation the writer committed at that epoch,
//!    and stays immutable while held.
//! 3. `panicking_writer_poisons_cell_and_recover_rolls_back` — a
//!    writer that panics mid-transaction must not tear pinned readers,
//!    must fail *new* reads fast, and `recover()` must roll the
//!    uncommitted mutation back.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use ccam::core::am::{AccessMethod, Ccam, CcamBuilder};
use ccam::core::epoch::EpochCell;
use ccam::core::query::route::evaluate_route;
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::walks::random_walk_routes;
use ccam::graph::Network;
use ccam::storage::{FullDiskStore, MemPageStore, PageStore, WalStore};

const WRITE_TRANSACTIONS: u64 = 60;
const REORG_EVERY: u64 = 10;

fn test_network(seed: u64) -> Network {
    road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed,
    })
}

fn stamp(generation: u64) -> Vec<u8> {
    generation.to_le_bytes().to_vec()
}

fn read_stamp(payload: &[u8]) -> u64 {
    let bytes: [u8; 8] = payload.try_into().expect("sentinel payload is 8 bytes");
    u64::from_le_bytes(bytes)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ccam-rdc-{}-{}", std::process::id(), name))
}

/// Layout-independent digest of every record reachable in the file.
/// Two views digest equal iff they hold the same logical node set
/// (ids, coordinates, payloads, edges) — which is exactly what one
/// committed generation pins.
fn digest<S: PageStore>(am: &Ccam<S>) -> u64 {
    let mut nodes = std::collections::BTreeMap::new();
    for (_page, records) in am.file().scan_uncounted().expect("scan pinned view") {
        for node in records {
            nodes.insert(node.id.0, node);
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (id, node) in &nodes {
        id.hash(&mut h);
        node.x.hash(&mut h);
        node.y.hash(&mut h);
        node.payload.hash(&mut h);
        for e in &node.successors {
            e.to.0.hash(&mut h);
            e.cost.hash(&mut h);
        }
        for p in &node.predecessors {
            p.0.hash(&mut h);
        }
    }
    h.finish()
}

#[test]
fn reads_during_commit_see_only_committed_states() {
    let net = test_network(5);
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let ids = net.node_ids();
    let sentinels = [
        ids[0],
        ids[ids.len() / 3],
        ids[2 * ids.len() / 3],
        ids[ids.len() - 1],
    ];
    let routes = random_walk_routes(&net, 8, 10, 9);

    let db = Arc::new(EpochCell::new(am).unwrap());

    // Generation 0: put every sentinel into a known committed state
    // before any reader starts, and record the read-only baselines.
    {
        let mut am = db.write().unwrap();
        for &id in &sentinels {
            let deleted = am.delete_node(id).unwrap().unwrap();
            let mut node = deleted.data;
            node.payload = stamp(0);
            am.insert_node(&node, &deleted.incoming).unwrap();
        }
        am.commit().unwrap();
    }
    let (succ_counts, route_costs): (Vec<usize>, Vec<u64>) = {
        let am = db.read().unwrap();
        (
            sentinels
                .iter()
                .map(|&id| am.get_successors(id).unwrap().len())
                .collect(),
            routes
                .iter()
                .map(|r| {
                    let eval = evaluate_route(&*am, r).unwrap();
                    assert!(eval.complete, "baseline route must be complete");
                    eval.total_cost
                })
                .collect(),
        )
    };
    let epoch_at_start = db.epoch();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writer: one committed transaction per generation; every
        // REORG_EVERY-th also rewrites the whole file layout while
        // still inside the same exclusive critical section.
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for generation in 1..=WRITE_TRANSACTIONS {
                    let mut am = db.write().unwrap();
                    for &id in &sentinels {
                        let deleted = am.delete_node(id).unwrap().unwrap();
                        let mut node = deleted.data;
                        node.payload = stamp(generation);
                        am.insert_node(&node, &deleted.incoming).unwrap();
                    }
                    if generation % REORG_EVERY == 0 {
                        let crr = am.reorganize_full().unwrap();
                        assert!(crr > 0.0);
                    }
                    am.commit().unwrap();
                }
                stop.store(true, Ordering::Release);
            });
        }

        // Readers: loop until the writer finishes, then one final pass
        // that must observe the last generation.
        for reader in 0..3usize {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let succ_counts = &succ_counts;
            let route_costs = &route_costs;
            let routes = &routes;
            s.spawn(move || {
                let mut last_seen = 0u64;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let am = db.read().unwrap();
                    // All sentinels agree: the transaction is atomic.
                    let generations: Vec<u64> = sentinels
                        .iter()
                        .map(|&id| read_stamp(&am.find(id).unwrap().unwrap().payload))
                        .collect();
                    assert!(
                        generations.iter().all(|&g| g == generations[0]),
                        "reader {reader} saw a torn transaction: {generations:?}"
                    );
                    // Generations only move forward: nothing uncommitted
                    // (or rolled back) ever becomes visible.
                    assert!(
                        generations[0] >= last_seen,
                        "reader {reader} saw generation go backwards: \
                         {} after {last_seen}",
                        generations[0]
                    );
                    last_seen = generations[0];
                    // Structure queries stay valid mid-churn: the edge
                    // set is delete/re-insert invariant, so successor
                    // counts and route costs never change.
                    for (k, &id) in sentinels.iter().enumerate() {
                        assert_eq!(am.get_successors(id).unwrap().len(), succ_counts[k]);
                    }
                    let r = &routes[last_seen as usize % routes.len()];
                    let eval = evaluate_route(&*am, r).unwrap();
                    assert!(eval.complete);
                    assert_eq!(
                        eval.total_cost,
                        route_costs[last_seen as usize % route_costs.len()]
                    );
                    drop(am);
                    if done {
                        assert_eq!(
                            last_seen, WRITE_TRANSACTIONS,
                            "final read after writer exit must see its last commit"
                        );
                        break;
                    }
                }
            });
        }
    });

    // Every committed write() above was one epoch bump: the initial
    // stamping transaction plus WRITE_TRANSACTIONS generations.
    assert_eq!(db.epoch(), epoch_at_start + WRITE_TRANSACTIONS);
}

/// The snapshot-isolation property proper: every snapshot a reader
/// pins is byte-identical to exactly ONE committed generation — the
/// one the writer recorded in a ledger at that epoch — and stays
/// immutable for as long as the pin is held, even while the writer
/// churns, reorganizes, and aborts on injected ENOSPC faults.
#[test]
fn pinned_snapshots_match_the_committed_generation_ledger() {
    const GENERATIONS: u64 = 30;
    const ABORT_EVERY: u64 = 7;

    let net = test_network(11);
    let ids = net.node_ids();
    let sentinels = [ids[0], ids[ids.len() / 2], ids[ids.len() - 1]];

    // Full durable stack with a fault injector on top: ENOSPC bites
    // BEFORE anything reaches the WAL overlay, so an aborted
    // transaction genuinely rolls back.
    let wal_path = temp_path("ledger.wal");
    let _ = std::fs::remove_file(&wal_path);
    let mem = MemPageStore::new(1024).unwrap();
    let wal = WalStore::create(mem, &wal_path).unwrap();
    let (store, disk) = FullDiskStore::new(wal);
    let mut am = CcamBuilder::new(1024).build_static_on(store, &net).unwrap();
    am.file_mut().set_auto_commit(true);
    am.enable_snapshots().unwrap();

    let db = Arc::new(EpochCell::new(am).unwrap());

    // ledger[epoch] = digest of the generation published at that epoch.
    let ledger: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let snap = db.read().unwrap();
        ledger.lock().unwrap().insert(snap.epoch(), digest(&snap));
    }

    let stop = Arc::new(AtomicBool::new(false));
    // (epoch, digest) pairs observed by readers, checked against the
    // ledger once the writer is done.
    let observed: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        {
            let db = Arc::clone(&db);
            let ledger = Arc::clone(&ledger);
            let stop = Arc::clone(&stop);
            let disk = Arc::clone(&disk);
            s.spawn(move || {
                for generation in 1..=GENERATIONS {
                    if generation % ABORT_EVERY == 0 {
                        // Injected ENOSPC: the transaction fails, the
                        // guard is dropped without commit, and nothing
                        // of it may ever become visible.
                        let epoch_before = db.epoch();
                        let faults_before = disk.injected_faults();
                        disk.fill_after(0, false);
                        {
                            let mut w = db.write().unwrap();
                            let r = w.delete_node(sentinels[0]);
                            assert!(
                                r.is_err(),
                                "generation {generation}: write on a full disk must fail"
                            );
                            // Drop without commit: a benign abort, not
                            // a poison.
                        }
                        disk.drain();
                        assert!(disk.injected_faults() > faults_before);
                        assert_eq!(
                            db.epoch(),
                            epoch_before,
                            "aborted transaction must not bump the epoch"
                        );
                        let snap = db.read().unwrap();
                        assert_eq!(
                            digest(&snap),
                            ledger.lock().unwrap()[&epoch_before],
                            "aborted transaction leaked into the published view"
                        );
                        continue;
                    }
                    let mut w = db.write().unwrap();
                    for &id in &sentinels {
                        let deleted = w.delete_node(id).unwrap().unwrap();
                        let mut node = deleted.data;
                        node.payload = stamp(generation);
                        w.insert_node(&node, &deleted.incoming).unwrap();
                    }
                    if generation % 5 == 0 {
                        w.reorganize_full().unwrap();
                    }
                    let epoch = w.commit().unwrap();
                    let snap = db.read().unwrap();
                    assert_eq!(snap.epoch(), epoch);
                    ledger.lock().unwrap().insert(epoch, digest(&snap));
                }
                stop.store(true, Ordering::Release);
            });
        }

        for _reader in 0..2usize {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let observed = Arc::clone(&observed);
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let snap = db.read().unwrap();
                    let epoch = snap.epoch();
                    let d1 = digest(&snap);
                    // The pin must hold the generation still while the
                    // writer keeps committing underneath.
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    let d2 = digest(&snap);
                    assert_eq!(d1, d2, "pinned snapshot mutated while held");
                    observed.lock().unwrap().push((epoch, d1));
                }
            });
        }
    });

    // Every observation corresponds to exactly the generation the
    // writer committed at that epoch — never a blend, never an
    // aborted transaction.
    let ledger = ledger.lock().unwrap();
    let observed = observed.lock().unwrap();
    assert!(!observed.is_empty());
    for &(epoch, d) in observed.iter() {
        let committed = ledger
            .get(&epoch)
            .unwrap_or_else(|| panic!("reader pinned unknown epoch {epoch}"));
        assert_eq!(
            *committed, d,
            "epoch {epoch}: pinned snapshot differs from the committed generation"
        );
    }
    // 30 generations, every 7th aborted: 26 epoch bumps on top of the
    // initial publish (epoch 0).
    let committed_gens = GENERATIONS - GENERATIONS / ABORT_EVERY;
    assert_eq!(db.epoch(), committed_gens);

    let _ = std::fs::remove_file(&wal_path);
}

/// A writer that panics mid-transaction: already-pinned snapshots stay
/// readable, new reads fail fast with a poison error, and `recover()`
/// rolls the uncommitted mutation back before republishing.
#[test]
fn panicking_writer_poisons_cell_and_recover_rolls_back() {
    let net = test_network(23);
    let target = net.node_ids()[3];

    let wal_path = temp_path("panic.wal");
    let _ = std::fs::remove_file(&wal_path);
    let mem = MemPageStore::new(1024).unwrap();
    let wal = WalStore::create(mem, &wal_path).unwrap();
    let mut am = CcamBuilder::new(1024).build_static_on(wal, &net).unwrap();
    // Explicit transaction boundaries: the mutation below stays
    // uncommitted in the WAL overlay so recover() can roll it back.
    am.file_mut().set_auto_commit(false);
    am.enable_snapshots().unwrap();

    let db = Arc::new(EpochCell::new(am).unwrap());
    let before = db.read().unwrap();
    assert!(before.find(target).unwrap().is_some());
    let before_digest = digest(&before);

    // Readers racing the panicking writer: whatever they pin must be
    // the committed generation — the in-flight delete never shows.
    let crashed = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let crashed = Arc::clone(&crashed);
            s.spawn(move || {
                while !crashed.load(Ordering::Acquire) {
                    match db.read() {
                        Ok(snap) => {
                            assert!(
                                snap.find(target).unwrap().is_some(),
                                "reader saw the uncommitted delete"
                            );
                        }
                        // Poisoned window: fail-fast is the contract.
                        Err(_) => break,
                    }
                }
            });
        }
        {
            let db = Arc::clone(&db);
            let crashed = Arc::clone(&crashed);
            s.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut w = db.write().unwrap();
                    w.delete_node(target).unwrap().unwrap();
                    panic!("writer dies mid-transaction");
                }));
                assert!(result.is_err());
                crashed.store(true, Ordering::Release);
            });
        }
    });

    // The cell is poisoned: new reads and writes fail fast...
    assert!(db.is_poisoned());
    assert!(db.read().is_err());
    assert!(db.write().is_err());
    // ...but the snapshot pinned BEFORE the crash is still fully
    // readable and unchanged.
    assert!(before.find(target).unwrap().is_some());
    assert_eq!(digest(&before), before_digest);

    // Recovery rolls the uncommitted delete back and republishes the
    // committed generation.
    db.recover().unwrap();
    assert!(!db.is_poisoned());
    let after = db.read().unwrap();
    assert!(
        after.find(target).unwrap().is_some(),
        "recover must roll the uncommitted delete back"
    );
    assert_eq!(digest(&after), before_digest);

    // The recovered cell accepts committed work again.
    {
        let mut w = db.write().unwrap();
        let deleted = w.delete_node(target).unwrap().unwrap();
        let mut node = deleted.data;
        node.payload = stamp(99);
        w.insert_node(&node, &deleted.incoming).unwrap();
        w.commit().unwrap();
    }
    let snap = db.read().unwrap();
    assert_eq!(read_stamp(&snap.find(target).unwrap().unwrap().payload), 99);

    let _ = std::fs::remove_file(&wal_path);
}
