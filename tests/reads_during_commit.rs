//! Stress: snapshot-consistent reads racing a committing writer.
//!
//! The serving layer (PR 6) shares one `Ccam` between a single writer
//! and many readers through `EpochCell`: a write transaction holds the
//! exclusive guard for its whole critical section, so a reader can
//! never observe a half-applied transaction — only the committed state
//! before it or after it. This test exercises that guarantee directly
//! (no sockets): reader threads run `find` / `get_successors` /
//! route evaluation in a tight loop while a writer continuously
//! commits multi-node transactions and periodic full reorganizations.
//!
//! Each writer transaction stamps the SAME generation number into
//! several sentinel nodes. A reader holding one read guard must see
//! all sentinels agree on a single generation (never a mix = torn
//! transaction), and generations must be monotone across successive
//! reads (never a rollback = uncommitted state).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ccam::core::am::{AccessMethod, CcamBuilder};
use ccam::core::epoch::EpochCell;
use ccam::core::query::route::evaluate_route;
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::walks::random_walk_routes;

const WRITE_TRANSACTIONS: u64 = 60;
const REORG_EVERY: u64 = 10;

fn stamp(generation: u64) -> Vec<u8> {
    generation.to_le_bytes().to_vec()
}

fn read_stamp(payload: &[u8]) -> u64 {
    let bytes: [u8; 8] = payload.try_into().expect("sentinel payload is 8 bytes");
    u64::from_le_bytes(bytes)
}

#[test]
fn reads_during_commit_see_only_committed_states() {
    let net = road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 5,
    });
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let ids = net.node_ids();
    let sentinels = [
        ids[0],
        ids[ids.len() / 3],
        ids[2 * ids.len() / 3],
        ids[ids.len() - 1],
    ];
    let routes = random_walk_routes(&net, 8, 10, 9);

    let db = Arc::new(EpochCell::new(am));

    // Generation 0: put every sentinel into a known committed state
    // before any reader starts, and record the read-only baselines.
    {
        let mut am = db.write();
        for &id in &sentinels {
            let deleted = am.delete_node(id).unwrap().unwrap();
            let mut node = deleted.data;
            node.payload = stamp(0);
            am.insert_node(&node, &deleted.incoming).unwrap();
        }
    }
    let (succ_counts, route_costs): (Vec<usize>, Vec<u64>) = {
        let am = db.read();
        (
            sentinels
                .iter()
                .map(|&id| am.get_successors(id).unwrap().len())
                .collect(),
            routes
                .iter()
                .map(|r| {
                    let eval = evaluate_route(&*am, r).unwrap();
                    assert!(eval.complete, "baseline route must be complete");
                    eval.total_cost
                })
                .collect(),
        )
    };
    let epoch_at_start = db.epoch();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writer: one committed transaction per generation; every
        // REORG_EVERY-th also rewrites the whole file layout while
        // still inside the same exclusive critical section.
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for generation in 1..=WRITE_TRANSACTIONS {
                    let mut am = db.write();
                    for &id in &sentinels {
                        let deleted = am.delete_node(id).unwrap().unwrap();
                        let mut node = deleted.data;
                        node.payload = stamp(generation);
                        am.insert_node(&node, &deleted.incoming).unwrap();
                    }
                    if generation % REORG_EVERY == 0 {
                        let crr = am.reorganize_full().unwrap();
                        assert!(crr > 0.0);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }

        // Readers: loop until the writer finishes, then one final pass
        // that must observe the last generation.
        for reader in 0..3usize {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let succ_counts = &succ_counts;
            let route_costs = &route_costs;
            let routes = &routes;
            s.spawn(move || {
                let mut last_seen = 0u64;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let am = db.read();
                    // All sentinels agree: the transaction is atomic.
                    let generations: Vec<u64> = sentinels
                        .iter()
                        .map(|&id| read_stamp(&am.find(id).unwrap().unwrap().payload))
                        .collect();
                    assert!(
                        generations.iter().all(|&g| g == generations[0]),
                        "reader {reader} saw a torn transaction: {generations:?}"
                    );
                    // Generations only move forward: nothing uncommitted
                    // (or rolled back) ever becomes visible.
                    assert!(
                        generations[0] >= last_seen,
                        "reader {reader} saw generation go backwards: \
                         {} after {last_seen}",
                        generations[0]
                    );
                    last_seen = generations[0];
                    // Structure queries stay valid mid-churn: the edge
                    // set is delete/re-insert invariant, so successor
                    // counts and route costs never change.
                    for (k, &id) in sentinels.iter().enumerate() {
                        assert_eq!(am.get_successors(id).unwrap().len(), succ_counts[k]);
                    }
                    let r = &routes[last_seen as usize % routes.len()];
                    let eval = evaluate_route(&*am, r).unwrap();
                    assert!(eval.complete);
                    assert_eq!(
                        eval.total_cost,
                        route_costs[last_seen as usize % route_costs.len()]
                    );
                    drop(am);
                    if done {
                        assert_eq!(
                            last_seen, WRITE_TRANSACTIONS,
                            "final read after writer exit must see its last commit"
                        );
                        break;
                    }
                }
            });
        }
    });

    // Every write() above was one epoch bump: the initial stamping
    // transaction plus WRITE_TRANSACTIONS generations.
    assert_eq!(db.epoch(), epoch_at_start + WRITE_TRANSACTIONS);
}
