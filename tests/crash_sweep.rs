//! Deterministic crash-sweep harness (see also `tests/recovery.rs`).
//!
//! Where `recovery.rs` spot-checks a handful of crash indices, this
//! sweep is exhaustive: a seeded insert/delete workload runs under
//! **each of the four reorganization policies**, and the store is
//! killed after the k-th physical store operation **for every k** until
//! a round outlives the whole workload — so every instruction boundary
//! of the commit protocol (pass-through allocation, batch append, apply,
//! inner sync) gets its own crash. Each crash index is exercised with
//! clean power-cuts and with torn page writes, and a separate sweep
//! injects `ENOSPC` / short writes through
//! [`ccam::storage::FullDiskStore`] instead of killing the process.
//!
//! After every simulated failure the round asserts:
//!
//! * the reopened file passes the full `check::verify` audit,
//! * committed operations are never lost, the in-flight operation is
//!   all-or-nothing,
//! * CRR/WCRR still evaluate to a sane ratio in (0, 1],
//! * **recovery is idempotent**: recovering two independent copies of
//!   the crashed files — and recovering the same copy twice — yields
//!   byte-identical page files and the same rebuilt index.
//!
//! Determinism: the workload is driven by [`SweepRng`] (SplitMix64) from
//! `CRASH_SWEEP_SEED` (default 23); no OS entropy, no clocks. The
//! default tests run a strided subset of crash indices (dense early,
//! where the commit protocol's phases live); the `#[ignore]`d
//! `exhaustive_*` variants sweep every k and back the CI `crash-sweep`
//! job.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ccam::core::am::{AccessMethod, Ccam, CcamBuilder, DeletedNode};
use ccam::core::{check, ReorgPolicy};
use ccam::graph::roadmap::{road_map, RoadMapConfig};
use ccam::graph::{Network, NodeId};
use ccam::storage::recovery::live_snapshot;
use ccam::storage::{
    wal_sidecar, CrashStore, FilePageStore, FullDiskStore, MemPageStore, PageId, PageStore,
    StorageError, SweepRng, TornWrite, WalStore,
};

const BLOCK: usize = 512;
const CHURN_OPS: usize = 12;

/// Every policy from Table 1, with a short lazy trigger so the sweep
/// actually crosses lazy sweeps.
const POLICIES: [(ReorgPolicy, &str); 4] = [
    (ReorgPolicy::FirstOrder, "first"),
    (ReorgPolicy::SecondOrder, "second"),
    (ReorgPolicy::HigherOrder, "higher"),
    (ReorgPolicy::Lazy { every: 3 }, "lazy"),
];

fn sweep_seed() -> u64 {
    std::env::var("CRASH_SWEEP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(23)
}

/// ~200-node Minneapolis-proportioned road map (14×14 lattice − 1%).
fn net() -> Network {
    road_map(&RoadMapConfig::scaled(14, sweep_seed()))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccam-sweep-{}-{}", std::process::id(), name));
    p
}

/// A committed golden database all rounds start from (one build, many
/// `fs::copy`s — the sweep would be quadratic if every round rebuilt).
struct Golden {
    db: PathBuf,
    wal: PathBuf,
}

impl Golden {
    fn build(net: &Network, name: &str) -> Golden {
        let db = temp_path(&format!("golden-{name}.db"));
        let wal = wal_sidecar(&db);
        std::fs::remove_file(&db).ok();
        std::fs::remove_file(&wal).ok();
        let store = FilePageStore::create(&db, BLOCK).unwrap();
        let ws = WalStore::create(store, &wal).unwrap();
        let am = CcamBuilder::new(BLOCK).build_static_on(ws, net).unwrap();
        am.file().commit().unwrap();
        drop(am);
        Golden { db, wal }
    }

    /// Copies the golden pair to round-private paths.
    fn clone_to(&self, name: &str) -> (PathBuf, PathBuf) {
        let db = temp_path(&format!("{name}.db"));
        let wal = wal_sidecar(&db);
        std::fs::copy(&self.db, &db).unwrap();
        std::fs::copy(&self.wal, &wal).unwrap();
        (db, wal)
    }
}

impl Drop for Golden {
    fn drop(&mut self) {
        std::fs::remove_file(&self.db).ok();
        std::fs::remove_file(&self.wal).ok();
    }
}

/// What the seeded churn committed before the failure (if any).
struct ChurnResult {
    /// Victim → expected presence after its last committed op.
    committed: BTreeMap<NodeId, bool>,
    /// `(victim, present_before, present_after)` of the failed op.
    inflight: Option<(NodeId, bool, bool)>,
}

/// True when no stashed (currently deleted) node is adjacent to `v` in
/// the original network — deleting or reinserting `v` then only patches
/// records that are actually present.
fn neighbors_live(net: &Network, stash: &BTreeMap<NodeId, DeletedNode>, v: NodeId) -> bool {
    let rec = net.node(v).unwrap();
    rec.successors.iter().all(|e| !stash.contains_key(&e.to))
        && rec.predecessors.iter().all(|p| !stash.contains_key(p))
}

/// Seeded insert/delete churn: each step either deletes a random live
/// node or reinserts a previously deleted one (several nodes can be
/// absent at once, exercising underflow merges, overflow splits on
/// reinsert, and every reorganization policy). Stops at the first
/// failed operation, recording the in-flight victim.
fn churn<S: PageStore>(am: &mut Ccam<S>, net: &Network, seed: u64, ops: usize) -> ChurnResult {
    let ids = net.node_ids();
    let mut rng = SweepRng::new(seed);
    let mut stash: BTreeMap<NodeId, DeletedNode> = BTreeMap::new();
    let mut committed: BTreeMap<NodeId, bool> = BTreeMap::new();
    let mut inflight = None;
    for _ in 0..ops {
        let reinsert = !stash.is_empty() && rng.gen_bool(1, 2);
        if reinsert {
            let keys: Vec<NodeId> = stash
                .keys()
                .copied()
                .filter(|&v| neighbors_live(net, &stash, v))
                .collect();
            let Some(&v) = keys.get(rng.gen_range(keys.len().max(1) as u64) as usize) else {
                continue;
            };
            let del = stash.remove(&v).unwrap();
            match am.insert_node(&del.data, &del.incoming) {
                Ok(()) => {
                    committed.insert(v, true);
                }
                Err(_) => {
                    inflight = Some((v, false, true));
                    break;
                }
            }
        } else {
            let mut pick = None;
            for _ in 0..64 {
                let c = ids[rng.gen_range(ids.len() as u64) as usize];
                if !stash.contains_key(&c) && neighbors_live(net, &stash, c) {
                    pick = Some(c);
                    break;
                }
            }
            let Some(v) = pick else { continue };
            match am.delete_node(v) {
                Ok(del) => {
                    stash.insert(v, del.expect("picked victim must be live"));
                    committed.insert(v, false);
                }
                Err(_) => {
                    inflight = Some((v, true, false));
                    break;
                }
            }
        }
    }
    ChurnResult {
        committed,
        inflight,
    }
}

/// `(page snapshot, index page map, replayed batches)` from [`recover`].
type RecoveredState = (Vec<(PageId, Vec<u8>)>, Vec<(NodeId, PageId)>, u64);

/// Recovers `db`+`wal` and returns the [`RecoveredState`]. The snapshot
/// is taken through the recovered store — the byte truth an idempotency
/// comparison needs.
fn recover(db: &Path, wal: &Path) -> RecoveredState {
    let store = FilePageStore::open(db).unwrap();
    let (ws, report) = WalStore::open(store, wal).unwrap();
    let snapshot = live_snapshot(&ws).unwrap();
    let am = CcamBuilder::new(BLOCK).open_on(ws).unwrap();
    let audit = check::verify(am.file()).unwrap();
    assert!(
        audit.is_clean(),
        "recovered file fails audit: {:?}",
        audit.issues
    );
    let mut map: Vec<(NodeId, PageId)> = am.file().page_map().unwrap().into_iter().collect();
    map.sort();
    (snapshot, map, report.replayed_batches)
}

/// Audits a reopened access method against the churn ledger.
fn assert_ledger<S: PageStore>(am: &Ccam<S>, r: &ChurnResult, ctx: &str) {
    for (&v, &present) in &r.committed {
        if r.inflight.map(|(iv, _, _)| iv) == Some(v) {
            continue; // judged by the in-flight rule
        }
        assert_eq!(
            am.find(v).unwrap().is_some(),
            present,
            "{ctx}: committed state of victim {v} lost"
        );
    }
    if let Some((v, pre, post)) = r.inflight {
        let got = am.find(v).unwrap().is_some();
        assert!(
            got == pre || got == post,
            "{ctx}: in-flight victim {v} in impossible state"
        );
    }
    // WCRR sanity: connectivity ratios remain well-defined ratios.
    let crr = am.crr().unwrap();
    assert!((0.0..=1.0).contains(&crr), "{ctx}: CRR {crr} out of range");
    let wcrr = am.wcrr(&std::collections::HashMap::new()).unwrap();
    assert!(
        (0.0..=1.0).contains(&wcrr),
        "{ctx}: WCRR {wcrr} out of range"
    );
}

/// One crash round at index `k`: copy the golden files, churn under
/// `policy` with a scheduled power failure, then recover **two
/// independent copies** of the crashed files plus the original twice,
/// asserting identical bytes and a clean audit each time. Returns true
/// when the crash fired (false = the round outlived the workload).
fn crash_round(
    net: &Network,
    golden: &Golden,
    policy: ReorgPolicy,
    k: u64,
    mode: TornWrite,
    name: &str,
) -> bool {
    let (db, wal) = golden.clone_to(name);
    let store = FilePageStore::open(&db).unwrap();
    let (cstore, ctl) = CrashStore::new(store);
    let (ws, report) = WalStore::open(cstore, &wal).unwrap();
    assert!(report.was_clean(), "golden copy must open clean");
    let mut am = CcamBuilder::new(BLOCK).policy(policy).open_on(ws).unwrap();
    am.file_mut().set_auto_commit(true);

    ctl.crash_after(k, mode);
    let r = churn(&mut am, net, sweep_seed() ^ k, CHURN_OPS);
    let crashed = ctl.is_dead();
    if crashed {
        // Power is gone: nothing flushes, drops or rolls back.
        std::mem::forget(am);
    } else {
        assert!(r.inflight.is_none(), "ops failed without a crash");
        drop(am);
    }

    // Idempotency copy *before* any recovery touches the files.
    let db2 = temp_path(&format!("{name}-2.db"));
    let wal2 = wal_sidecar(&db2);
    std::fs::copy(&db, &db2).unwrap();
    std::fs::copy(&wal, &wal2).unwrap();

    let ctx = format!("k={k} {mode:?} {policy:?}");
    let (snap_a, map_a, _) = recover(&db, &wal);
    let (snap_b, map_b, _) = recover(&db2, &wal2);
    assert_eq!(
        snap_a, snap_b,
        "{ctx}: two recoveries of the same crash diverge"
    );
    assert_eq!(map_a, map_b, "{ctx}: recovered indexes diverge");
    // Recovering an already-recovered file changes nothing.
    let (snap_c, map_c, replayed) = recover(&db, &wal);
    assert_eq!(replayed, 0, "{ctx}: second recovery replayed batches");
    assert_eq!(snap_a, snap_c, "{ctx}: re-recovery changed page bytes");
    assert_eq!(map_a, map_c, "{ctx}: re-recovery changed the index");

    // Full ledger audit on the recovered file.
    let store = FilePageStore::open(&db).unwrap();
    let (ws, _) = WalStore::open(store, &wal).unwrap();
    let am2 = CcamBuilder::new(BLOCK).policy(policy).open_on(ws).unwrap();
    assert_ledger(&am2, &r, &ctx);

    for p in [&db, &wal, &db2, &wal2] {
        std::fs::remove_file(p).ok();
    }
    crashed
}

/// One disk-full round: the store reports `ENOSPC` (optionally after a
/// short write) from the k-th mutation on. No power failure — the
/// process survives, so the failed operation must abort gracefully:
/// the in-memory file stays consistent, and once space is freed the
/// workload resumes without reopening.
fn enospc_round(
    net: &Network,
    golden: &Golden,
    policy: ReorgPolicy,
    k: u64,
    short_write: bool,
    name: &str,
) -> bool {
    let (db, wal) = golden.clone_to(name);
    let store = FilePageStore::open(&db).unwrap();
    let (fstore, ctl) = FullDiskStore::new(store);
    let (ws, _) = WalStore::open(fstore, &wal).unwrap();
    let mut am = CcamBuilder::new(BLOCK).policy(policy).open_on(ws).unwrap();
    am.file_mut().set_auto_commit(true);

    ctl.fill_after(k, short_write);
    let r = churn(&mut am, net, sweep_seed() ^ k, CHURN_OPS);
    let filled = ctl.injected_faults() > 0;
    let ctx = format!("k={k} short={short_write} {policy:?}");
    assert_eq!(
        filled,
        r.inflight.is_some(),
        "{ctx}: ops and injected faults disagree"
    );

    if filled {
        // Graceful abort: with the disk still full, the live file must
        // already be consistent and queryable — either rolled back to
        // the last committed state or (fault past the commit point)
        // holding the whole logged batch.
        let audit = check::verify(am.file()).unwrap();
        assert!(
            audit.is_clean(),
            "{ctx}: file inconsistent after ENOSPC: {:?}",
            audit.issues
        );
        assert_ledger(&am, &r, &ctx);

        // Operator frees space: the same handle resumes.
        ctl.drain();
        am.file().commit().unwrap();
        let v = r.inflight.unwrap().0;
        match am.find(v).unwrap() {
            Some(_) => {
                am.delete_node(v).unwrap().unwrap();
            }
            None => {
                let rec = net.node(v).unwrap();
                let incoming: Vec<(NodeId, u32)> = net
                    .nodes()
                    .flat_map(|n| {
                        n.successors
                            .iter()
                            .filter(|e| e.to == v)
                            .map(move |e| (n.id, e.cost))
                    })
                    .collect();
                am.insert_node(rec, &incoming).unwrap();
            }
        }
        assert!(check::verify(am.file()).unwrap().is_clean());
    }
    drop(am);

    // And the on-disk state reopens clean regardless.
    let store = FilePageStore::open(&db).unwrap();
    let (ws, _) = WalStore::open(store, &wal).unwrap();
    let am2 = CcamBuilder::new(BLOCK).open_on(ws).unwrap();
    assert!(check::verify(am2.file()).unwrap().is_clean(), "{ctx}");

    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&wal).ok();
    filled
}

/// Sweeps `k = 0, 1, 2, …` until a round outlives the workload, calling
/// `round` for each. Returns the number of rounds that failed/crashed.
fn sweep_every_k(mut round: impl FnMut(u64) -> bool, max_k: u64) -> u64 {
    let mut fired = 0;
    for k in 0..=max_k {
        if round(k) {
            fired += 1;
        } else {
            return fired;
        }
    }
    panic!("workload still crashing at k={max_k}: sweep bound too low");
}

/// Strided crash indices for the fast default tests: every boundary of
/// the early commit-protocol phases, then exponentially sparser.
fn strided_ks() -> Vec<u64> {
    let mut ks: Vec<u64> = (0..16).collect();
    let mut k = 20u64;
    while k < 2_000 {
        ks.push(k);
        k += k / 4;
    }
    ks
}

#[test]
fn crash_sweep_strided_all_policies() {
    let net = net();
    let golden = Golden::build(&net, "strided");
    let modes = [TornWrite::None, TornWrite::Partial, TornWrite::Zeroed];
    for (policy, pname) in POLICIES {
        let mut crashes = 0;
        for (i, &k) in strided_ks().iter().enumerate() {
            let mode = modes[i % modes.len()];
            if !crash_round(&net, &golden, policy, k, mode, &format!("st-{pname}-{k}")) {
                break;
            }
            crashes += 1;
        }
        assert!(crashes >= 8, "{pname}: only {crashes} rounds crashed");
    }
}

#[test]
fn enospc_sweep_strided_all_policies() {
    let net = net();
    let golden = Golden::build(&net, "enospc");
    for (policy, pname) in POLICIES {
        let mut hits = 0;
        for (i, &k) in strided_ks().iter().enumerate() {
            let short = i % 2 == 1;
            if !enospc_round(&net, &golden, policy, k, short, &format!("en-{pname}-{k}")) {
                break;
            }
            hits += 1;
        }
        assert!(hits >= 8, "{pname}: only {hits} rounds hit ENOSPC");
    }
}

/// The exhaustive variant behind the CI `crash-sweep` job: every crash
/// index, every torn-write mode, every policy. Run with
/// `cargo test --release --test crash_sweep -- --ignored`.
#[test]
#[ignore = "exhaustive; run by the CI crash-sweep job"]
fn exhaustive_crash_sweep_every_k() {
    let net = net();
    let golden = Golden::build(&net, "exh");
    for (policy, pname) in POLICIES {
        for mode in [TornWrite::None, TornWrite::Partial, TornWrite::Zeroed] {
            let fired = sweep_every_k(
                |k| crash_round(&net, &golden, policy, k, mode, &format!("ex-{pname}-{k}")),
                5_000,
            );
            assert!(fired > 0, "{pname} {mode:?}: sweep never crashed");
        }
    }
}

#[test]
#[ignore = "exhaustive; run by the CI crash-sweep job"]
fn exhaustive_enospc_sweep_every_k() {
    let net = net();
    let golden = Golden::build(&net, "exh-en");
    for (policy, pname) in POLICIES {
        for short in [false, true] {
            let fired = sweep_every_k(
                |k| enospc_round(&net, &golden, policy, k, short, &format!("xe-{pname}-{k}")),
                5_000,
            );
            assert!(fired > 0, "{pname} short={short}: sweep never filled");
        }
    }
}

/// Acceptance: across a 10 000-update workload the log never exceeds
/// the configured cap by more than one transaction's frames, while
/// every committed byte stays durable in the data file.
#[test]
fn bounded_wal_holds_cap_across_10k_updates() {
    let wal_path = temp_path("bounded-10k.wal");
    std::fs::remove_file(&wal_path).ok();
    let mut s = WalStore::create(MemPageStore::new(64).unwrap(), &wal_path).unwrap();
    const CAP: u64 = 4 * 1024;
    s.set_max_wal_bytes(Some(CAP));
    let mut rng = SweepRng::new(sweep_seed());
    let mut pages = Vec::new();
    for _ in 0..8 {
        pages.push(s.allocate().unwrap());
    }
    s.sync().unwrap();
    // One batch = a handful of page images ≤ 8 × (frame + page) bytes.
    let one_txn = 8 * (64 + 32) as u64;
    for i in 0..10_000u64 {
        let n = 1 + rng.gen_range(3) as usize;
        for _ in 0..n {
            let p = pages[rng.gen_range(pages.len() as u64) as usize];
            s.write(p, &[(i % 251) as u8; 64]).unwrap();
        }
        s.sync().unwrap();
        let len = s.wal().len();
        assert!(
            len <= CAP + one_txn,
            "update {i}: wal grew to {len} (cap {CAP})"
        );
    }
    let info = s.wal_info().unwrap();
    assert!(info.checkpoints > 10, "cap never cycled: {info:?}");
    assert!(info.commits >= 10_000);
    std::fs::remove_file(&wal_path).ok();
}

/// Property form of the idempotency guarantee: for *any* workload seed,
/// crash index, torn-write mode and reorganization policy, recovering
/// the crashed pair twice — two independent copies, and the same copy
/// again after it already recovered — yields byte-identical page files
/// and the same rebuilt index. Complements the store-level
/// `wal_replay_is_idempotent` in ccam-storage/tests/prop_storage.rs by
/// covering the full access-method stack.
mod prop_recovery {
    use super::*;
    use proptest::prelude::*;

    /// Each case builds and crashes a whole database; keep the local
    /// default modest and let CI elevate via `PROPTEST_CASES`.
    fn proptest_cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]
        #[test]
        fn recovery_is_idempotent_after_any_crash(
            seed in any::<u64>(),
            k in 0u64..600,
            mode_ix in 0usize..3,
            policy_ix in 0usize..POLICIES.len(),
        ) {
            let mode = [TornWrite::None, TornWrite::Partial, TornWrite::Zeroed][mode_ix];
            let (policy, _) = POLICIES[policy_ix];
            let net = road_map(&RoadMapConfig::scaled(8, seed));
            let name = format!("prop-{seed:x}-{k}");
            let db = temp_path(&format!("{name}.db"));
            let wal = wal_sidecar(&db);
            std::fs::remove_file(&db).ok();
            std::fs::remove_file(&wal).ok();
            let store = FilePageStore::create(&db, BLOCK).unwrap();
            let ws = WalStore::create(store, &wal).unwrap();
            let am = CcamBuilder::new(BLOCK).build_static_on(ws, &net).unwrap();
            am.file().commit().unwrap();
            drop(am);

            let store = FilePageStore::open(&db).unwrap();
            let (cstore, ctl) = CrashStore::new(store);
            let (ws, _) = WalStore::open(cstore, &wal).unwrap();
            let mut am = CcamBuilder::new(BLOCK).policy(policy).open_on(ws).unwrap();
            am.file_mut().set_auto_commit(true);
            ctl.crash_after(k, mode);
            let r = churn(&mut am, &net, seed ^ k, CHURN_OPS);
            if ctl.is_dead() {
                std::mem::forget(am);
            } else {
                drop(am);
            }

            // Idempotency copy *before* any recovery touches the files.
            let db2 = temp_path(&format!("{name}-2.db"));
            let wal2 = wal_sidecar(&db2);
            std::fs::copy(&db, &db2).unwrap();
            std::fs::copy(&wal, &wal2).unwrap();

            let (snap_a, map_a, _) = recover(&db, &wal);
            let (snap_b, map_b, _) = recover(&db2, &wal2);
            prop_assert_eq!(&snap_a, &snap_b, "independent recoveries diverge");
            prop_assert_eq!(&map_a, &map_b, "recovered indexes diverge");
            let (snap_c, map_c, replayed) = recover(&db, &wal);
            prop_assert_eq!(replayed, 0, "re-recovery replayed batches");
            prop_assert_eq!(&snap_a, &snap_c, "re-recovery changed page bytes");
            prop_assert_eq!(&map_a, &map_c, "re-recovery changed the index");

            // The recovered file still honors the workload ledger.
            let store = FilePageStore::open(&db).unwrap();
            let (ws, _) = WalStore::open(store, &wal).unwrap();
            let am2 = CcamBuilder::new(BLOCK).policy(policy).open_on(ws).unwrap();
            assert_ledger(&am2, &r, &name);

            for p in [&db, &wal, &db2, &wal2] {
                std::fs::remove_file(p).ok();
            }
        }
    }
}

/// ENOSPC on the *pass-through* allocation path aborts the batch
/// cleanly: rollback returns the allocated pages even while the disk
/// is still reported full.
#[test]
fn enospc_rollback_returns_passthrough_allocations() {
    let (fstore, ctl) = FullDiskStore::new(MemPageStore::new(64).unwrap());
    let wal_path = temp_path("enospc-alloc.wal");
    std::fs::remove_file(&wal_path).ok();
    let mut s = WalStore::create(fstore, &wal_path).unwrap();
    let a = s.allocate().unwrap();
    s.write(a, &[1u8; 64]).unwrap();
    s.sync().unwrap();

    ctl.fill_after(1, false);
    let b = s.allocate().unwrap(); // the last allocation that fits
    assert!(matches!(s.allocate(), Err(StorageError::NoSpace)));
    assert!(s.is_poisoned());
    s.rollback().unwrap(); // frees `b` although the disk is full
    assert!(!s.is_live(b));
    assert!(ctl.is_full());

    ctl.drain();
    s.write(a, &[2u8; 64]).unwrap();
    s.sync().unwrap();
    let mut buf = [0u8; 64];
    s.read(a, &mut buf).unwrap();
    assert_eq!(buf, [2u8; 64]);
    std::fs::remove_file(&wal_path).ok();
}
