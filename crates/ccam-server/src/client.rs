//! A minimal blocking client for the [`crate::protocol`] — used by the
//! `serve_load` generator, the chaos harness, the CLI and the tests.
//!
//! Resilience lives here rather than in every caller: a client can
//! propagate a per-request deadline (`set_deadline_ms`), bound its own
//! socket waits (`set_io_timeout`), retry `Overloaded` rejections with
//! capped, jittered exponential backoff ([`Backoff`],
//! [`Client::call_with_retry`]), and reconnect-and-resend through
//! connection-level failures (refused, reset, broken pipe — the
//! failover triggers). I/O errors are never retried on the *same*
//! connection — a partially read or written frame leaves the stream
//! desynchronized, so the retry path always reconnects first.
//! [`MultiClient`] extends this across endpoints: reads fail over to a
//! replica when the primary is unreachable, and `NotPrimary` redirects
//! are followed to wherever writes are currently accepted.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_response_batch, encode_request_batch, read_frame, write_frame, Request, Response, Status,
};

/// True for I/O failures that mean "the connection is gone, a fresh one
/// may work": the peer refused, reset, or abandoned the stream. Used by
/// the retry paths to distinguish reconnect-worthy failures from
/// decode/timeout errors that a new connection would not fix.
pub fn is_transport_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// One TCP connection speaking the batch protocol, closed-loop: each
/// [`Client::call`] sends one frame and blocks for its response frame.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Resolved peer address, kept so the retry path can reconnect.
    addr: SocketAddr,
    next_tag: u32,
    deadline_ms: u32,
    io_timeout: Option<Duration>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so small closed-loop frames are
    /// not delayed by Nagle's algorithm).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            addr,
            next_tag: 1,
            deadline_ms: 0,
            io_timeout: None,
        })
    }

    /// The peer address this client connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Re-establishes the connection to the same peer, carrying over the
    /// configured I/O timeout. Any in-flight frame state is abandoned
    /// (tags keep incrementing, so stale responses can never be matched).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// Sets the deadline field stamped on every subsequent request
    /// frame, in milliseconds. 0 (the default) defers to the server's
    /// configured default budget.
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// Bounds this client's own socket reads and writes: a server that
    /// stops responding fails the call with `WouldBlock`/`TimedOut`
    /// instead of hanging the caller forever. `None` restores blocking.
    /// The setting survives [`Client::reconnect`].
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.io_timeout = timeout;
        let stream = self.writer.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Sends `reqs` as one batch frame and blocks for the matching
    /// response frame (matched by tag — an `Overloaded` rejection for a
    /// later pipelined frame can never be misattributed).
    pub fn call(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        write_frame(
            &mut self.writer,
            &encode_request_batch(tag, self.deadline_ms, reqs),
        )?;
        loop {
            let Some(payload) = read_frame(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ));
            };
            let (resp_tag, resps) = decode_response_batch(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if resp_tag == tag {
                return Ok(resps);
            }
            // A response to an earlier (abandoned) frame; skip it.
        }
    }

    /// [`Client::call`], retrying two failure shapes with the same
    /// seeded backoff:
    ///
    /// - The *whole batch* rejected `Overloaded`: the server shed it
    ///   unexecuted, so a resend is safe and exact. Mixed responses are
    ///   returned as-is — some requests were answered, and re-running
    ///   those would double-count work on the server.
    /// - A transport failure ([`is_transport_error`]): the connection
    ///   is reconnected and the batch resent. A `ConnectionRefused` is
    ///   unambiguous (nothing was sent), but a reset or EOF *after*
    ///   the frame went out may re-execute requests the server already
    ///   ran — acceptable for reads and for idempotent writes
    ///   (`Upsert` replaces, it does not accumulate).
    ///
    /// Sleeps `backoff.delay(attempt)` between tries; returns the last
    /// all-`Overloaded` response or transport error when retries are
    /// exhausted.
    pub fn call_with_retry(
        &mut self,
        reqs: &[Request],
        backoff: &mut Backoff,
    ) -> io::Result<Vec<Response>> {
        let mut attempt = 0u32;
        loop {
            match self.call(reqs) {
                Ok(resps) => {
                    let all_overloaded = !resps.is_empty()
                        && resps
                            .iter()
                            .all(|r| matches!(r, Response::Error(Status::Overloaded, _)));
                    if !all_overloaded || attempt >= backoff.max_retries {
                        return Ok(resps);
                    }
                }
                Err(e) if is_transport_error(&e) => {
                    if attempt >= backoff.max_retries {
                        return Err(e);
                    }
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    // A failed reconnect (e.g. the server is still
                    // restarting) leaves the dead streams in place; the
                    // next call() fails as a transport error and burns
                    // another attempt.
                    let _ = self.reconnect();
                    continue;
                }
                Err(e) => return Err(e),
            }
            std::thread::sleep(backoff.delay(attempt));
            attempt += 1;
        }
    }

    /// Sends a raw payload as a frame, bypassing the encoder — test
    /// hook for exercising the server's `BadRequest` path.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    /// Reads one raw response frame (pairs with [`Client::send_raw`]).
    pub fn recv_raw(&mut self) -> io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.reader)
    }
}

// The borrow-split impls let `call` use the split halves of one socket;
// keep the raw stream reachable for tests that need half-close.
impl Client {
    /// Shuts down the write side, signalling the server a clean EOF.
    pub fn close_write(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }

    /// Drains and discards everything until the server closes the
    /// connection (used while shutting down gracefully).
    pub fn drain(&mut self) -> io::Result<()> {
        let mut sink = [0u8; 4096];
        loop {
            match self.reader.read(&mut sink) {
                Ok(0) => return Ok(()),
                Ok(_) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A client over an *endpoint set* (primary plus replicas) that keeps
/// serving through single-endpoint failures.
///
/// Connection policy:
/// - Lazily connects to the first reachable endpoint, starting from the
///   one that last worked.
/// - On a transport failure, rotates to the next endpoint and retries
///   (bounded by the backoff's `max_retries`) — this is how reads fail
///   over to a replica while the primary is down.
/// - When a batch comes back entirely `NotPrimary` with a non-empty
///   primary address, the client reconnects there and resends: a
///   `NotPrimary` response means the replica did *not* execute the
///   request, so the resend is exact. The redirect address is
///   remembered and preferred until it stops working.
///
/// The same re-execution caveat as [`Client::call_with_retry`] applies
/// to transport-failure resends.
pub struct MultiClient {
    endpoints: Vec<String>,
    /// Index of the endpoint the live connection (if any) points at;
    /// connection attempts start here and rotate.
    current: usize,
    /// Address learned from a `NotPrimary` redirect; tried first.
    redirect: Option<String>,
    client: Option<Client>,
    deadline_ms: u32,
    io_timeout: Option<Duration>,
}

impl MultiClient {
    /// Builds a client over `endpoints` (tried in order). Panics if the
    /// list is empty.
    pub fn new(endpoints: Vec<String>) -> MultiClient {
        assert!(!endpoints.is_empty(), "MultiClient needs >= 1 endpoint");
        MultiClient {
            endpoints,
            current: 0,
            redirect: None,
            client: None,
            deadline_ms: 0,
            io_timeout: None,
        }
    }

    /// Replaces the endpoint list (e.g. after a primary restarted on a
    /// new address) and drops the live connection so the next call
    /// reconnects against the new list.
    pub fn set_endpoints(&mut self, endpoints: Vec<String>) {
        assert!(!endpoints.is_empty(), "MultiClient needs >= 1 endpoint");
        self.endpoints = endpoints;
        self.current = 0;
        self.redirect = None;
        self.client = None;
    }

    /// Deadline stamped on every request frame (see
    /// [`Client::set_deadline_ms`]); applied to future connections too.
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
        if let Some(c) = &mut self.client {
            c.set_deadline_ms(deadline_ms);
        }
    }

    /// Socket I/O bound (see [`Client::set_io_timeout`]); applied to
    /// future connections too.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.io_timeout = timeout;
        if let Some(c) = &mut self.client {
            c.set_io_timeout(timeout)?;
        }
        Ok(())
    }

    /// The endpoint (or redirect address) the live connection points
    /// at, if connected.
    pub fn connected_to(&self) -> Option<String> {
        self.client.as_ref().map(|c| c.addr.to_string())
    }

    fn connect_to(&self, addr: &str) -> io::Result<Client> {
        let mut c = Client::connect(addr)?;
        c.set_deadline_ms(self.deadline_ms);
        c.set_io_timeout(self.io_timeout)?;
        Ok(c)
    }

    /// Connects to the redirect target if one is known, else the first
    /// reachable endpoint starting at `current`. A dead redirect is
    /// forgotten so the endpoint list takes over.
    fn ensure_connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            if let Some(addr) = self.redirect.clone() {
                match self.connect_to(&addr) {
                    Ok(c) => self.client = Some(c),
                    Err(_) => self.redirect = None,
                }
            }
        }
        if self.client.is_none() {
            let n = self.endpoints.len();
            let mut last_err = io::Error::new(io::ErrorKind::NotConnected, "no endpoint reachable");
            for k in 0..n {
                let i = (self.current + k) % n;
                match self.connect_to(&self.endpoints[i]) {
                    Ok(c) => {
                        self.current = i;
                        self.client = Some(c);
                        break;
                    }
                    Err(e) => last_err = e,
                }
            }
            if self.client.is_none() {
                return Err(last_err);
            }
        }
        Ok(self.client.as_mut().expect("connected above"))
    }

    /// One call on the current connection (connecting first if needed);
    /// no retries, no failover.
    pub fn call(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let r = self.ensure_connected()?.call(reqs);
        if r.is_err() {
            self.client = None;
        }
        r
    }

    /// [`Client::call_with_retry`] semantics plus endpoint failover and
    /// `NotPrimary` redirect-following (see the type docs).
    pub fn call_with_retry(
        &mut self,
        reqs: &[Request],
        backoff: &mut Backoff,
    ) -> io::Result<Vec<Response>> {
        let mut attempt = 0u32;
        loop {
            let result = match self.ensure_connected() {
                Ok(c) => c.call(reqs),
                Err(e) => Err(e),
            };
            match result {
                Ok(resps) => {
                    let redirect = resps.iter().find_map(|r| match r {
                        Response::NotPrimary { primary, .. } if !primary.is_empty() => {
                            Some(primary.clone())
                        }
                        _ => None,
                    });
                    let all_not_primary = !resps.is_empty()
                        && resps.iter().all(|r| {
                            matches!(
                                r,
                                Response::NotPrimary { .. }
                                    | Response::Error(Status::NotPrimary, _)
                            )
                        });
                    if all_not_primary && attempt < backoff.max_retries {
                        if let Some(addr) = redirect {
                            attempt += 1;
                            self.redirect = Some(addr);
                            self.client = None;
                            continue; // redirects are free: not executed, no sleep
                        }
                    }
                    let all_overloaded = !resps.is_empty()
                        && resps
                            .iter()
                            .all(|r| matches!(r, Response::Error(Status::Overloaded, _)));
                    if !all_overloaded || attempt >= backoff.max_retries {
                        return Ok(resps);
                    }
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                }
                Err(e) if is_transport_error(&e) => {
                    self.client = None;
                    if attempt >= backoff.max_retries {
                        return Err(e);
                    }
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    // Rotate so the next connection attempt starts at a
                    // different endpoint than the one that just failed.
                    self.current = (self.current + 1) % self.endpoints.len();
                }
                Err(e) => {
                    self.client = None;
                    return Err(e);
                }
            }
        }
    }
}

/// Capped exponential backoff with full-range-halved jitter: attempt
/// `n` sleeps uniformly in `[cap/2, cap]` where `cap = min(base <<
/// n, max)`. Jitter is seeded (xorshift64*), so a load test's retry
/// storm is reproducible; distinct seeds desynchronize clients that
/// were rejected together (avoiding a retry thundering herd).
#[derive(Debug)]
pub struct Backoff {
    /// Retries after the first attempt (so `max_retries + 1` calls).
    pub max_retries: u32,
    base: Duration,
    max: Duration,
    rng: u64,
}

impl Backoff {
    /// `base` doubles per attempt, capped at `max`; `seed` drives the
    /// jitter.
    pub fn new(max_retries: u32, base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff {
            max_retries,
            base,
            max,
            rng: seed | 1,
        }
    }

    /// The sleep before retry number `attempt` (0-based).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let cap = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.max);
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let cap_us = u64::try_from(cap.as_micros()).unwrap_or(u64::MAX);
        Duration::from_micros(cap_us / 2 + r % (cap_us / 2 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_double_stay_jittered_and_cap() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let mut b = Backoff::new(8, base, max, 42);
        for attempt in 0..10 {
            let cap = u64::try_from(
                base.saturating_mul(1u32 << attempt.min(16))
                    .min(max)
                    .as_micros(),
            )
            .unwrap();
            let d = u64::try_from(b.delay(attempt).as_micros()).unwrap();
            assert!(
                d >= cap / 2 && d <= cap,
                "attempt {attempt}: {d} vs cap {cap}"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut b = Backoff::new(4, Duration::from_millis(5), Duration::from_millis(40), seed);
            (0..6).map(|a| b.delay(a)).collect::<Vec<_>>()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }
}
