//! A minimal blocking client for the [`crate::protocol`] — used by the
//! `serve_load` generator, the chaos harness, the CLI and the tests.
//!
//! Resilience lives here rather than in every caller: a client can
//! propagate a per-request deadline (`set_deadline_ms`), bound its own
//! socket waits (`set_io_timeout`), and retry `Overloaded` rejections
//! with capped, jittered exponential backoff ([`Backoff`],
//! [`Client::call_with_retry`]). I/O errors are *not* retried on the
//! same connection — a partially read or written frame leaves the
//! stream desynchronized, so callers reconnect instead.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_response_batch, encode_request_batch, read_frame, write_frame, Request, Response, Status,
};

/// One TCP connection speaking the batch protocol, closed-loop: each
/// [`Client::call`] sends one frame and blocks for its response frame.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_tag: u32,
    deadline_ms: u32,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so small closed-loop frames are
    /// not delayed by Nagle's algorithm).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_tag: 1,
            deadline_ms: 0,
        })
    }

    /// Sets the deadline field stamped on every subsequent request
    /// frame, in milliseconds. 0 (the default) defers to the server's
    /// configured default budget.
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// Bounds this client's own socket reads and writes: a server that
    /// stops responding fails the call with `WouldBlock`/`TimedOut`
    /// instead of hanging the caller forever. `None` restores blocking.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.writer.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Sends `reqs` as one batch frame and blocks for the matching
    /// response frame (matched by tag — an `Overloaded` rejection for a
    /// later pipelined frame can never be misattributed).
    pub fn call(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        write_frame(
            &mut self.writer,
            &encode_request_batch(tag, self.deadline_ms, reqs),
        )?;
        loop {
            let Some(payload) = read_frame(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ));
            };
            let (resp_tag, resps) = decode_response_batch(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if resp_tag == tag {
                return Ok(resps);
            }
            // A response to an earlier (abandoned) frame; skip it.
        }
    }

    /// [`Client::call`], retrying when the *whole batch* was rejected
    /// `Overloaded` (the server shed it unexecuted, so a resend is
    /// safe and exact). Mixed responses are returned as-is: some
    /// requests were answered, and re-running those would double-count
    /// work on the server. Sleeps `backoff.delay(attempt)` between
    /// tries; returns the last all-`Overloaded` response when retries
    /// are exhausted.
    pub fn call_with_retry(
        &mut self,
        reqs: &[Request],
        backoff: &mut Backoff,
    ) -> io::Result<Vec<Response>> {
        let mut attempt = 0u32;
        loop {
            let resps = self.call(reqs)?;
            let all_overloaded = !resps.is_empty()
                && resps
                    .iter()
                    .all(|r| matches!(r, Response::Error(Status::Overloaded, _)));
            if !all_overloaded || attempt >= backoff.max_retries {
                return Ok(resps);
            }
            std::thread::sleep(backoff.delay(attempt));
            attempt += 1;
        }
    }

    /// Sends a raw payload as a frame, bypassing the encoder — test
    /// hook for exercising the server's `BadRequest` path.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    /// Reads one raw response frame (pairs with [`Client::send_raw`]).
    pub fn recv_raw(&mut self) -> io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.reader)
    }
}

// The borrow-split impls let `call` use the split halves of one socket;
// keep the raw stream reachable for tests that need half-close.
impl Client {
    /// Shuts down the write side, signalling the server a clean EOF.
    pub fn close_write(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }

    /// Drains and discards everything until the server closes the
    /// connection (used while shutting down gracefully).
    pub fn drain(&mut self) -> io::Result<()> {
        let mut sink = [0u8; 4096];
        loop {
            match self.reader.read(&mut sink) {
                Ok(0) => return Ok(()),
                Ok(_) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Capped exponential backoff with full-range-halved jitter: attempt
/// `n` sleeps uniformly in `[cap/2, cap]` where `cap = min(base <<
/// n, max)`. Jitter is seeded (xorshift64*), so a load test's retry
/// storm is reproducible; distinct seeds desynchronize clients that
/// were rejected together (avoiding a retry thundering herd).
#[derive(Debug)]
pub struct Backoff {
    /// Retries after the first attempt (so `max_retries + 1` calls).
    pub max_retries: u32,
    base: Duration,
    max: Duration,
    rng: u64,
}

impl Backoff {
    /// `base` doubles per attempt, capped at `max`; `seed` drives the
    /// jitter.
    pub fn new(max_retries: u32, base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff {
            max_retries,
            base,
            max,
            rng: seed | 1,
        }
    }

    /// The sleep before retry number `attempt` (0-based).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let cap = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.max);
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let cap_us = u64::try_from(cap.as_micros()).unwrap_or(u64::MAX);
        Duration::from_micros(cap_us / 2 + r % (cap_us / 2 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_double_stay_jittered_and_cap() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let mut b = Backoff::new(8, base, max, 42);
        for attempt in 0..10 {
            let cap = u64::try_from(
                base.saturating_mul(1u32 << attempt.min(16))
                    .min(max)
                    .as_micros(),
            )
            .unwrap();
            let d = u64::try_from(b.delay(attempt).as_micros()).unwrap();
            assert!(
                d >= cap / 2 && d <= cap,
                "attempt {attempt}: {d} vs cap {cap}"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut b = Backoff::new(4, Duration::from_millis(5), Duration::from_millis(40), seed);
            (0..6).map(|a| b.delay(a)).collect::<Vec<_>>()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }
}
