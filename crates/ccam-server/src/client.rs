//! A minimal blocking client for the [`crate::protocol`] — used by the
//! `serve_load` generator, the CLI and the tests.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_response_batch, encode_request_batch, read_frame, write_frame, Request, Response,
};

/// One TCP connection speaking the batch protocol, closed-loop: each
/// [`Client::call`] sends one frame and blocks for its response frame.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_tag: u32,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so small closed-loop frames are
    /// not delayed by Nagle's algorithm).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_tag: 1,
        })
    }

    /// Sends `reqs` as one batch frame and blocks for the matching
    /// response frame (matched by tag — an `Overloaded` rejection for a
    /// later pipelined frame can never be misattributed).
    pub fn call(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        write_frame(&mut self.writer, &encode_request_batch(tag, reqs))?;
        loop {
            let Some(payload) = read_frame(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ));
            };
            let (resp_tag, resps) = decode_response_batch(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if resp_tag == tag {
                return Ok(resps);
            }
            // A response to an earlier (abandoned) frame; skip it.
        }
    }

    /// Sends a raw payload as a frame, bypassing the encoder — test
    /// hook for exercising the server's `BadRequest` path.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    /// Reads one raw response frame (pairs with [`Client::send_raw`]).
    pub fn recv_raw(&mut self) -> io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.reader)
    }
}

// The borrow-split impls let `call` use the split halves of one socket;
// keep the raw stream reachable for tests that need half-close.
impl Client {
    /// Shuts down the write side, signalling the server a clean EOF.
    pub fn close_write(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }

    /// Drains and discards everything until the server closes the
    /// connection (used while shutting down gracefully).
    pub fn drain(&mut self) -> io::Result<()> {
        let mut sink = [0u8; 4096];
        loop {
            match self.reader.read(&mut sink) {
                Ok(0) => return Ok(()),
                Ok(_) => {}
                Err(e) => return Err(e),
            }
        }
    }
}
