//! The wire protocol spoken by `ccam serve`.
//!
//! # Frame layout
//!
//! Every message — in either direction — is one *frame*:
//!
//! ```text
//! +----------------+---------------------------------------+
//! | u32 LE length  | payload (exactly `length` bytes)      |
//! +----------------+---------------------------------------+
//! ```
//!
//! A payload begins with a version byte ([`PROTOCOL_VERSION`]) and a
//! `u32 LE` client-chosen *tag*. Request payloads then carry a `u32 LE`
//! *deadline* in milliseconds (0 = use the server's default budget; the
//! clock starts when the server accepts the frame, so queueing counts
//! against it). Both directions end the header with a `u16 LE` message
//! count, followed by that many requests (client → server) or responses
//! (server → client). The server echoes the tag, and clients match response
//! frames to request frames by tag, not arrival order: accepted batches
//! are answered in per-connection FIFO order, but `Overloaded`
//! rejections are written immediately and may overtake earlier pending
//! answers on a pipelining connection. Within a frame responses are
//! positional — the *i*-th response answers the *i*-th request, and a
//! response frame always carries exactly as many responses as the
//! request frame carried requests. Batching N requests per frame
//! amortizes both syscalls and — because the server executes a whole
//! batch under one buffer-pool-warm read guard — page faults.
//!
//! # Request encoding
//!
//! Each request is an op-code byte followed by an op-specific body
//! (all integers little-endian):
//!
//! | op | code | body |
//! |----|------|------|
//! | `Find` | 1 | node id `u64` |
//! | `GetSuccessors` | 2 | node id `u64` |
//! | `Route` | 3 | `u16` node count, then that many `u64` node ids |
//! | `RangeAggregate` | 4 | `u16` arc count, then that many (`u64` from, `u64` to) pairs |
//! | `Stats` | 5 | empty |
//! | `Upsert` | 6 | node id `u64`, `u16` payload length, payload bytes |
//!
//! # Response encoding
//!
//! Each response is a status byte, the echoed op-code byte, and — only
//! when the status is `Ok` — an op-shaped body:
//!
//! | status | code | meaning |
//! |--------|------|---------|
//! | `Ok` | 0 | body follows |
//! | `NotFound` | 1 | `Find` on an absent node id (no body) |
//! | `BadRequest` | 2 | frame or request undecodable / over limits |
//! | `Overloaded` | 3 | connection queue full — retry later |
//! | `ShuttingDown` | 4 | server is draining; connection will close |
//! | `Internal` | 5 | storage error while executing |
//! | `DeadlineExceeded` | 6 | request budget ran out before/while executing |
//! | `Degraded` | 7 | answered around quarantined pages (partial body for `GetSuccessors`) |
//! | `NotPrimary` | 8 | write sent to a read-only replica; body carries the primary's address |
//!
//! `Ok` bodies: `Find` → one length-prefixed (`u32`) node record in the
//! [`ccam_graph::record`] layout; `GetSuccessors` → `u16` count of such
//! records; `Route` → `u64` total cost, `u32` nodes visited, `u8`
//! complete; `RangeAggregate` → `u32` arcs found, `u32` arcs missing,
//! `u64` total cost, `u64` payload sum, `u32` nodes retrieved; `Stats`
//! → `u32`-length-prefixed UTF-8 JSON from the server's
//! `MetricsRegistry`; `Upsert` → `u64` commit epoch the write was
//! published at.
//!
//! `Degraded` is body-less for every op except `GetSuccessors`, where it
//! carries a partial result: `u32` count of pages skipped as
//! quarantined, then the `GetSuccessors` body shape (`u16` record
//! count + records) — the successors that were still reachable.
//!
//! `NotPrimary` carries a `u16`-length-prefixed UTF-8 address of the
//! current primary (possibly empty when unknown), so a client holding a
//! replica connection can redirect its writes.
//!
//! # Versioning
//!
//! The version byte is checked on every frame; a mismatch yields a
//! single `BadRequest` response and the connection is closed. Future
//! revisions bump [`PROTOCOL_VERSION`]; op and status codes are
//! append-only. (v1 → v2 added the request deadline field and the
//! `DeadlineExceeded`/`Degraded` statuses; the `Upsert` op and
//! `NotPrimary` status were appended within v2 — older clients never
//! send the former and can treat the latter as a generic error.)

use std::io::{self, Read, Write};

use ccam_graph::record::{decode_record, encode_record};
use ccam_graph::{NodeData, NodeId};

/// Version byte carried by every frame payload.
pub const PROTOCOL_VERSION: u8 = 2;

/// Upper bound on one frame's payload, both directions. Keeps a
/// malformed or hostile length prefix from ballooning into an
/// unbounded allocation.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Upper bound on requests per frame (the count field is `u16`, this
/// tightens it: queue accounting is per batch, so enormous batches
/// would dodge backpressure).
pub const MAX_BATCH: usize = 4096;

/// Per-request outcome code. `Ok` is followed by an op-shaped body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Executed; body follows.
    Ok = 0,
    /// `Find` on a node id not in the database.
    NotFound = 1,
    /// Undecodable or over-limit frame/request.
    BadRequest = 2,
    /// Connection queue full; client should back off and retry.
    Overloaded = 3,
    /// Server is draining for shutdown.
    ShuttingDown = 4,
    /// Storage-layer error during execution.
    Internal = 5,
    /// The request's time budget ran out before it finished executing.
    DeadlineExceeded = 6,
    /// Executed around quarantined pages: the answer may be partial
    /// (`GetSuccessors` carries what was reachable) or withheld because
    /// the data needed lives on an unreadable page.
    Degraded = 7,
    /// A write (or other primary-only op) reached a read-only replica;
    /// the body names the primary to redirect to.
    NotPrimary = 8,
}

impl Status {
    fn from_byte(b: u8) -> Result<Status, ProtoError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::NotFound,
            2 => Status::BadRequest,
            3 => Status::Overloaded,
            4 => Status::ShuttingDown,
            5 => Status::Internal,
            6 => Status::DeadlineExceeded,
            7 => Status::Degraded,
            8 => Status::NotPrimary,
            other => return Err(ProtoError::BadStatus(other)),
        })
    }
}

/// Op-code byte identifying each request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Point lookup by node id.
    Find = 1,
    /// All successor records of a node.
    GetSuccessors = 2,
    /// Route evaluation over a node-id sequence.
    Route = 3,
    /// Route-unit aggregate over directed arcs.
    RangeAggregate = 4,
    /// Server metrics snapshot as JSON.
    Stats = 5,
    /// Replace (or report missing) one node's payload — the protocol's
    /// write path, accepted only by the primary.
    Upsert = 6,
}

impl OpCode {
    fn from_byte(b: u8) -> Result<OpCode, ProtoError> {
        Ok(match b {
            1 => OpCode::Find,
            2 => OpCode::GetSuccessors,
            3 => OpCode::Route,
            4 => OpCode::RangeAggregate,
            5 => OpCode::Stats,
            6 => OpCode::Upsert,
            other => return Err(ProtoError::BadOpCode(other)),
        })
    }

    /// Metric-label name of this op.
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Find => "find",
            OpCode::GetSuccessors => "get_successors",
            OpCode::Route => "route",
            OpCode::RangeAggregate => "range_aggregate",
            OpCode::Stats => "stats",
            OpCode::Upsert => "upsert",
        }
    }
}

/// One query inside a batch frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `Find()`: the record of one node.
    Find(NodeId),
    /// `Get-successors()`: all successor records of one node.
    GetSuccessors(NodeId),
    /// Evaluate a route given as a node-id sequence.
    Route(Vec<NodeId>),
    /// Aggregate a route-unit given as directed arcs.
    RangeAggregate(Vec<(NodeId, NodeId)>),
    /// Snapshot the server's metrics registry as JSON.
    Stats,
    /// Replace the payload of an existing node (its position and edges
    /// are preserved). Answered `NotFound` when the node is absent and
    /// `NotPrimary` by a replica.
    Upsert {
        /// The node to update.
        id: NodeId,
        /// The replacement payload bytes.
        payload: Vec<u8>,
    },
}

impl Request {
    /// The op code this request encodes as.
    pub fn op(&self) -> OpCode {
        match self {
            Request::Find(_) => OpCode::Find,
            Request::GetSuccessors(_) => OpCode::GetSuccessors,
            Request::Route(_) => OpCode::Route,
            Request::RangeAggregate(_) => OpCode::RangeAggregate,
            Request::Stats => OpCode::Stats,
            Request::Upsert { .. } => OpCode::Upsert,
        }
    }
}

/// One answer inside a batch frame, positionally matched to its request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Find` hit.
    Record(NodeData),
    /// `GetSuccessors` result (possibly empty).
    Records(Vec<NodeData>),
    /// `GetSuccessors` answered degraded: the successors still reachable
    /// plus the number of quarantined pages skipped to produce them.
    /// Carried with [`Status::Degraded`] on the wire.
    RecordsDegraded {
        /// Successor records that were reachable.
        nodes: Vec<NodeData>,
        /// Quarantined pages skipped while collecting them.
        skipped_pages: u32,
    },
    /// `Route` result.
    RouteEval {
        /// Sum of traversed edge costs.
        total_cost: u64,
        /// Nodes actually visited.
        nodes_visited: u32,
        /// True when every edge existed.
        complete: bool,
    },
    /// `RangeAggregate` result.
    Aggregate {
        /// Arcs found in the stored network.
        arcs_found: u32,
        /// Arcs referencing missing nodes/edges.
        arcs_missing: u32,
        /// Sum of edge costs over found arcs.
        total_cost: u64,
        /// Payload-byte sum over distinct nodes touched.
        node_payload_sum: u64,
        /// Distinct nodes retrieved.
        nodes_retrieved: u32,
    },
    /// `Stats` result: the metrics registry as JSON.
    StatsJson(String),
    /// `Upsert` applied and published.
    Upserted {
        /// Commit epoch the write became visible at.
        epoch: u64,
    },
    /// The request needed the primary but reached a replica; `primary`
    /// is the address to redirect to (empty when unknown). Carried with
    /// [`Status::NotPrimary`] on the wire.
    NotPrimary {
        /// Current primary address as the replica knows it.
        primary: String,
        /// The echoed op.
        op: OpCode,
    },
    /// Non-`Ok` outcome for the echoed op.
    Error(Status, OpCode),
}

/// Decoding failure — the peer sent something outside the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload shorter than its own structure claims.
    Truncated,
    /// Version byte differs from [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown op-code byte.
    BadOpCode(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Batch count exceeds [`MAX_BATCH`].
    BatchTooLarge(usize),
    /// Trailing bytes after the declared message count.
    TrailingBytes,
    /// Embedded string is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::BadVersion(v) => {
                write!(f, "protocol version {v} (expected {PROTOCOL_VERSION})")
            }
            ProtoError::BadOpCode(b) => write!(f, "unknown op code {b}"),
            ProtoError::BadStatus(b) => write!(f, "unknown status {b}"),
            ProtoError::BatchTooLarge(n) => write!(f, "batch of {n} exceeds {MAX_BATCH}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after batch"),
            ProtoError::BadUtf8 => write!(f, "embedded string is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// frame I/O
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let len = u32::try_from(payload.len()).expect("frame length exceeds u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `None` on clean EOF at a frame boundary;
/// EOF mid-frame and oversized lengths are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

/// Appends one length-prefixed encoded record. An encoded record is a
/// few dozen bytes plus the payload (itself page-bounded), so the `u32`
/// length prefix always fits.
fn put_record(out: &mut Vec<u8>, node: &NodeData) {
    let rec = encode_record(node);
    let len = u32::try_from(rec.len()).expect("record length exceeds u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&rec);
}

fn put_response_header(out: &mut Vec<u8>, tag: u32, count: usize) {
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(&tag.to_le_bytes());
    let count = u16::try_from(count).expect("response batch exceeds u16");
    out.extend_from_slice(&count.to_le_bytes());
}

/// Encodes a request batch into a frame payload. The server echoes
/// `tag` on the matching response frame; `deadline_ms` is the request
/// budget (0 = server default), counted from frame acceptance.
///
/// # Panics
/// If the batch exceeds [`MAX_BATCH`] or a route/arc list exceeds
/// `u16::MAX` entries — caller bugs, not peer input.
pub fn encode_request_batch(tag: u32, deadline_ms: u32, reqs: &[Request]) -> Vec<u8> {
    assert!(reqs.len() <= MAX_BATCH, "batch of {} requests", reqs.len());
    let mut out = Vec::with_capacity(16 + reqs.len() * 9);
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&deadline_ms.to_le_bytes());
    let count = u16::try_from(reqs.len()).expect("MAX_BATCH fits u16");
    out.extend_from_slice(&count.to_le_bytes());
    for req in reqs {
        out.push(req.op() as u8);
        match req {
            Request::Find(id) | Request::GetSuccessors(id) => {
                out.extend_from_slice(&id.0.to_le_bytes());
            }
            Request::Route(nodes) => {
                let n = u16::try_from(nodes.len()).expect("route exceeds u16::MAX nodes");
                out.extend_from_slice(&n.to_le_bytes());
                for n in nodes {
                    out.extend_from_slice(&n.0.to_le_bytes());
                }
            }
            Request::RangeAggregate(arcs) => {
                let n = u16::try_from(arcs.len()).expect("arc list exceeds u16::MAX entries");
                out.extend_from_slice(&n.to_le_bytes());
                for (from, to) in arcs {
                    out.extend_from_slice(&from.0.to_le_bytes());
                    out.extend_from_slice(&to.0.to_le_bytes());
                }
            }
            Request::Stats => {}
            Request::Upsert { id, payload } => {
                out.extend_from_slice(&id.0.to_le_bytes());
                let n = u16::try_from(payload.len()).expect("payload exceeds u16::MAX bytes");
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(payload);
            }
        }
    }
    out
}

/// Encodes a response batch into a frame payload, echoing `tag` from
/// the request frame it answers.
pub fn encode_response_batch(tag: u32, resps: &[Response]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + resps.len() * 8);
    put_response_header(&mut out, tag, resps.len());
    for resp in resps {
        match resp {
            Response::Record(node) => {
                out.push(Status::Ok as u8);
                out.push(OpCode::Find as u8);
                put_record(&mut out, node);
            }
            // A record's successor list is itself u16-counted, so a
            // legitimate GetSuccessors result always fits the u16 count;
            // anything larger is substituted with `Internal` — an assert
            // here would be a remotely triggerable panic in a worker
            // thread, and truncating the count would emit a frame the
            // client cannot decode.
            Response::Records(nodes) if nodes.len() > u16::MAX as usize => {
                out.push(Status::Internal as u8);
                out.push(OpCode::GetSuccessors as u8);
            }
            Response::RecordsDegraded { nodes, .. } if nodes.len() > u16::MAX as usize => {
                out.push(Status::Internal as u8);
                out.push(OpCode::GetSuccessors as u8);
            }
            Response::Records(nodes) => {
                out.push(Status::Ok as u8);
                out.push(OpCode::GetSuccessors as u8);
                let n = u16::try_from(nodes.len()).expect("guarded above");
                out.extend_from_slice(&n.to_le_bytes());
                for node in nodes {
                    put_record(&mut out, node);
                }
            }
            Response::RecordsDegraded {
                nodes,
                skipped_pages,
            } => {
                out.push(Status::Degraded as u8);
                out.push(OpCode::GetSuccessors as u8);
                out.extend_from_slice(&skipped_pages.to_le_bytes());
                let n = u16::try_from(nodes.len()).expect("guarded above");
                out.extend_from_slice(&n.to_le_bytes());
                for node in nodes {
                    put_record(&mut out, node);
                }
            }
            Response::RouteEval {
                total_cost,
                nodes_visited,
                complete,
            } => {
                out.push(Status::Ok as u8);
                out.push(OpCode::Route as u8);
                out.extend_from_slice(&total_cost.to_le_bytes());
                out.extend_from_slice(&nodes_visited.to_le_bytes());
                out.push(u8::from(*complete));
            }
            Response::Aggregate {
                arcs_found,
                arcs_missing,
                total_cost,
                node_payload_sum,
                nodes_retrieved,
            } => {
                out.push(Status::Ok as u8);
                out.push(OpCode::RangeAggregate as u8);
                out.extend_from_slice(&arcs_found.to_le_bytes());
                out.extend_from_slice(&arcs_missing.to_le_bytes());
                out.extend_from_slice(&total_cost.to_le_bytes());
                out.extend_from_slice(&node_payload_sum.to_le_bytes());
                out.extend_from_slice(&nodes_retrieved.to_le_bytes());
            }
            Response::StatsJson(json) => {
                out.push(Status::Ok as u8);
                out.push(OpCode::Stats as u8);
                let len = u32::try_from(json.len()).expect("stats JSON exceeds u32");
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Response::Upserted { epoch } => {
                out.push(Status::Ok as u8);
                out.push(OpCode::Upsert as u8);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::NotPrimary { primary, op } => {
                out.push(Status::NotPrimary as u8);
                out.push(*op as u8);
                let n = u16::try_from(primary.len()).expect("primary address exceeds u16::MAX");
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(primary.as_bytes());
            }
            Response::Error(status, op) => {
                out.push(*status as u8);
                out.push(*op as u8);
                // Degraded GetSuccessors always carries a body on the
                // wire; an Error-shaped one encodes as empty so the
                // decoder stays total.
                if *status == Status::Degraded && *op == OpCode::GetSuccessors {
                    out.extend_from_slice(&0u32.to_le_bytes());
                    out.extend_from_slice(&0u16.to_le_bytes());
                }
                // NotPrimary always carries an address body; an
                // Error-shaped one encodes as empty likewise.
                if *status == Status::NotPrimary {
                    out.extend_from_slice(&0u16.to_le_bytes());
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.at < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn version(&mut self) -> Result<(), ProtoError> {
        let version = self.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        Ok(())
    }

    fn count(&mut self) -> Result<usize, ProtoError> {
        let count = self.u16()? as usize;
        if count > MAX_BATCH {
            return Err(ProtoError::BatchTooLarge(count));
        }
        Ok(count)
    }

    fn request_header(&mut self) -> Result<(u32, u32, usize), ProtoError> {
        self.version()?;
        let tag = self.u32()?;
        let deadline_ms = self.u32()?;
        let count = self.count()?;
        Ok((tag, deadline_ms, count))
    }

    fn response_header(&mut self) -> Result<(u32, usize), ProtoError> {
        self.version()?;
        let tag = self.u32()?;
        let count = self.count()?;
        Ok((tag, count))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.at != self.buf.len() {
            return Err(ProtoError::TrailingBytes);
        }
        Ok(())
    }

    fn record(&mut self) -> Result<NodeData, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        // decode_record panics on malformed input; records only travel
        // server -> client and the server re-encodes from storage, so a
        // well-formed length prefix implies a well-formed record.
        Ok(decode_record(bytes))
    }
}

/// Decodes a request-batch frame payload (server side), returning the
/// client's tag, requested deadline in milliseconds (0 = server
/// default), and the requests.
pub fn decode_request_batch(buf: &[u8]) -> Result<(u32, u32, Vec<Request>), ProtoError> {
    let mut c = Cursor { buf, at: 0 };
    let (tag, deadline_ms, count) = c.request_header()?;
    let mut reqs = Vec::with_capacity(count);
    for _ in 0..count {
        let op = OpCode::from_byte(c.u8()?)?;
        reqs.push(match op {
            OpCode::Find => Request::Find(NodeId(c.u64()?)),
            OpCode::GetSuccessors => Request::GetSuccessors(NodeId(c.u64()?)),
            OpCode::Route => {
                let n = c.u16()? as usize;
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(NodeId(c.u64()?));
                }
                Request::Route(nodes)
            }
            OpCode::RangeAggregate => {
                let n = c.u16()? as usize;
                let mut arcs = Vec::with_capacity(n);
                for _ in 0..n {
                    arcs.push((NodeId(c.u64()?), NodeId(c.u64()?)));
                }
                Request::RangeAggregate(arcs)
            }
            OpCode::Stats => Request::Stats,
            OpCode::Upsert => {
                let id = NodeId(c.u64()?);
                let n = c.u16()? as usize;
                let payload = c.take(n)?.to_vec();
                Request::Upsert { id, payload }
            }
        });
    }
    c.finish()?;
    Ok((tag, deadline_ms, reqs))
}

/// Decodes a response-batch frame payload (client side), returning the
/// echoed tag and the responses.
pub fn decode_response_batch(buf: &[u8]) -> Result<(u32, Vec<Response>), ProtoError> {
    let mut c = Cursor { buf, at: 0 };
    let (tag, count) = c.response_header()?;
    let mut resps = Vec::with_capacity(count);
    for _ in 0..count {
        let status = Status::from_byte(c.u8()?)?;
        let op = OpCode::from_byte(c.u8()?)?;
        if status == Status::Degraded && op == OpCode::GetSuccessors {
            let skipped_pages = c.u32()?;
            let n = c.u16()? as usize;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(c.record()?);
            }
            resps.push(Response::RecordsDegraded {
                nodes,
                skipped_pages,
            });
            continue;
        }
        if status == Status::NotPrimary {
            let n = c.u16()? as usize;
            let bytes = c.take(n)?;
            let primary = String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)?;
            resps.push(Response::NotPrimary { primary, op });
            continue;
        }
        if status != Status::Ok {
            resps.push(Response::Error(status, op));
            continue;
        }
        resps.push(match op {
            OpCode::Find => Response::Record(c.record()?),
            OpCode::GetSuccessors => {
                let n = c.u16()? as usize;
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(c.record()?);
                }
                Response::Records(nodes)
            }
            OpCode::Route => Response::RouteEval {
                total_cost: c.u64()?,
                nodes_visited: c.u32()?,
                complete: c.u8()? != 0,
            },
            OpCode::RangeAggregate => Response::Aggregate {
                arcs_found: c.u32()?,
                arcs_missing: c.u32()?,
                total_cost: c.u64()?,
                node_payload_sum: c.u64()?,
                nodes_retrieved: c.u32()?,
            },
            OpCode::Stats => {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                Response::StatsJson(
                    String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)?,
                )
            }
            OpCode::Upsert => Response::Upserted { epoch: c.u64()? },
        });
    }
    c.finish()?;
    Ok((tag, resps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::EdgeTo;

    fn node(id: u64) -> NodeData {
        NodeData {
            id: NodeId(id),
            x: 3,
            y: 4,
            payload: vec![1, 2, u8::try_from(id & 0xff).unwrap()],
            successors: vec![EdgeTo {
                to: NodeId(id + 1),
                cost: 7,
            }],
            predecessors: vec![NodeId(id.wrapping_sub(1))],
        }
    }

    #[test]
    fn request_batch_round_trips() {
        let reqs = vec![
            Request::Find(NodeId(42)),
            Request::GetSuccessors(NodeId(7)),
            Request::Route(vec![NodeId(1), NodeId(2), NodeId(3)]),
            Request::RangeAggregate(vec![(NodeId(1), NodeId(2))]),
            Request::Stats,
            Request::Upsert {
                id: NodeId(11),
                payload: vec![0xca, 0xfe],
            },
        ];
        let buf = encode_request_batch(0xDEAD_BEEF, 0, &reqs);
        assert_eq!(decode_request_batch(&buf).unwrap(), (0xDEAD_BEEF, 0, reqs));
    }

    #[test]
    fn request_deadline_round_trips() {
        let reqs = vec![Request::Find(NodeId(1))];
        let buf = encode_request_batch(9, 2_500, &reqs);
        let (tag, deadline_ms, decoded) = decode_request_batch(&buf).unwrap();
        assert_eq!((tag, deadline_ms), (9, 2_500));
        assert_eq!(decoded, reqs);
    }

    /// The deadline field's boundary values are load-bearing: 0 means
    /// "no per-request deadline — the server default applies" (not
    /// "expire immediately"), and `u32::MAX` must survive the wire
    /// unchanged rather than saturating or wrapping.
    #[test]
    fn request_deadline_boundary_values_round_trip() {
        let reqs = vec![Request::Find(NodeId(1))];
        for deadline in [0u32, u32::MAX] {
            let buf = encode_request_batch(3, deadline, &reqs);
            let (tag, deadline_ms, decoded) = decode_request_batch(&buf).unwrap();
            assert_eq!((tag, deadline_ms), (3, deadline));
            assert_eq!(decoded, reqs);
        }
    }

    #[test]
    fn response_batch_round_trips() {
        let resps = vec![
            Response::Record(node(5)),
            Response::Records(vec![node(6), node(7)]),
            Response::RouteEval {
                total_cost: 99,
                nodes_visited: 4,
                complete: true,
            },
            Response::Aggregate {
                arcs_found: 3,
                arcs_missing: 1,
                total_cost: 55,
                node_payload_sum: 12,
                nodes_retrieved: 4,
            },
            Response::StatsJson("{\"x\":1}".to_string()),
            Response::Error(Status::NotFound, OpCode::Find),
            Response::Error(Status::Overloaded, OpCode::Route),
            Response::Error(Status::DeadlineExceeded, OpCode::Route),
            Response::Error(Status::Degraded, OpCode::Find),
            Response::RecordsDegraded {
                nodes: vec![node(8)],
                skipped_pages: 3,
            },
            Response::Upserted { epoch: 42 },
            Response::NotPrimary {
                primary: "127.0.0.1:4444".to_string(),
                op: OpCode::Upsert,
            },
            Response::NotPrimary {
                primary: String::new(),
                op: OpCode::Stats,
            },
        ];
        let buf = encode_response_batch(7, &resps);
        assert_eq!(decode_response_batch(&buf).unwrap(), (7, resps));
    }

    #[test]
    fn degraded_get_successors_error_decodes_as_empty_partial() {
        // Error(Degraded, GetSuccessors) is encoded with an empty body so
        // the Degraded+GetSuccessors wire shape is uniform; it therefore
        // decodes as an empty RecordsDegraded, not back to Error.
        let buf = encode_response_batch(
            1,
            &[Response::Error(Status::Degraded, OpCode::GetSuccessors)],
        );
        let (_, resps) = decode_response_batch(&buf).unwrap();
        assert_eq!(
            resps,
            vec![Response::RecordsDegraded {
                nodes: vec![],
                skipped_pages: 0,
            }]
        );
    }

    #[test]
    fn not_primary_error_decodes_as_empty_address() {
        // Error(NotPrimary, _) encodes with an empty address body so the
        // NotPrimary wire shape is uniform; it decodes as NotPrimary with
        // an unknown primary, not back to Error.
        let buf = encode_response_batch(1, &[Response::Error(Status::NotPrimary, OpCode::Upsert)]);
        let (_, resps) = decode_response_batch(&buf).unwrap();
        assert_eq!(
            resps,
            vec![Response::NotPrimary {
                primary: String::new(),
                op: OpCode::Upsert,
            }]
        );
    }

    #[test]
    fn oversized_records_response_degrades_to_internal_not_panic() {
        // > u16::MAX successors cannot be counted on the wire; the
        // encoder substitutes Internal instead of asserting (a panic here
        // would be remotely triggerable inside a worker thread).
        let resps = vec![
            Response::Records(vec![node(1); u16::MAX as usize + 1]),
            Response::RecordsDegraded {
                nodes: vec![node(2); u16::MAX as usize + 1],
                skipped_pages: 5,
            },
        ];
        let buf = encode_response_batch(3, &resps);
        let (_, decoded) = decode_response_batch(&buf).unwrap();
        assert_eq!(
            decoded,
            vec![
                Response::Error(Status::Internal, OpCode::GetSuccessors),
                Response::Error(Status::Internal, OpCode::GetSuccessors),
            ]
        );
    }

    #[test]
    fn frame_round_trips_and_eof_is_clean_at_boundary() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_length_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn bad_version_and_trailing_bytes_are_rejected() {
        let mut buf = encode_request_batch(1, 0, &[Request::Stats]);
        buf[0] = 9;
        assert_eq!(
            decode_request_batch(&buf).unwrap_err(),
            ProtoError::BadVersion(9)
        );
        let mut buf = encode_request_batch(1, 0, &[Request::Stats]);
        buf.push(0);
        assert_eq!(
            decode_request_batch(&buf).unwrap_err(),
            ProtoError::TrailingBytes
        );
    }

    #[test]
    fn truncated_request_is_rejected() {
        let buf = encode_request_batch(3, 1_000, &[Request::Find(NodeId(1))]);
        for cut in 0..buf.len() {
            // Every strict prefix must fail cleanly, never panic.
            assert!(decode_request_batch(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_batch_count_is_rejected() {
        let mut buf = Vec::new();
        buf.push(PROTOCOL_VERSION);
        buf.extend_from_slice(&0u32.to_le_bytes()); // tag
        buf.extend_from_slice(&0u32.to_le_bytes()); // deadline_ms
        buf.extend_from_slice(&(u16::try_from(MAX_BATCH).unwrap() + 1).to_le_bytes());
        assert_eq!(
            decode_request_batch(&buf).unwrap_err(),
            ProtoError::BatchTooLarge(MAX_BATCH + 1)
        );
    }
}
