#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

//! The TCP serving layer over the CCAM access method.
//!
//! The paper evaluates CCAM as an access method; this crate turns the
//! library into a system: a server speaking the batched binary
//! [`protocol`] over `std::net`, a fixed pool of worker threads sharing
//! one [`Ccam`] read path, and a blocking [`client`] used by the load
//! generator, the CLI and the tests.
//!
//! # Architecture
//!
//! ```text
//!  acceptor ──► reader (1/conn) ──► per-conn bounded queue ─┐
//!                  │ full? write Overloaded immediately     │
//!                  ▼                                        ▼
//!              conn writer ◄────────────── worker pool (N threads)
//!                              batch runs on one pinned Snapshot
//! ```
//!
//! * One **reader thread per connection** decodes frames and appends
//!   batches to that connection's bounded queue ([`ServerConfig::
//!   queue_depth`] batches). A full queue is answered *immediately*
//!   with per-request `Overloaded` — the server never buffers without
//!   bound, and a slow consumer only ever penalizes itself.
//! * A connection with pending batches is scheduled at most once on the
//!   global run queue. A worker pops a connection, takes **one** batch,
//!   pins a [`Snapshot`] via [`EpochCell::read`] and executes the whole
//!   batch against it — so every response in a frame reflects one
//!   committed snapshot, and a maintenance commit (or a full
//!   reorganization) mid-batch neither stalls the batch nor changes
//!   what it observes. The worker then writes the response frame and
//!   re-schedules the connection if more batches are pending.
//!   One-batch-at-a-time per connection keeps accepted batches FIFO per
//!   connection and shares workers fairly across connections.
//! * **Graceful shutdown** ([`ServerHandle::shutdown`]) stops accepting,
//!   half-closes every connection's read side, joins the readers (no
//!   new work can arrive), then lets the workers drain every queued
//!   batch before joining them. In-flight requests complete; their
//!   responses are delivered.
//!
//! # Fault tolerance
//!
//! The serving layer assumes both peers and storage misbehave:
//!
//! * **Slow clients** — the per-connection socket carries a read
//!   timeout ([`ServerConfig::idle_timeout_ms`]), so a client that
//!   stalls mid-frame (slowloris) is reaped instead of pinning its
//!   reader thread and connection slot forever; response writes carry
//!   [`ServerConfig::write_timeout_ms`] and a failed write severs the
//!   connection rather than blocking a worker.
//! * **Deadlines** — every accepted frame gets a deadline (the client's
//!   requested budget, else [`ServerConfig::deadline_ms`]), counted
//!   from frame acceptance so queueing spends budget too. Expired
//!   requests answer `DeadlineExceeded` without executing; `Route` and
//!   `RangeAggregate` poll the deadline *while* walking so a
//!   pathological request cannot hold a worker unboundedly.
//! * **Panics** — each request executes under `catch_unwind`; a panic
//!   answers `Internal`, increments `serve.worker_panics`, and the
//!   batch continues. A worker thread that unwinds anywhere else
//!   re-enters its loop (self-respawn) so the pool never shrinks.
//! * **Storage faults** — checksum failures degrade instead of
//!   erroring: reads route around quarantined pages
//!   (`Status::Degraded`, partial bodies for `GetSuccessors`); every
//!   other storage error is answered `Internal` and counted per error
//!   kind under `serve.internal_errors.<kind>`. A *poisoned* cell — a
//!   maintenance writer panicked mid-transaction — fails the whole
//!   batch `Internal` (counted under `serve.internal_errors.poisoned`)
//!   until an operator runs recovery; already-pinned snapshots keep
//!   answering.
//! * **Counter truncation** — wire counters are `u32`; server-side
//!   tallies are saturated through `sat_u32` instead of silently
//!   wrapped, with `serve.counter_saturated` counting each clamp.
//!
//! Snapshot consistency across a writer commit is delegated to
//! [`EpochCell`] — see `ccam_core::epoch` for the MVCC-lite design:
//! readers pin the last committed view (`serve.snapshot_pins` counts
//! pins, `serve.reader_stall_ms` histograms the time to take one) and
//! never block on — nor observe — an in-flight writer.

pub mod client;
pub mod protocol;
pub mod repl;

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccam_core::epoch::{EpochCell, Snapshot, Snapshotable};
use ccam_core::query::route::evaluate_path_bounded;
use ccam_core::query::route_unit_aggregate_bounded;
use ccam_core::{AccessMethod, Ccam};
use ccam_graph::NodeId;
use ccam_storage::{MetricsRegistry, PageStore, SnapshotStore, StorageError};
use parking_lot::{Condvar, Mutex};

use protocol::{
    decode_request_batch, encode_response_batch, read_frame, write_frame, OpCode, Request,
    Response, Status,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing batches. Clamped to at least 1.
    pub workers: usize,
    /// Max *batches* queued per connection before new frames are
    /// rejected with `Overloaded`. Clamped to at least 1.
    pub queue_depth: usize,
    /// Read timeout on each connection's socket, in milliseconds. A
    /// connection that sends nothing — including one stalled *mid-frame*
    /// — for this long is reaped: its reader exits and the socket is
    /// closed, so a slowloris peer cannot pin a thread or a connection
    /// slot. 0 disables reaping.
    pub idle_timeout_ms: u64,
    /// Write timeout on each connection's socket, in milliseconds. A
    /// response write that cannot make progress for this long fails the
    /// write and severs the connection rather than blocking a worker on
    /// a full peer window. 0 disables.
    pub write_timeout_ms: u64,
    /// Default per-request deadline in milliseconds, applied when a
    /// request frame carries a 0 deadline field. The clock starts at
    /// frame acceptance (queueing spends budget). 0 = no default; such
    /// requests run unbounded.
    pub deadline_ms: u64,
    /// Replication role — see [`ReplRole`]. Defaults to a standalone
    /// primary with no replication listener.
    pub role: ReplRole,
}

/// What this server is in a replication topology.
#[derive(Debug, Clone)]
pub enum ReplRole {
    /// Read-write primary. With `repl_addr` set, a replication listener
    /// is bound there and followers may subscribe (see [`repl`]).
    Primary {
        /// Address for the replication listener (`127.0.0.1:0` picks a
        /// free port); `None` disables replication.
        repl_addr: Option<String>,
    },
    /// Read-only follower replicating from a primary's replication
    /// listener. All v2 read ops answer from locally replayed state;
    /// writes answer `NotPrimary` with the primary's client address
    /// (learned during the replication handshake).
    Replica {
        /// The primary's *replication* address to subscribe to.
        primary: String,
        /// Seed for the reconnect backoff jitter.
        seed: u64,
        /// Where to persist the last-applied primary LSN between
        /// restarts. Optional hint: losing it forces a full catch-up or
        /// image handoff; a stale value only re-applies batches the
        /// apply path skips idempotently.
        lsn_path: Option<PathBuf>,
    },
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            deadline_ms: 0,
            role: ReplRole::Primary { repl_addr: None },
        }
    }
}

fn ms_opt(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// One client connection's server-side state.
struct Conn {
    /// Key into `Shared::readers`, so closing a connection can reap its
    /// reader handle.
    id: u64,
    /// Control clone: `shutdown(Read)` unblocks the reader on drain.
    sock: TcpStream,
    /// Serialized response writes (workers and overload rejections).
    writer: Mutex<BufWriter<TcpStream>>,
    /// First storage error on this connection has been logged; later
    /// ones only count in metrics (a corrupted hot page would otherwise
    /// log once per request).
    storage_error_logged: AtomicBool,
    state: Mutex<ConnState>,
}

/// One accepted request frame awaiting (or undergoing) execution.
struct Batch {
    tag: u32,
    /// Absolute deadline, stamped at frame acceptance. `None` runs
    /// unbounded.
    deadline: Option<Instant>,
    reqs: Vec<Request>,
}

struct ConnState {
    /// Accepted batches awaiting a worker, FIFO. Bounded by
    /// `queue_depth`.
    queue: VecDeque<Batch>,
    /// True while the connection sits on the run queue or a worker is
    /// processing one of its batches — at most one of either, ever.
    scheduled: bool,
    /// The reader thread has exited (client EOF, bad frame, or drain):
    /// whoever finds the queue empty last fully closes the socket.
    reader_gone: bool,
}

struct Shared<S: PageStore + 'static> {
    db: Arc<EpochCell<Ccam<S>>>,
    metrics: Arc<MetricsRegistry>,
    queue_depth: usize,
    idle_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    /// Default request budget when a frame's deadline field is 0.
    default_deadline: Option<Duration>,
    shutting_down: AtomicBool,
    /// Set after every reader has been joined: no batch can arrive
    /// anymore, so workers may exit once the run queue is drained.
    readers_done: AtomicBool,
    run_queue: Mutex<VecDeque<Arc<Conn>>>,
    /// Connections a worker has popped but not yet finished/rescheduled
    /// (their batches are invisible to the run queue); workers only exit
    /// when this is 0 *and* the run queue is empty. Mutated under the
    /// `run_queue` lock so the exit check is consistent.
    inflight: AtomicUsize,
    work_cv: Condvar,
    /// Live connections only: whoever fully closes a connection (the
    /// reader when idle, else the worker draining its last batch) also
    /// removes it here and reaps its reader handle — a long-running
    /// server must not accumulate dead sockets.
    conns: Mutex<Vec<Arc<Conn>>>,
    readers: Mutex<Vec<(u64, JoinHandle<()>)>>,
    /// `Some` iff this server is a replica: follower-side replication
    /// state (link health, applied LSN, the primary's client address).
    repl: Option<Arc<repl::ReplState>>,
}

/// Forgets a closed connection: drops its `Conn` (and the two socket
/// clones inside) from `conns` and detaches its reader handle. The
/// reader is at (or past) its exit when this runs, so dropping the
/// handle leaks nothing; a *panicking* reader never reaches this path
/// and stays in `readers` for `shutdown` to join and report.
fn remove_conn<S: PageStore + 'static>(shared: &Shared<S>, conn: &Conn) {
    shared.conns.lock().retain(|c| c.id != conn.id);
    let mut readers = shared.readers.lock();
    if let Some(i) = readers.iter().position(|(id, _)| *id == conn.id) {
        readers.swap_remove(i);
    }
}

/// The server. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker threads
    /// over the shared database. The caller keeps its `Arc` clone of
    /// the [`EpochCell`] — a maintenance writer mutates and commits
    /// through [`EpochCell::write`] while the server keeps answering
    /// from pinned pre-commit snapshots.
    pub fn start<S: PageStore + 'static>(
        db: Arc<EpochCell<Ccam<S>>>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle<S>> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let repl_state = match &config.role {
            ReplRole::Replica { .. } => {
                // The primary's client address is unknown until the
                // first handshake; NotPrimary answers an empty address
                // (and clients keep their configured endpoints) until
                // then.
                Some(Arc::new(repl::ReplState::new(String::new())))
            }
            ReplRole::Primary { .. } => None,
        };
        let shared = Arc::new(Shared {
            db,
            metrics: Arc::new(MetricsRegistry::new()),
            queue_depth: config.queue_depth.max(1),
            idle_timeout: ms_opt(config.idle_timeout_ms),
            write_timeout: ms_opt(config.write_timeout_ms),
            default_deadline: ms_opt(config.deadline_ms),
            shutting_down: AtomicBool::new(false),
            readers_done: AtomicBool::new(false),
            run_queue: Mutex::new(VecDeque::new()),
            inflight: AtomicUsize::new(0),
            work_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            repl: repl_state,
        });
        let mut repl_listener = None;
        let mut follower = None;
        match &config.role {
            ReplRole::Primary {
                repl_addr: Some(addr),
            } => {
                repl_listener = Some(repl::start_listener(&shared, addr, local_addr.to_string())?);
            }
            ReplRole::Primary { repl_addr: None } => {}
            ReplRole::Replica {
                primary,
                seed,
                lsn_path,
            } => {
                let shared2 = Arc::clone(&shared);
                let repl2 = Arc::clone(shared.repl.as_ref().expect("replica state set above"));
                let primary = primary.clone();
                let seed = *seed;
                let lsn_path = lsn_path.clone();
                follower = Some(
                    std::thread::Builder::new()
                        .name("ccam-repl-follower".to_string())
                        .spawn(move || {
                            repl::follower_loop(
                                &shared2,
                                &repl2,
                                &primary,
                                seed,
                                lsn_path.as_ref(),
                            );
                        })?,
                );
            }
        }
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccam-worker-{i}"))
                    .spawn(move || worker_supervisor(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ccam-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
            local_addr,
            repl_listener,
            follower,
        })
    }
}

/// Owns a running server's threads; dropping without
/// [`ServerHandle::shutdown`] aborts connections without draining.
pub struct ServerHandle<S: PageStore + 'static> {
    shared: Arc<Shared<S>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
    repl_listener: Option<repl::ReplListener>,
    follower: Option<JoinHandle<()>>,
}

impl<S: PageStore + 'static> ServerHandle<S> {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The replication listener's bound address, when this server is a
    /// primary with replication enabled.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_listener.as_ref().map(|l| l.local_addr)
    }

    /// The last primary LSN this replica has applied (0 when this
    /// server is not a replica or nothing has been applied yet).
    pub fn applied_lsn(&self) -> u64 {
        self.shared
            .repl
            .as_ref()
            .map_or(0, |r| r.applied_lsn.load(Ordering::Acquire))
    }

    /// True when this server is a replica with a live primary link.
    pub fn repl_connected(&self) -> bool {
        self.shared
            .repl
            .as_ref()
            .is_some_and(|r| r.connected.load(Ordering::Acquire))
    }

    /// The server's metric registry (request counters, latency and
    /// batch-size histograms, overload rejections).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The shared database cell (tests use it to commit writes while
    /// the server is live).
    pub fn db(&self) -> &Arc<EpochCell<Ccam<S>>> {
        &self.shared.db
    }

    /// Number of connections the server currently tracks. Closed
    /// connections are forgotten as they drain, so on a quiesced server
    /// this is the number of clients still connected.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// Metrics as JSON, with current I/O-counter gauges folded in —
    /// the same document the `Stats` protocol op returns.
    pub fn metrics_json(&self) -> String {
        // Counters come off the cell's lock-free stats handle, not a
        // read guard: metrics must stay observable while a long
        // reorganization holds the writer lock or the cell is poisoned.
        if let Some(io) = self.shared.db.io_stats() {
            fold_io_gauges(&self.shared.metrics, &io.snapshot(), self.shared.db.epoch());
        }
        if let Some(repl) = &self.shared.repl {
            repl::fold_repl_gauges(&self.shared.metrics, repl);
        }
        self.shared.metrics.to_json()
    }

    /// Graceful shutdown: stop accepting, drain every accepted batch,
    /// deliver every pending response, join all threads. Errors if any
    /// worker or reader thread panicked.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        let shared = &self.shared;
        shared.shutting_down.store(true, Ordering::SeqCst);
        // Half-close every connection's read side: readers wake with
        // EOF once their current frame (if any) is enqueued.
        for conn in shared.conns.lock().iter() {
            let _ = conn.sock.shutdown(Shutdown::Read);
        }
        // The acceptor blocks in accept(); a throwaway connection to
        // ourselves wakes it to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        let mut panicked = false;
        if let Some(acceptor) = self.acceptor.take() {
            panicked |= acceptor.join().is_err();
        }
        // The acceptor may have passed its shutting_down check and
        // registered one more connection after the half-close pass
        // above. With the acceptor joined the conn set is final — close
        // any straggler so its reader sees EOF instead of blocking
        // forever (which would hang the joins below).
        for conn in shared.conns.lock().iter() {
            let _ = conn.sock.shutdown(Shutdown::Read);
        }
        // Readers joined => every batch that will ever exist is queued.
        let readers = std::mem::take(&mut *shared.readers.lock());
        for (_, r) in readers {
            panicked |= r.join().is_err();
        }
        shared.readers_done.store(true, Ordering::SeqCst);
        shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            panicked |= w.join().is_err();
        }
        // Replication threads observe `shutting_down` on their next poll
        // (streamers), read timeout (follower), or accept (poked awake).
        if let Some(mut l) = self.repl_listener.take() {
            repl::poke(l.local_addr);
            if let Some(a) = l.acceptor.take() {
                panicked |= a.join().is_err();
            }
            let streamers = std::mem::take(&mut *l.streamers.lock());
            for s in streamers {
                panicked |= s.join().is_err();
            }
        }
        if let Some(f) = self.follower.take() {
            panicked |= f.join().is_err();
        }
        if panicked {
            return Err(std::io::Error::other("server thread panicked"));
        }
        Ok(())
    }
}

fn acceptor_loop<S: PageStore + 'static>(shared: &Arc<Shared<S>>, listener: &TcpListener) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // The reader clone gets the idle timeout (slowloris reaping);
        // the writer clone gets the write timeout (slow-consumer
        // backpressure fails the write instead of blocking a worker).
        let _ = stream.set_read_timeout(shared.idle_timeout);
        let (Ok(sock), Ok(wsock)) = (stream.try_clone(), stream.try_clone()) else {
            continue;
        };
        let _ = wsock.set_write_timeout(shared.write_timeout);
        next_id += 1;
        let id = next_id;
        let conn = Arc::new(Conn {
            id,
            sock,
            writer: Mutex::new(BufWriter::new(wsock)),
            storage_error_logged: AtomicBool::new(false),
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                scheduled: false,
                reader_gone: false,
            }),
        });
        shared.metrics.inc_by("serve.connections", 1);
        shared.conns.lock().push(Arc::clone(&conn));
        let reader_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("ccam-reader".to_string())
            .spawn(move || reader_loop(&reader_shared, &conn, stream));
        match handle {
            Ok(h) => {
                shared.readers.lock().push((id, h));
                // An instantly-exiting reader may have run its cleanup
                // before the handle was registered above; if the conn is
                // already gone from `conns`, sweep the handle now.
                if !shared.conns.lock().iter().any(|c| c.id == id) {
                    let mut readers = shared.readers.lock();
                    if let Some(i) = readers.iter().position(|(rid, _)| *rid == id) {
                        readers.swap_remove(i);
                    }
                }
            }
            Err(_) => {
                // Could not spawn a reader: nobody will ever service or
                // clean up this connection — forget it (its sockets
                // close with the last Arc here).
                shared.conns.lock().retain(|c| c.id != id);
            }
        }
    }
}

fn reader_loop<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    conn: &Arc<Conn>,
    stream: TcpStream,
) {
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean EOF or our own shutdown(Read).
            Ok(None) => return reader_exit(shared, conn),
            // Read timeout: the peer stalled — possibly mid-frame
            // (slowloris). Sever the socket so the peer observes the
            // reap and the connection slot is reclaimed.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                shared.metrics.inc_by("serve.idle_reaped", 1);
                let _ = conn.sock.shutdown(Shutdown::Both);
                return reader_exit(shared, conn);
            }
            // Client reset or other transport failure.
            Err(_) => return reader_exit(shared, conn),
        };
        let accepted_at = Instant::now();
        let (tag, deadline_ms, reqs) = match decode_request_batch(&payload) {
            Ok(b) => b,
            Err(_) => {
                shared.metrics.inc_by("serve.bad_frames", 1);
                respond_flat(shared, conn, 0, Status::BadRequest, 1);
                return reader_exit(shared, conn);
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            respond_flat(shared, conn, tag, Status::ShuttingDown, reqs.len());
            return reader_exit(shared, conn);
        }
        // Client budget wins; 0 falls back to the server default. The
        // clock starts now, so time spent queued counts against it.
        let budget = match deadline_ms {
            0 => shared.default_deadline,
            ms => Some(Duration::from_millis(ms as u64)),
        };
        let batch = Batch {
            tag,
            deadline: budget.map(|b| accepted_at + b),
            reqs,
        };
        let batch_len = batch.reqs.len();
        let enqueued = {
            let mut st = conn.state.lock();
            if st.queue.len() >= shared.queue_depth {
                false
            } else {
                st.queue.push_back(batch);
                shared.metrics.inc_by("serve.frames_accepted", 1);
                if !st.scheduled {
                    st.scheduled = true;
                    // Lock order everywhere: conn.state before run_queue.
                    shared.run_queue.lock().push_back(Arc::clone(conn));
                    shared.work_cv.notify_one();
                }
                true
            }
        };
        if !enqueued {
            // Reject immediately — by design this can overtake pending
            // answers, which is why frames carry tags.
            shared.metrics.inc_by("serve.overloaded", batch_len as u64);
            respond_flat(shared, conn, tag, Status::Overloaded, batch_len);
        }
    }
}

/// Marks the reader as gone; if no batch is queued or in flight, fully
/// closes the socket and forgets the connection here (otherwise the
/// worker that drains the last batch does). Without this the client
/// would never see EOF and the server would accumulate a `Conn` — two
/// socket fds — plus a reader handle per connection until shutdown.
fn reader_exit<S: PageStore + 'static>(shared: &Shared<S>, conn: &Conn) {
    let idle = {
        let mut st = conn.state.lock();
        st.reader_gone = true;
        // Clean up here only when idle; otherwise the worker parking
        // the connection sees `reader_gone` (same lock) and does it.
        st.queue.is_empty() && !st.scheduled
    };
    if idle {
        let _ = conn.sock.shutdown(Shutdown::Both);
        remove_conn(shared, conn);
    }
}

/// Writes a frame of `count` identical error responses (op echo is
/// per-request where known; `Stats` stands in when the frame itself was
/// undecodable and `count` is 1).
fn respond_flat<S: PageStore + 'static>(
    shared: &Shared<S>,
    conn: &Conn,
    tag: u32,
    status: Status,
    count: usize,
) {
    let resps = vec![Response::Error(status, OpCode::Stats); count];
    write_response(shared, conn, &encode_response_batch(tag, &resps));
}

/// Writes one response frame under the connection's writer lock. A
/// failed or timed-out write severs the connection: the peer is gone or
/// too slow to keep, and retrying a partially written frame would
/// desynchronize the stream anyway.
fn write_response<S: PageStore + 'static>(shared: &Shared<S>, conn: &Conn, payload: &[u8]) {
    let mut w = conn.writer.lock();
    if write_frame(&mut *w, payload).is_err() {
        shared.metrics.inc_by("serve.write_errors", 1);
        let _ = conn.sock.shutdown(Shutdown::Both);
    }
}

/// Runs `worker_loop`, re-entering it if it unwinds. Per-request panics
/// are already contained in [`execute_batch`]; this outer net catches
/// unwinds from the surrounding machinery (encoding, scheduling) so a
/// single panic can never permanently shrink the worker pool — the
/// same thread resumes pulling work, and `shutdown` joins an `Ok`
/// handle instead of discovering a corpse.
fn worker_supervisor<S: PageStore + 'static>(shared: &Arc<Shared<S>>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(()) => return, // clean exit: shutdown drain complete
            Err(_) => shared.metrics.inc_by("serve.worker_panics", 1),
        }
    }
}

/// Drop guard for one popped connection: parks or reschedules it, reaps
/// it when its reader is gone, and decrements `inflight` — *also* on
/// unwind, so a panicking batch never strands its connection in the
/// `scheduled` state or wedges the workers' exit check.
struct FinishConn<'a, S: PageStore + 'static> {
    shared: &'a Shared<S>,
    conn: Option<Arc<Conn>>,
}

impl<S: PageStore + 'static> Drop for FinishConn<'_, S> {
    fn drop(&mut self) {
        let shared = self.shared;
        let conn = self.conn.take().expect("FinishConn dropped twice");
        // Reschedule or park. The park decision happens under the state
        // lock so a reader enqueueing concurrently either sees
        // `scheduled` still true (we will reschedule) or false (it
        // schedules itself) — a batch can never be stranded.
        let (more, reap) = {
            let mut st = conn.state.lock();
            if st.queue.is_empty() {
                st.scheduled = false;
                (false, st.reader_gone)
            } else {
                (true, false)
            }
        };
        if reap {
            // The reader is gone and we just drained its last batch:
            // this connection is dead — close it and forget it.
            let _ = conn.sock.shutdown(Shutdown::Both);
            remove_conn(shared, &conn);
        }
        // The inflight decrement shares the run-queue lock with the
        // workers' exit check, so a batch being rescheduled is never
        // invisible to that check.
        let mut q = shared.run_queue.lock();
        if more {
            q.push_back(conn);
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        drop(q);
        if more {
            shared.work_cv.notify_one();
        } else if shared.readers_done.load(Ordering::SeqCst) {
            shared.work_cv.notify_all();
        }
    }
}

fn worker_loop<S: PageStore + 'static>(shared: &Arc<Shared<S>>) {
    loop {
        let conn = {
            let mut q = shared.run_queue.lock();
            loop {
                if let Some(c) = q.pop_front() {
                    shared.inflight.fetch_add(1, Ordering::SeqCst);
                    break c;
                }
                if shared.readers_done.load(Ordering::SeqCst)
                    && shared.inflight.load(Ordering::SeqCst) == 0
                {
                    // Cascade: wake the other idle workers to exit too.
                    shared.work_cv.notify_all();
                    return;
                }
                shared.work_cv.wait(&mut q);
            }
        };
        let finish = FinishConn {
            shared,
            conn: Some(conn),
        };
        let conn = finish.conn.as_deref().expect("conn set above");
        let batch = conn.state.lock().queue.pop_front();
        if let Some(batch) = batch {
            let resps = execute_batch(shared, conn, &batch);
            let payload = encode_response_batch(batch.tag, &resps);
            write_response(shared, conn, &payload);
        }
        drop(finish); // park/reschedule/reap + inflight decrement
    }
}

/// Executes one batch on a single pinned snapshot: every response in
/// the frame reflects the same committed generation, and a writer
/// committing (or reorganizing) concurrently neither stalls the batch
/// nor changes what it observes.
///
/// Pinning fails only when the cell is poisoned (a maintenance writer
/// panicked mid-transaction); the whole batch then answers `Internal`,
/// counted per request under `serve.internal_errors.poisoned`.
///
/// Each request is deadline-checked before it runs (a frame that sat
/// queued past its budget answers `DeadlineExceeded` without touching
/// storage) and executes under `catch_unwind` — a panic answers
/// `Internal` for that request and the rest of the batch proceeds.
fn execute_batch<S: PageStore>(shared: &Shared<S>, conn: &Conn, batch: &Batch) -> Vec<Response> {
    let m = &shared.metrics;
    m.inc_by("serve.batches", 1);
    m.inc_by("serve.requests", batch.reqs.len() as u64);
    m.observe("serve.batch_size", batch.reqs.len() as u64);
    let pin_start = Instant::now();
    let am: Snapshot<Ccam<SnapshotStore>> = match shared.db.read() {
        Ok(snap) => snap,
        Err(e) => {
            m.inc_by(internal_metric(e.kind()), batch.reqs.len() as u64);
            if !conn.storage_error_logged.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "ccam-serve: cannot pin snapshot on connection {} ({}): {e}",
                    conn.id,
                    e.kind()
                );
            }
            return batch
                .reqs
                .iter()
                .map(|req| Response::Error(Status::Internal, req.op()))
                .collect();
        }
    };
    m.inc_by("serve.snapshot_pins", 1);
    // A replica with a dead primary link keeps answering (availability
    // over freshness), but every such read is visibly stale-flagged.
    if let Some(repl) = &shared.repl {
        if !repl.connected.load(Ordering::Acquire) {
            m.inc_by("serve.stale_reads", batch.reqs.len() as u64);
        }
    }
    // Time-to-pin is the only point a reader could ever wait on the
    // write path (the publish lock); the histogram proves it stays ~0
    // even while `reorganize_full` runs.
    m.observe(
        "serve.reader_stall_ms",
        u64::try_from(pin_start.elapsed().as_millis()).unwrap_or(u64::MAX),
    );
    batch
        .reqs
        .iter()
        .map(|req| {
            let op = req.op();
            if let Some(dl) = batch.deadline {
                if Instant::now() >= dl {
                    m.inc_by("serve.deadline_exceeded", 1);
                    return Response::Error(Status::DeadlineExceeded, op);
                }
            }
            let start = Instant::now();
            let resp = catch_unwind(AssertUnwindSafe(|| {
                execute_one(shared, conn, &am, req, batch.deadline)
            }))
            .unwrap_or_else(|_| {
                m.inc_by("serve.worker_panics", 1);
                Response::Error(Status::Internal, op)
            });
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            m.observe(latency_metric(op), us);
            resp
        })
        .collect()
}

fn latency_metric(op: OpCode) -> &'static str {
    match op {
        OpCode::Find => "serve.find.elapsed_us",
        OpCode::GetSuccessors => "serve.get_successors.elapsed_us",
        OpCode::Route => "serve.route.elapsed_us",
        OpCode::RangeAggregate => "serve.range_aggregate.elapsed_us",
        OpCode::Stats => "serve.stats.elapsed_us",
        OpCode::Upsert => "serve.upsert.elapsed_us",
    }
}

/// True when the error should route the read through the degraded path
/// (the page failed verification; everything else still answers).
fn is_checksum(e: &StorageError) -> bool {
    e.kind() == "checksum_mismatch"
}

/// Answers `Internal` for a storage error, counting it per error kind
/// and logging the first occurrence on this connection (later ones
/// would repeat the same page's story once per request).
fn storage_internal<S: PageStore>(
    shared: &Shared<S>,
    conn: &Conn,
    e: &StorageError,
    op: OpCode,
) -> Response {
    shared.metrics.inc_by(internal_metric(e.kind()), 1);
    if !conn.storage_error_logged.swap(true, Ordering::Relaxed) {
        eprintln!(
            "ccam-serve: storage error on connection {} ({}): {e}",
            conn.id,
            e.kind()
        );
    }
    Response::Error(Status::Internal, op)
}

/// Per-kind `Internal` counter names, statically interned so the hot
/// path never allocates a metric label.
fn internal_metric(kind: &str) -> &'static str {
    match kind {
        "io" => "serve.internal_errors.io",
        "invalid_page" => "serve.internal_errors.invalid_page",
        "record_too_large" => "serve.internal_errors.record_too_large",
        "page_full" => "serve.internal_errors.page_full",
        "invalid_slot" => "serve.internal_errors.invalid_slot",
        "corrupt" => "serve.internal_errors.corrupt",
        "checksum_mismatch" => "serve.internal_errors.checksum_mismatch",
        "bad_page_size" => "serve.internal_errors.bad_page_size",
        "poisoned" => "serve.internal_errors.poisoned",
        "no_space" => "serve.internal_errors.no_space",
        _ => "serve.internal_errors.other",
    }
}

/// Clamps a server-side tally to the wire's `u32`, counting each clamp
/// under `serve.counter_saturated` — a saturated counter is visibly
/// pegged at `u32::MAX` instead of silently wrapping to a small lie.
fn sat_u32<T: TryInto<u32>>(m: &MetricsRegistry, v: T) -> u32 {
    v.try_into().unwrap_or_else(|_| {
        m.inc_by("serve.counter_saturated", 1);
        u32::MAX
    })
}

/// `Find` retried through the quarantine-skipping path after a checksum
/// failure: the freshly failed page is quarantined by the attempt, so a
/// record on any *other* page still answers exactly; a record that may
/// live on a skipped page answers `Degraded` rather than guessing
/// `NotFound`.
fn degraded_find<S: PageStore>(
    shared: &Shared<S>,
    am: &Ccam<SnapshotStore>,
    id: NodeId,
) -> Response {
    shared.metrics.inc_by("serve.degraded_reads", 1);
    match am.file().find_degraded(id) {
        Ok(d) => match d.value {
            Some(node) => Response::Record(node),
            None if d.skipped.is_empty() => Response::Error(Status::NotFound, OpCode::Find),
            None => Response::Error(Status::Degraded, OpCode::Find),
        },
        Err(_) => Response::Error(Status::Degraded, OpCode::Find),
    }
}

fn execute_one<S: PageStore>(
    shared: &Shared<S>,
    conn: &Conn,
    am: &Ccam<SnapshotStore>,
    req: &Request,
    deadline: Option<Instant>,
) -> Response {
    let m = &shared.metrics;
    let mut cancel = || deadline.is_some_and(|dl| Instant::now() >= dl);
    match req {
        Request::Find(id) => match am.find(*id) {
            Ok(Some(node)) => Response::Record(node),
            Ok(None) => Response::Error(Status::NotFound, OpCode::Find),
            Err(e) if is_checksum(&e) => degraded_find(shared, am, *id),
            Err(e) => storage_internal(shared, conn, &e, OpCode::Find),
        },
        Request::GetSuccessors(id) => match am.get_successors(*id) {
            Ok(nodes) => Response::Records(nodes),
            Err(e) if is_checksum(&e) => match am.get_successors_degraded(*id) {
                Ok(d) => {
                    shared.metrics.inc_by("serve.degraded_reads", 1);
                    Response::RecordsDegraded {
                        nodes: d.value,
                        skipped_pages: sat_u32(m, d.skipped.len()),
                    }
                }
                Err(e) => storage_internal(shared, conn, &e, OpCode::GetSuccessors),
            },
            Err(e) => storage_internal(shared, conn, &e, OpCode::GetSuccessors),
        },
        Request::Route(nodes) => match evaluate_path_bounded(am, nodes, &mut cancel) {
            Ok(Some(eval)) => Response::RouteEval {
                total_cost: eval.total_cost,
                nodes_visited: sat_u32(m, eval.nodes_visited),
                complete: eval.complete,
            },
            Ok(None) => {
                shared.metrics.inc_by("serve.deadline_exceeded", 1);
                Response::Error(Status::DeadlineExceeded, OpCode::Route)
            }
            Err(e) if is_checksum(&e) => {
                // A partial route cost would be silently wrong; say so.
                shared.metrics.inc_by("serve.degraded_reads", 1);
                Response::Error(Status::Degraded, OpCode::Route)
            }
            Err(e) => storage_internal(shared, conn, &e, OpCode::Route),
        },
        Request::RangeAggregate(arcs) => {
            match route_unit_aggregate_bounded(am, arcs, &mut cancel) {
                Ok(Some(agg)) => Response::Aggregate {
                    arcs_found: sat_u32(m, agg.arcs_found),
                    arcs_missing: sat_u32(m, agg.arcs_missing),
                    total_cost: agg.total_cost,
                    node_payload_sum: agg.node_payload_sum,
                    nodes_retrieved: sat_u32(m, agg.nodes_retrieved),
                },
                Ok(None) => {
                    shared.metrics.inc_by("serve.deadline_exceeded", 1);
                    Response::Error(Status::DeadlineExceeded, OpCode::RangeAggregate)
                }
                Err(e) if is_checksum(&e) => {
                    shared.metrics.inc_by("serve.degraded_reads", 1);
                    Response::Error(Status::Degraded, OpCode::RangeAggregate)
                }
                Err(e) => storage_internal(shared, conn, &e, OpCode::RangeAggregate),
            }
        }
        Request::Upsert { id, payload } => {
            if let Some(repl) = &shared.repl {
                // Replicas do not accept writes; redirect to the primary
                // address learned in the replication handshake (empty
                // until first contact — the client keeps its configured
                // endpoints then).
                m.inc_by("serve.not_primary", 1);
                return Response::NotPrimary {
                    primary: repl.primary.lock().clone(),
                    op: OpCode::Upsert,
                };
            }
            match upsert_node(shared, *id, payload) {
                Ok(Some(epoch)) => Response::Upserted { epoch },
                Ok(None) => Response::Error(Status::NotFound, OpCode::Upsert),
                Err(e) => storage_internal(shared, conn, &e, OpCode::Upsert),
            }
        }
        Request::Stats => {
            // Lock-free stats handle, not the snapshot's own counters:
            // views are rebuilt per commit (their counters reset), and
            // the handle stays readable during a long reorganization.
            if let Some(io) = shared.db.io_stats() {
                fold_io_gauges(&shared.metrics, &io.snapshot(), shared.db.epoch());
            }
            if let Some(repl) = &shared.repl {
                repl::fold_repl_gauges(&shared.metrics, repl);
            }
            Response::StatsJson(shared.metrics.to_json())
        }
    }
}

/// Replaces an existing node's payload as one committed transaction:
/// delete + re-insert with the same edges run as a single WAL batch
/// (auto-commit is suspended for the pair), then the new state is
/// published through the epoch. Returns the new epoch, or `None` when
/// the node does not exist. Any failure restores the committed state
/// before propagating — the writer value never stays torn.
fn upsert_node<S: PageStore>(
    shared: &Shared<S>,
    id: NodeId,
    payload: &[u8],
) -> Result<Option<u64>, StorageError> {
    let mut w = shared.db.write()?;
    let was_auto = w.file().auto_commit();
    w.file_mut().set_auto_commit(false);
    let outcome = (|| -> Result<bool, StorageError> {
        let Some(del) = w.delete_node(id)? else {
            return Ok(false);
        };
        let mut data = del.data;
        data.payload = payload.to_vec();
        w.insert_node(&data, &del.incoming)?;
        Ok(true)
    })();
    w.file_mut().set_auto_commit(was_auto);
    match outcome {
        Ok(true) => match w.file().commit() {
            Ok(()) => Ok(Some(w.commit()?)),
            Err(e) => {
                let _ = w.restore_committed();
                Err(e)
            }
        },
        // Not found: the lookup mutated nothing, so there is nothing to
        // roll back and no epoch to publish.
        Ok(false) => Ok(None),
        Err(e) => {
            let _ = w.restore_committed();
            Err(e)
        }
    }
}

/// Copies the database's cumulative I/O counters into gauges (gauges,
/// not counter increments: snapshots are cumulative, and adding them on
/// every `Stats` call would double-count). Public so the CLI can
/// produce the same document after the handle is consumed by shutdown.
pub fn fold_io_gauges(m: &MetricsRegistry, io: &ccam_storage::IoSnapshot, epoch: u64) {
    m.set_gauge("io.physical_reads", io.physical_reads as f64);
    m.set_gauge("io.physical_writes", io.physical_writes as f64);
    m.set_gauge("io.buffer_hits", io.buffer_hits as f64);
    m.set_gauge("io.evictions", io.evictions as f64);
    m.set_gauge("serve.epoch", epoch as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wire's `u32` counters must clamp at the boundary, not wrap:
    /// `u32::MAX` passes through exactly, `u32::MAX + 1` (which `as
    /// u32` would silently turn into 0) pegs at `u32::MAX`, and every
    /// clamp is counted.
    #[test]
    fn sat_u32_boundary_values_clamp_and_count() {
        let m = MetricsRegistry::new();
        assert_eq!(sat_u32(&m, 0u64), 0);
        assert_eq!(sat_u32(&m, u64::from(u32::MAX)), u32::MAX);
        assert_eq!(m.counter("serve.counter_saturated"), 0);
        assert_eq!(sat_u32(&m, u64::from(u32::MAX) + 1), u32::MAX);
        assert_eq!(m.counter("serve.counter_saturated"), 1);
        assert_eq!(sat_u32(&m, u64::MAX), u32::MAX);
        assert_eq!(sat_u32(&m, usize::MAX), u32::MAX);
        assert_eq!(m.counter("serve.counter_saturated"), 3);
    }
}
