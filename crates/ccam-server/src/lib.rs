#![warn(missing_docs)]

//! The TCP serving layer over the CCAM access method.
//!
//! The paper evaluates CCAM as an access method; this crate turns the
//! library into a system: a server speaking the batched binary
//! [`protocol`] over `std::net`, a fixed pool of worker threads sharing
//! one [`Ccam`] read path, and a blocking [`client`] used by the load
//! generator, the CLI and the tests.
//!
//! # Architecture
//!
//! ```text
//!  acceptor ──► reader (1/conn) ──► per-conn bounded queue ─┐
//!                  │ full? write Overloaded immediately     │
//!                  ▼                                        ▼
//!              conn writer ◄────────────── worker pool (N threads)
//!                                   batch runs under EpochCell::read()
//! ```
//!
//! * One **reader thread per connection** decodes frames and appends
//!   batches to that connection's bounded queue ([`ServerConfig::
//!   queue_depth`] batches). A full queue is answered *immediately*
//!   with per-request `Overloaded` — the server never buffers without
//!   bound, and a slow consumer only ever penalizes itself.
//! * A connection with pending batches is scheduled at most once on the
//!   global run queue. A worker pops a connection, takes **one** batch,
//!   executes the whole batch under a single [`EpochCell::read`] guard
//!   — so every response in a frame reflects one committed snapshot —
//!   writes the response frame, and re-schedules the connection if more
//!   batches are pending. One-batch-at-a-time per connection keeps
//!   accepted batches FIFO per connection and shares workers fairly
//!   across connections.
//! * **Graceful shutdown** ([`ServerHandle::shutdown`]) stops accepting,
//!   half-closes every connection's read side, joins the readers (no
//!   new work can arrive), then lets the workers drain every queued
//!   batch before joining them. In-flight requests complete; their
//!   responses are delivered.
//!
//! Snapshot consistency across a writer commit is delegated to
//! [`EpochCell`] — see `ccam_core::epoch` for the design note on why
//! readers block for the writer's critical section rather than pinning
//! the pre-commit state.

pub mod client;
pub mod protocol;

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ccam_core::epoch::EpochCell;
use ccam_core::query::route::evaluate_path;
use ccam_core::query::route_unit_aggregate;
use ccam_core::{AccessMethod, Ccam};
use ccam_storage::{MetricsRegistry, PageStore};
use parking_lot::{Condvar, Mutex};

use protocol::{
    decode_request_batch, encode_response_batch, read_frame, write_frame, OpCode, Request,
    Response, Status,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing batches. Clamped to at least 1.
    pub workers: usize,
    /// Max *batches* queued per connection before new frames are
    /// rejected with `Overloaded`. Clamped to at least 1.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
        }
    }
}

/// One client connection's server-side state.
struct Conn {
    /// Key into `Shared::readers`, so closing a connection can reap its
    /// reader handle.
    id: u64,
    /// Control clone: `shutdown(Read)` unblocks the reader on drain.
    sock: TcpStream,
    /// Serialized response writes (workers and overload rejections).
    writer: Mutex<BufWriter<TcpStream>>,
    state: Mutex<ConnState>,
}

struct ConnState {
    /// Accepted batches awaiting a worker, FIFO. Bounded by
    /// `queue_depth`.
    queue: VecDeque<(u32, Vec<Request>)>,
    /// True while the connection sits on the run queue or a worker is
    /// processing one of its batches — at most one of either, ever.
    scheduled: bool,
    /// The reader thread has exited (client EOF, bad frame, or drain):
    /// whoever finds the queue empty last fully closes the socket.
    reader_gone: bool,
}

struct Shared<S: PageStore + 'static> {
    db: Arc<EpochCell<Ccam<S>>>,
    metrics: Arc<MetricsRegistry>,
    queue_depth: usize,
    shutting_down: AtomicBool,
    /// Set after every reader has been joined: no batch can arrive
    /// anymore, so workers may exit once the run queue is drained.
    readers_done: AtomicBool,
    run_queue: Mutex<VecDeque<Arc<Conn>>>,
    /// Connections a worker has popped but not yet finished/rescheduled
    /// (their batches are invisible to the run queue); workers only exit
    /// when this is 0 *and* the run queue is empty. Mutated under the
    /// `run_queue` lock so the exit check is consistent.
    inflight: AtomicUsize,
    work_cv: Condvar,
    /// Live connections only: whoever fully closes a connection (the
    /// reader when idle, else the worker draining its last batch) also
    /// removes it here and reaps its reader handle — a long-running
    /// server must not accumulate dead sockets.
    conns: Mutex<Vec<Arc<Conn>>>,
    readers: Mutex<Vec<(u64, JoinHandle<()>)>>,
}

/// Forgets a closed connection: drops its `Conn` (and the two socket
/// clones inside) from `conns` and detaches its reader handle. The
/// reader is at (or past) its exit when this runs, so dropping the
/// handle leaks nothing; a *panicking* reader never reaches this path
/// and stays in `readers` for `shutdown` to join and report.
fn remove_conn<S: PageStore + 'static>(shared: &Shared<S>, conn: &Conn) {
    shared.conns.lock().retain(|c| c.id != conn.id);
    let mut readers = shared.readers.lock();
    if let Some(i) = readers.iter().position(|(id, _)| *id == conn.id) {
        readers.swap_remove(i);
    }
}

/// The server. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker threads
    /// over the shared database. The caller keeps its `Arc` clone of
    /// the [`EpochCell`] — a maintenance writer commits through
    /// [`EpochCell::write`] while the server reads.
    pub fn start<S: PageStore + 'static>(
        db: Arc<EpochCell<Ccam<S>>>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle<S>> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            metrics: Arc::new(MetricsRegistry::new()),
            queue_depth: config.queue_depth.max(1),
            shutting_down: AtomicBool::new(false),
            readers_done: AtomicBool::new(false),
            run_queue: Mutex::new(VecDeque::new()),
            inflight: AtomicUsize::new(0),
            work_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccam-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ccam-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
            local_addr,
        })
    }
}

/// Owns a running server's threads; dropping without
/// [`ServerHandle::shutdown`] aborts connections without draining.
pub struct ServerHandle<S: PageStore + 'static> {
    shared: Arc<Shared<S>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl<S: PageStore + 'static> ServerHandle<S> {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metric registry (request counters, latency and
    /// batch-size histograms, overload rejections).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The shared database cell (tests use it to commit writes while
    /// the server is live).
    pub fn db(&self) -> &Arc<EpochCell<Ccam<S>>> {
        &self.shared.db
    }

    /// Number of connections the server currently tracks. Closed
    /// connections are forgotten as they drain, so on a quiesced server
    /// this is the number of clients still connected.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// Metrics as JSON, with current I/O-counter gauges folded in —
    /// the same document the `Stats` protocol op returns.
    pub fn metrics_json(&self) -> String {
        let io = self.shared.db.read().stats().snapshot();
        fold_io_gauges(&self.shared.metrics, &io, self.shared.db.epoch());
        self.shared.metrics.to_json()
    }

    /// Graceful shutdown: stop accepting, drain every accepted batch,
    /// deliver every pending response, join all threads. Errors if any
    /// worker or reader thread panicked.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        let shared = &self.shared;
        shared.shutting_down.store(true, Ordering::SeqCst);
        // Half-close every connection's read side: readers wake with
        // EOF once their current frame (if any) is enqueued.
        for conn in shared.conns.lock().iter() {
            let _ = conn.sock.shutdown(Shutdown::Read);
        }
        // The acceptor blocks in accept(); a throwaway connection to
        // ourselves wakes it to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        let mut panicked = false;
        if let Some(acceptor) = self.acceptor.take() {
            panicked |= acceptor.join().is_err();
        }
        // The acceptor may have passed its shutting_down check and
        // registered one more connection after the half-close pass
        // above. With the acceptor joined the conn set is final — close
        // any straggler so its reader sees EOF instead of blocking
        // forever (which would hang the joins below).
        for conn in shared.conns.lock().iter() {
            let _ = conn.sock.shutdown(Shutdown::Read);
        }
        // Readers joined => every batch that will ever exist is queued.
        let readers = std::mem::take(&mut *shared.readers.lock());
        for (_, r) in readers {
            panicked |= r.join().is_err();
        }
        shared.readers_done.store(true, Ordering::SeqCst);
        shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            panicked |= w.join().is_err();
        }
        if panicked {
            return Err(std::io::Error::other("server thread panicked"));
        }
        Ok(())
    }
}

fn acceptor_loop<S: PageStore + 'static>(shared: &Arc<Shared<S>>, listener: &TcpListener) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let (Ok(sock), Ok(wsock)) = (stream.try_clone(), stream.try_clone()) else {
            continue;
        };
        next_id += 1;
        let id = next_id;
        let conn = Arc::new(Conn {
            id,
            sock,
            writer: Mutex::new(BufWriter::new(wsock)),
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                scheduled: false,
                reader_gone: false,
            }),
        });
        shared.metrics.inc_by("serve.connections", 1);
        shared.conns.lock().push(Arc::clone(&conn));
        let reader_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("ccam-reader".to_string())
            .spawn(move || reader_loop(&reader_shared, &conn, stream));
        match handle {
            Ok(h) => {
                shared.readers.lock().push((id, h));
                // An instantly-exiting reader may have run its cleanup
                // before the handle was registered above; if the conn is
                // already gone from `conns`, sweep the handle now.
                if !shared.conns.lock().iter().any(|c| c.id == id) {
                    let mut readers = shared.readers.lock();
                    if let Some(i) = readers.iter().position(|(rid, _)| *rid == id) {
                        readers.swap_remove(i);
                    }
                }
            }
            Err(_) => {
                // Could not spawn a reader: nobody will ever service or
                // clean up this connection — forget it (its sockets
                // close with the last Arc here).
                shared.conns.lock().retain(|c| c.id != id);
            }
        }
    }
}

fn reader_loop<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    conn: &Arc<Conn>,
    stream: TcpStream,
) {
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean EOF, client reset, or our own shutdown(Read).
            Ok(None) | Err(_) => return reader_exit(shared, conn),
        };
        let (tag, batch) = match decode_request_batch(&payload) {
            Ok(b) => b,
            Err(_) => {
                shared.metrics.inc_by("serve.bad_frames", 1);
                respond_flat(conn, 0, Status::BadRequest, 1);
                return reader_exit(shared, conn);
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            respond_flat(conn, tag, Status::ShuttingDown, batch.len());
            return reader_exit(shared, conn);
        }
        let batch_len = batch.len();
        let enqueued = {
            let mut st = conn.state.lock();
            if st.queue.len() >= shared.queue_depth {
                false
            } else {
                st.queue.push_back((tag, batch));
                shared.metrics.inc_by("serve.frames_accepted", 1);
                if !st.scheduled {
                    st.scheduled = true;
                    // Lock order everywhere: conn.state before run_queue.
                    shared.run_queue.lock().push_back(Arc::clone(conn));
                    shared.work_cv.notify_one();
                }
                true
            }
        };
        if !enqueued {
            // Reject immediately — by design this can overtake pending
            // answers, which is why frames carry tags.
            shared.metrics.inc_by("serve.overloaded", batch_len as u64);
            respond_flat(conn, tag, Status::Overloaded, batch_len);
        }
    }
}

/// Marks the reader as gone; if no batch is queued or in flight, fully
/// closes the socket and forgets the connection here (otherwise the
/// worker that drains the last batch does). Without this the client
/// would never see EOF and the server would accumulate a `Conn` — two
/// socket fds — plus a reader handle per connection until shutdown.
fn reader_exit<S: PageStore + 'static>(shared: &Shared<S>, conn: &Conn) {
    let idle = {
        let mut st = conn.state.lock();
        st.reader_gone = true;
        // Clean up here only when idle; otherwise the worker parking
        // the connection sees `reader_gone` (same lock) and does it.
        st.queue.is_empty() && !st.scheduled
    };
    if idle {
        let _ = conn.sock.shutdown(Shutdown::Both);
        remove_conn(shared, conn);
    }
}

/// Writes a frame of `count` identical error responses (op echo is
/// per-request where known; `Stats` stands in when the frame itself was
/// undecodable and `count` is 1).
fn respond_flat(conn: &Conn, tag: u32, status: Status, count: usize) {
    let resps = vec![Response::Error(status, OpCode::Stats); count];
    let payload = encode_response_batch(tag, &resps);
    let mut w = conn.writer.lock();
    let _ = write_frame(&mut *w, &payload);
}

fn worker_loop<S: PageStore + 'static>(shared: &Arc<Shared<S>>) {
    loop {
        let conn = {
            let mut q = shared.run_queue.lock();
            loop {
                if let Some(c) = q.pop_front() {
                    shared.inflight.fetch_add(1, Ordering::SeqCst);
                    break c;
                }
                if shared.readers_done.load(Ordering::SeqCst)
                    && shared.inflight.load(Ordering::SeqCst) == 0
                {
                    // Cascade: wake the other idle workers to exit too.
                    shared.work_cv.notify_all();
                    return;
                }
                shared.work_cv.wait(&mut q);
            }
        };
        let batch = conn.state.lock().queue.pop_front();
        if let Some((tag, reqs)) = batch {
            let resps = execute_batch(shared, &reqs);
            let payload = encode_response_batch(tag, &resps);
            let mut w = conn.writer.lock();
            let _ = write_frame(&mut *w, &payload);
            drop(w);
        }
        // Reschedule or park. The park decision happens under the state
        // lock so a reader enqueueing concurrently either sees
        // `scheduled` still true (we will reschedule) or false (it
        // schedules itself) — a batch can never be stranded.
        let (more, reap) = {
            let mut st = conn.state.lock();
            if st.queue.is_empty() {
                st.scheduled = false;
                (false, st.reader_gone)
            } else {
                (true, false)
            }
        };
        if reap {
            // The reader is gone and we just drained its last batch:
            // this connection is dead — close it and forget it.
            let _ = conn.sock.shutdown(Shutdown::Both);
            remove_conn(shared, &conn);
        }
        // The inflight decrement shares the run-queue lock with the
        // workers' exit check, so a batch being rescheduled is never
        // invisible to that check.
        let mut q = shared.run_queue.lock();
        if more {
            q.push_back(conn);
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        drop(q);
        if more {
            shared.work_cv.notify_one();
        } else if shared.readers_done.load(Ordering::SeqCst) {
            shared.work_cv.notify_all();
        }
    }
}

/// Executes one batch under a single epoch read guard: every response
/// in the frame reflects the same committed snapshot.
fn execute_batch<S: PageStore>(shared: &Shared<S>, reqs: &[Request]) -> Vec<Response> {
    let am = shared.db.read();
    let m = &shared.metrics;
    m.inc_by("serve.batches", 1);
    m.inc_by("serve.requests", reqs.len() as u64);
    m.observe("serve.batch_size", reqs.len() as u64);
    reqs.iter()
        .map(|req| {
            let start = Instant::now();
            let resp = execute_one(shared, &am, req);
            let us = start.elapsed().as_micros() as u64;
            m.observe(latency_metric(req.op()), us);
            resp
        })
        .collect()
}

fn latency_metric(op: OpCode) -> &'static str {
    match op {
        OpCode::Find => "serve.find.elapsed_us",
        OpCode::GetSuccessors => "serve.get_successors.elapsed_us",
        OpCode::Route => "serve.route.elapsed_us",
        OpCode::RangeAggregate => "serve.range_aggregate.elapsed_us",
        OpCode::Stats => "serve.stats.elapsed_us",
    }
}

fn execute_one<S: PageStore>(shared: &Shared<S>, am: &Ccam<S>, req: &Request) -> Response {
    match req {
        Request::Find(id) => match am.find(*id) {
            Ok(Some(node)) => Response::Record(node),
            Ok(None) => Response::Error(Status::NotFound, OpCode::Find),
            Err(_) => Response::Error(Status::Internal, OpCode::Find),
        },
        Request::GetSuccessors(id) => match am.get_successors(*id) {
            Ok(nodes) => Response::Records(nodes),
            Err(_) => Response::Error(Status::Internal, OpCode::GetSuccessors),
        },
        Request::Route(nodes) => match evaluate_path(am, nodes) {
            Ok(eval) => Response::RouteEval {
                total_cost: eval.total_cost,
                nodes_visited: eval.nodes_visited as u32,
                complete: eval.complete,
            },
            Err(_) => Response::Error(Status::Internal, OpCode::Route),
        },
        Request::RangeAggregate(arcs) => match route_unit_aggregate(am, arcs) {
            Ok(agg) => Response::Aggregate {
                arcs_found: agg.arcs_found as u32,
                arcs_missing: agg.arcs_missing as u32,
                total_cost: agg.total_cost,
                node_payload_sum: agg.node_payload_sum,
                nodes_retrieved: agg.nodes_retrieved as u32,
            },
            Err(_) => Response::Error(Status::Internal, OpCode::RangeAggregate),
        },
        Request::Stats => {
            let io = am.stats().snapshot();
            fold_io_gauges(&shared.metrics, &io, shared.db.epoch());
            Response::StatsJson(shared.metrics.to_json())
        }
    }
}

/// Copies the database's cumulative I/O counters into gauges (gauges,
/// not counter increments: snapshots are cumulative, and adding them on
/// every `Stats` call would double-count). Public so the CLI can
/// produce the same document after the handle is consumed by shutdown.
pub fn fold_io_gauges(m: &MetricsRegistry, io: &ccam_storage::IoSnapshot, epoch: u64) {
    m.set_gauge("io.physical_reads", io.physical_reads as f64);
    m.set_gauge("io.physical_writes", io.physical_writes as f64);
    m.set_gauge("io.buffer_hits", io.buffer_hits as f64);
    m.set_gauge("io.evictions", io.evictions as f64);
    m.set_gauge("serve.epoch", epoch as f64);
}
