//! Log-shipping replication: one read-write primary streams committed
//! WAL segments to N read-only followers.
//!
//! # Wire protocol
//!
//! Frames ride the same length-prefixed framing as the client protocol
//! ([`crate::protocol::read_frame`] / [`write_frame`]), with a 1-byte
//! kind tag:
//!
//! | kind | name      | direction | body |
//! |------|-----------|-----------|------|
//! | 0    | Hello     | F → P     | `version u8, last_applied_lsn u64, page_size u32` |
//! | 7    | HelloAck  | P → F     | `version u8, page_size u32, client addr (u16 len + UTF-8)` |
//! | 1    | Segment   | P → F     | `next_lsn u64, count u32`, then per record `lsn u64, kind u8, len u32, body` |
//! | 2    | Heartbeat | P → F     | `next_lsn u64` |
//! | 3    | ImageStart| P → F     | `applied_lsn u64, page_size u32, page_count u32` |
//! | 4    | ImagePage | P → F     | `page u32, data (page_size bytes)` |
//! | 5    | ImageEnd  | P → F     | empty |
//! | 6    | Ack       | F → P     | `applied_lsn u64` |
//!
//! Record bodies reuse the WAL's own shapes: `PageImage` is
//! `page u32 + data`, `Alloc`/`Free` are `page u32`, `Commit` and
//! `Checkpoint` are empty.
//!
//! # LSN / segment lifecycle
//!
//! A follower subscribes with its last-applied (primary) LSN. While the
//! primary's retained log tail covers `lsn + 1`, the streamer ships
//! committed records straight from the log ([`ReplFeed::Records`]);
//! shipping is idempotent because the follower's
//! [`ccam_storage::apply_segment`] skips batches at or below its
//! position. When a checkpoint has truncated past the follower
//! ([`ReplFeed::NotRetained`]), the streamer falls back to a full
//! checkpoint-image handoff — every live page at a commit boundary —
//! and resumes log shipping from the image's LSN. Each subscriber holds
//! a [`ccam_storage::RetentionSlot`] while connected, so checkpoint
//! truncation does not outrun a live follower (a stalled one is
//! eventually sacrificed to the retention hard cap and re-seeded by
//! image handoff on reconnect).
//!
//! # Failover state machine (follower side)
//!
//! ```text
//!   Connecting ──handshake ok──► Streaming ──any I/O error──► Disconnected
//!       ▲  └──refused/reset (seeded backoff sleep)──┐              │
//!       └───────────────────────────────────────────┴──────────────┘
//! ```
//!
//! The follower treats *every* read failure — EOF, reset, or a read
//! timeout (no frame and no heartbeat for
//! [`FOLLOWER_READ_TIMEOUT`]) — as primary death: it keeps serving
//! reads from its last applied state (stale, surfaced via
//! `serve.repl_connected` = 0 and `serve.stale_reads`), and reconnects
//! with the seeded [`Backoff`]. Reconnecting re-sends the last applied
//! LSN, so a segment the primary re-ships after a torn connection is
//! re-applied idempotently.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccam_core::epoch::Snapshotable;
use ccam_storage::{
    LogRecord, MetricsRegistry, PageId, PageStore, ReplFeed, ReplImage, ReplImageState,
    StampedRecord, StorageError,
};
use parking_lot::Mutex;

use ccam_core::AccessMethod;

use crate::client::Backoff;
use crate::protocol::{read_frame, write_frame};
use crate::Shared;

/// Replication wire version; bumped on incompatible frame changes.
pub const REPL_VERSION: u8 = 1;

const FRAME_HELLO: u8 = 0;
const FRAME_SEGMENT: u8 = 1;
const FRAME_HEARTBEAT: u8 = 2;
const FRAME_IMAGE_START: u8 = 3;
const FRAME_IMAGE_PAGE: u8 = 4;
const FRAME_IMAGE_END: u8 = 5;
const FRAME_ACK: u8 = 6;
const FRAME_HELLO_ACK: u8 = 7;

/// Max record-payload bytes per Segment frame — stays far under the
/// framing layer's `MAX_FRAME_BYTES` while amortizing syscalls.
const SEGMENT_BYTE_BUDGET: usize = 1 << 20;
/// Primary streamer poll interval for new committed LSNs.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Idle gap after which the primary emits a heartbeat.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(150);
/// Follower read timeout. Heartbeats arrive every ~150 ms on an idle
/// link, so a silent half-second means the primary (or the link) is
/// gone — reconnect rather than risk resuming mid-frame.
const FOLLOWER_READ_TIMEOUT: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated replication frame",
            ));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn encode_hello(last_applied: u64, page_size: u32) -> Vec<u8> {
    let mut out = vec![FRAME_HELLO, REPL_VERSION];
    put_u64(&mut out, last_applied);
    put_u32(&mut out, page_size);
    out
}

fn decode_hello(body: &mut Cur) -> io::Result<(u8, u64, u32)> {
    Ok((body.u8()?, body.u64()?, body.u32()?))
}

fn encode_hello_ack(page_size: u32, client_addr: &str) -> Vec<u8> {
    let mut out = vec![FRAME_HELLO_ACK, REPL_VERSION];
    put_u32(&mut out, page_size);
    let bytes = client_addr.as_bytes();
    let len = u16::try_from(bytes.len()).unwrap_or(0);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&bytes[..usize::from(len)]);
    out
}

fn decode_hello_ack(body: &mut Cur) -> io::Result<(u8, u32, String)> {
    let version = body.u8()?;
    let page_size = body.u32()?;
    let len = usize::from(u16::from_be_bytes(body.take(2)?.try_into().expect("2")));
    let addr = String::from_utf8(body.take(len)?.to_vec())
        .map_err(|_| bad("primary address is not UTF-8"))?;
    Ok((version, page_size, addr))
}

fn record_kind(r: &LogRecord) -> u8 {
    match r {
        LogRecord::PageImage { .. } => 1,
        LogRecord::Alloc { .. } => 2,
        LogRecord::Free { .. } => 3,
        LogRecord::Commit => 4,
        LogRecord::Checkpoint => 5,
    }
}

fn encode_segment(records: &[StampedRecord], next_lsn: u64) -> Vec<u8> {
    let mut out = vec![FRAME_SEGMENT];
    put_u64(&mut out, next_lsn);
    put_u32(
        &mut out,
        u32::try_from(records.len()).expect("segment chunking bounds count"),
    );
    for r in records {
        put_u64(&mut out, r.lsn);
        out.push(record_kind(&r.record));
        let body_at = out.len();
        put_u32(&mut out, 0); // patched below
        match &r.record {
            LogRecord::PageImage { page, data } => {
                put_u32(&mut out, page.0);
                out.extend_from_slice(data);
            }
            LogRecord::Alloc { page } | LogRecord::Free { page } => put_u32(&mut out, page.0),
            LogRecord::Commit | LogRecord::Checkpoint => {}
        }
        let body_len = u32::try_from(out.len() - body_at - 4).expect("record fits a frame");
        out[body_at..body_at + 4].copy_from_slice(&body_len.to_be_bytes());
    }
    out
}

fn decode_segment(body: &mut Cur) -> io::Result<(u64, Vec<StampedRecord>)> {
    let next_lsn = body.u64()?;
    let count = body.u32()?;
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let lsn = body.u64()?;
        let kind = body.u8()?;
        let len = body.u32()? as usize;
        let rec = body.take(len)?;
        let mut c = Cur::new(rec);
        let record = match kind {
            1 => LogRecord::PageImage {
                page: PageId(c.u32()?),
                data: rec[4..].to_vec().into_boxed_slice(),
            },
            2 => LogRecord::Alloc {
                page: PageId(c.u32()?),
            },
            3 => LogRecord::Free {
                page: PageId(c.u32()?),
            },
            4 => LogRecord::Commit,
            5 => LogRecord::Checkpoint,
            _ => return Err(bad("unknown replication record kind")),
        };
        records.push(StampedRecord { lsn, record });
    }
    Ok((next_lsn, records))
}

fn encode_heartbeat(next_lsn: u64) -> Vec<u8> {
    let mut out = vec![FRAME_HEARTBEAT];
    put_u64(&mut out, next_lsn);
    out
}

fn encode_ack(applied: u64) -> Vec<u8> {
    let mut out = vec![FRAME_ACK];
    put_u64(&mut out, applied);
    out
}

fn encode_image_start(img: &ReplImage) -> Vec<u8> {
    let mut out = vec![FRAME_IMAGE_START];
    put_u64(&mut out, img.applied_lsn);
    put_u32(
        &mut out,
        u32::try_from(img.page_size).expect("page size fits u32"),
    );
    put_u32(
        &mut out,
        u32::try_from(img.pages.len()).expect("page count fits u32"),
    );
    out
}

fn encode_image_page(page: PageId, data: &[u8]) -> Vec<u8> {
    let mut out = vec![FRAME_IMAGE_PAGE];
    put_u32(&mut out, page.0);
    out.extend_from_slice(data);
    out
}

// ---------------------------------------------------------------------------
// Shared follower state (lives in `Shared`, read by the serving path)
// ---------------------------------------------------------------------------

/// Follower-side replication state the serving path reads: is the
/// primary link up, how far behind are we, and where should writes be
/// redirected.
pub(crate) struct ReplState {
    /// The primary's *client* address, advertised in `NotPrimary`
    /// responses. Seeded from configuration; refreshed from every
    /// handshake ack (so it tracks a primary restarted elsewhere).
    pub(crate) primary: Mutex<String>,
    /// True while the primary link is streaming.
    pub(crate) connected: AtomicBool,
    /// Last primary LSN applied locally.
    pub(crate) applied_lsn: AtomicU64,
    /// The primary's next LSN as of the last frame received.
    pub(crate) primary_next_lsn: AtomicU64,
    /// When the last frame (segment, heartbeat, or image) arrived.
    pub(crate) last_contact: Mutex<Option<Instant>>,
}

impl ReplState {
    pub(crate) fn new(primary: String) -> ReplState {
        ReplState {
            primary: Mutex::new(primary),
            connected: AtomicBool::new(false),
            applied_lsn: AtomicU64::new(0),
            primary_next_lsn: AtomicU64::new(0),
            last_contact: Mutex::new(None),
        }
    }
}

/// Folds the follower's replication state into gauges:
/// `serve.repl_connected`, `serve.repl_lag_lsn` (committed LSNs known
/// but not yet applied) and `serve.repl_lag_ms` (silence on the primary
/// link; -1 before first contact).
pub(crate) fn fold_repl_gauges(m: &MetricsRegistry, repl: &ReplState) {
    let applied = repl.applied_lsn.load(Ordering::Acquire);
    let next = repl.primary_next_lsn.load(Ordering::Acquire);
    #[allow(clippy::cast_precision_loss)]
    m.set_gauge(
        "serve.repl_lag_lsn",
        next.saturating_sub(1).saturating_sub(applied) as f64,
    );
    let lag_ms = repl
        .last_contact
        .lock()
        .map(|t| t.elapsed().as_secs_f64() * 1000.0)
        .unwrap_or(-1.0);
    m.set_gauge("serve.repl_lag_ms", lag_ms);
    let connected = if repl.connected.load(Ordering::Acquire) {
        1.0
    } else {
        0.0
    };
    m.set_gauge("serve.repl_connected", connected);
}

// ---------------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------------

/// The primary's replication listener and its per-subscriber streamer
/// threads. Joined by `ServerHandle::shutdown`.
pub(crate) struct ReplListener {
    pub(crate) local_addr: SocketAddr,
    pub(crate) acceptor: Option<JoinHandle<()>>,
    pub(crate) streamers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds the replication port and starts accepting subscribers.
/// `client_addr` is the address advertised to followers for write
/// redirects (the primary's *client* listener).
pub(crate) fn start_listener<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    addr: &str,
    client_addr: String,
) -> io::Result<ReplListener> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let streamers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(shared);
        let streamers = Arc::clone(&streamers);
        std::thread::Builder::new()
            .name("ccam-repl-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let client_addr = client_addr.clone();
                    let handle = std::thread::Builder::new()
                        .name("ccam-repl-streamer".to_string())
                        .spawn(move || streamer_loop(&shared, stream, &client_addr));
                    if let Ok(h) = handle {
                        streamers.lock().push(h);
                    }
                }
            })?
    };
    Ok(ReplListener {
        local_addr,
        acceptor: Some(acceptor),
        streamers,
    })
}

/// Drains any complete Ack frames without blocking the streamer: reads
/// run against a 1 ms timeout and partial frames stay buffered across
/// polls, so a timeout mid-frame never desynchronizes the stream.
struct AckReader {
    sock: TcpStream,
    buf: Vec<u8>,
}

impl AckReader {
    /// Returns the highest acked LSN seen this poll, or `Err` when the
    /// subscriber hung up.
    fn poll(&mut self) -> io::Result<Option<u64>> {
        let mut chunk = [0u8; 256];
        loop {
            match self.sock.read(&mut chunk) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let mut best = None;
        while self.buf.len() >= 4 {
            let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4")) as usize;
            if self.buf.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
            let mut c = Cur::new(&frame);
            if c.u8()? == FRAME_ACK {
                let lsn = c.u64()?;
                best = Some(best.map_or(lsn, |b: u64| b.max(lsn)));
            }
        }
        Ok(best)
    }
}

/// One subscriber: handshake, then stream segments / heartbeats /
/// image handoffs until the socket dies or the server shuts down.
fn streamer_loop<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    stream: TcpStream,
    client_addr: &str,
) {
    let m = &shared.metrics;
    if run_streamer(shared, stream, client_addr).is_err() {
        m.inc_by("serve.repl.subscriber_errors", 1);
    }
}

fn run_streamer<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    stream: TcpStream,
    client_addr: &str,
) -> io::Result<()> {
    let m = &shared.metrics;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_read_timeout(Some(Duration::from_millis(1)))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    // The handshake is the only blocking read on this side; give it a
    // real timeout so a silent connector cannot pin the thread.
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let hello = {
        let mut reader = BufReader::new(stream.try_clone()?);
        let Some(frame) = read_frame(&mut reader)? else {
            return Ok(()); // connector went away before the handshake
        };
        frame
    };
    stream.set_read_timeout(Some(Duration::from_millis(1)))?;
    let mut c = Cur::new(&hello);
    if c.u8()? != FRAME_HELLO {
        return Err(bad("expected Hello"));
    }
    let (version, last_applied, follower_page_size) = decode_hello(&mut c)?;
    let page_size = shared
        .db
        .with_writer(|am| am.file().pool().page_size())
        .map_err(storage_io)?;
    let page_size_u32 = u32::try_from(page_size).map_err(|_| bad("page size"))?;
    if version != REPL_VERSION || follower_page_size != page_size_u32 {
        m.inc_by("serve.repl.handshake_rejected", 1);
        return Err(bad("incompatible replication handshake"));
    }
    write_frame(&mut writer, &encode_hello_ack(page_size_u32, client_addr))?;
    writer.flush()?;

    // Pin the WAL tail for this subscriber: checkpoints will not
    // truncate past what it still needs (up to the hard cap).
    let retention = shared
        .db
        .with_writer(|am| am.file().pool().with_store(|s| s.wal_retention()))
        .map_err(storage_io)?;
    let slot = retention.as_ref().map(|r| r.subscribe(last_applied));
    if let Some(r) = &retention {
        #[allow(clippy::cast_precision_loss)]
        m.set_gauge("serve.repl.subscribers", r.subscribers() as f64);
    }
    m.inc_by("serve.repl.subscribed", 1);

    let mut acks = AckReader {
        sock: stream,
        buf: Vec::new(),
    };
    let mut sent_through = last_applied;
    let mut last_send = Instant::now();
    let result = loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break Ok(());
        }
        // Cheap peek first: only walk the log when LSNs advanced.
        let info = match shared
            .db
            .with_writer(|am| am.file().pool().with_store(|s| s.wal_info()))
        {
            Ok(i) => i,
            Err(_) => {
                // Cell poisoned mid-recovery: hold position, retry.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        let Some(info) = info else {
            break Err(bad("store has no WAL; cannot replicate"));
        };
        if info.next_lsn > sent_through + 1 || sent_through + 1 < info.tail_start_lsn {
            let feed = shared
                .db
                .with_writer(|am| {
                    am.file()
                        .pool()
                        .with_store_mut(|s| s.repl_feed(sent_through))
                })
                .map_err(storage_io)?
                .map_err(storage_io)?;
            match feed {
                ReplFeed::Records { records, next_lsn } => {
                    for chunk in chunk_records(&records) {
                        let last = chunk.last().map(|r| r.lsn).unwrap_or(sent_through);
                        write_frame(&mut writer, &encode_segment(chunk, next_lsn))?;
                        sent_through = sent_through.max(last);
                    }
                    writer.flush()?;
                    sent_through = sent_through.max(next_lsn.saturating_sub(1));
                    m.inc_by("serve.repl.segments_sent", 1);
                    last_send = Instant::now();
                }
                ReplFeed::NotRetained { .. } => {
                    m.inc_by("serve.repl.not_retained", 1);
                    let img = wait_for_image(shared)?;
                    write_frame(&mut writer, &encode_image_start(&img))?;
                    for (page, data) in &img.pages {
                        write_frame(&mut writer, &encode_image_page(*page, data))?;
                    }
                    write_frame(&mut writer, &[FRAME_IMAGE_END])?;
                    writer.flush()?;
                    sent_through = img.applied_lsn;
                    m.inc_by("serve.repl.image_handoffs_sent", 1);
                    last_send = Instant::now();
                }
                ReplFeed::Unsupported => {
                    break Err(bad("store does not support replication"));
                }
            }
        } else if last_send.elapsed() >= HEARTBEAT_INTERVAL {
            write_frame(&mut writer, &encode_heartbeat(info.next_lsn))?;
            writer.flush()?;
            m.inc_by("serve.repl.heartbeats_sent", 1);
            last_send = Instant::now();
        }
        match acks.poll() {
            Ok(Some(acked)) => {
                if let Some(s) = &slot {
                    s.advance(acked);
                }
            }
            Ok(None) => {}
            Err(e) => break Err(e),
        }
        std::thread::sleep(POLL_INTERVAL);
    };
    drop(slot); // release the retention floor
    if let Some(r) = &retention {
        #[allow(clippy::cast_precision_loss)]
        m.set_gauge("serve.repl.subscribers", r.subscribers() as f64);
    }
    result
}

/// Splits a record run into sub-`SEGMENT_BYTE_BUDGET` chunks, always at
/// record boundaries (the follower holds back unterminated batches, so
/// splitting mid-batch is safe).
fn chunk_records(records: &[StampedRecord]) -> Vec<&[StampedRecord]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut bytes = 0usize;
    for (i, r) in records.iter().enumerate() {
        let len = match &r.record {
            LogRecord::PageImage { data, .. } => data.len() + 32,
            _ => 32,
        };
        if bytes + len > SEGMENT_BYTE_BUDGET && i > start {
            chunks.push(&records[start..i]);
            start = i;
            bytes = 0;
        }
        bytes += len;
    }
    if start < records.len() || records.is_empty() {
        chunks.push(&records[start..]);
    }
    chunks
}

/// Polls for a checkpoint-image handoff: the store refuses mid-batch
/// (`Busy`), so retry across commit boundaries.
fn wait_for_image<S: PageStore + 'static>(shared: &Arc<Shared<S>>) -> io::Result<ReplImage> {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Err(io::ErrorKind::Interrupted.into());
        }
        let state = shared
            .db
            .with_writer(|am| am.file().pool().with_store_mut(|s| s.repl_image()))
            .map_err(storage_io)?
            .map_err(storage_io)?;
        match state {
            ReplImageState::Ready(img) => return Ok(img),
            ReplImageState::Busy => std::thread::sleep(Duration::from_millis(5)),
            ReplImageState::Unsupported => return Err(bad("store does not support image handoff")),
        }
    }
}

fn storage_io(e: StorageError) -> io::Error {
    io::Error::other(e.to_string())
}

// ---------------------------------------------------------------------------
// Follower side
// ---------------------------------------------------------------------------

/// The follower's replication client thread: connect → handshake →
/// apply frames → reconnect on any failure, forever (until shutdown).
pub(crate) fn follower_loop<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    repl: &Arc<ReplState>,
    primary_repl_addr: &str,
    seed: u64,
    lsn_path: Option<&PathBuf>,
) {
    // Seed the applied position from the sidecar hint. Losing it is
    // safe: LSN 0 forces a full catch-up (or image handoff), and a
    // stale value only re-applies batches the apply path skips.
    if let Some(p) = lsn_path {
        if let Ok(s) = std::fs::read_to_string(p) {
            if let Ok(lsn) = s.trim().parse::<u64>() {
                repl.applied_lsn.store(lsn, Ordering::Release);
            }
        }
    }
    let mut backoff = Backoff::new(
        u32::MAX,
        Duration::from_millis(20),
        Duration::from_millis(300),
        seed,
    );
    let mut attempt = 0u32;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match follower_session(shared, repl, primary_repl_addr, lsn_path) {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                repl.connected.store(false, Ordering::Release);
                shared.metrics.set_gauge("serve.repl_connected", 0.0);
                shared.metrics.inc_by("serve.repl.disconnects", 1);
                std::thread::sleep(backoff.delay(attempt.min(8)));
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

/// One connected session; returns `Ok` only on clean shutdown.
fn follower_session<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    repl: &Arc<ReplState>,
    primary_repl_addr: &str,
    lsn_path: Option<&PathBuf>,
) -> io::Result<()> {
    let m = &shared.metrics;
    let stream = TcpStream::connect(primary_repl_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(FOLLOWER_READ_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let page_size = shared
        .db
        .with_writer(|am| am.file().pool().page_size())
        .map_err(storage_io)?;
    let applied0 = repl.applied_lsn.load(Ordering::Acquire);
    write_frame(
        &mut writer,
        &encode_hello(
            applied0,
            u32::try_from(page_size).map_err(|_| bad("page size"))?,
        ),
    )?;
    writer.flush()?;
    let Some(ack) = read_frame(&mut reader)? else {
        return Err(io::ErrorKind::UnexpectedEof.into());
    };
    let mut c = Cur::new(&ack);
    if c.u8()? != FRAME_HELLO_ACK {
        return Err(bad("expected HelloAck"));
    }
    let (version, primary_page_size, primary_client) = decode_hello_ack(&mut c)?;
    if version != REPL_VERSION || primary_page_size as usize != page_size {
        return Err(bad("incompatible primary"));
    }
    if !primary_client.is_empty() {
        *repl.primary.lock() = primary_client;
    }
    repl.connected.store(true, Ordering::Release);
    m.set_gauge("serve.repl_connected", 1.0);
    m.inc_by("serve.repl.connects", 1);

    let mut image: Option<(ReplImage, u32)> = None; // (partial image, pages expected)
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(io::ErrorKind::UnexpectedEof.into()),
            // Timeouts count as death: heartbeats should have arrived.
            Err(e) => return Err(e),
        };
        *repl.last_contact.lock() = Some(Instant::now());
        let mut c = Cur::new(&frame);
        match c.u8()? {
            FRAME_SEGMENT => {
                let (next_lsn, records) = decode_segment(&mut c)?;
                let applied = repl.applied_lsn.load(Ordering::Acquire);
                let apply = apply_records(shared, &records, applied)?;
                if apply.applied_lsn > applied {
                    repl.applied_lsn.store(apply.applied_lsn, Ordering::Release);
                    persist_lsn(lsn_path, apply.applied_lsn);
                }
                repl.primary_next_lsn.store(next_lsn, Ordering::Release);
                m.inc_by("serve.repl.segments", 1);
                m.inc_by("serve.repl.batches_applied", apply.batches);
                m.inc_by("serve.repl.pages_applied", apply.pages);
                write_frame(
                    &mut writer,
                    &encode_ack(repl.applied_lsn.load(Ordering::Acquire)),
                )?;
                writer.flush()?;
            }
            FRAME_HEARTBEAT => {
                let next_lsn = c.u64()?;
                repl.primary_next_lsn.store(next_lsn, Ordering::Release);
                write_frame(
                    &mut writer,
                    &encode_ack(repl.applied_lsn.load(Ordering::Acquire)),
                )?;
                writer.flush()?;
            }
            FRAME_IMAGE_START => {
                let applied_lsn = c.u64()?;
                let img_page_size = c.u32()? as usize;
                let count = c.u32()?;
                if img_page_size != page_size {
                    return Err(bad("image page size mismatch"));
                }
                image = Some((
                    ReplImage {
                        applied_lsn,
                        page_size,
                        pages: Vec::with_capacity(count as usize),
                    },
                    count,
                ));
            }
            FRAME_IMAGE_PAGE => {
                let Some((img, _)) = image.as_mut() else {
                    return Err(bad("ImagePage outside an image handoff"));
                };
                let page = PageId(c.u32()?);
                let data = c.take(page_size)?.to_vec();
                img.pages.push((page, data));
            }
            FRAME_IMAGE_END => {
                let Some((img, expect)) = image.take() else {
                    return Err(bad("ImageEnd outside an image handoff"));
                };
                if img.pages.len() != expect as usize {
                    return Err(bad("image handoff truncated"));
                }
                apply_image(shared, &img)?;
                repl.applied_lsn.store(img.applied_lsn, Ordering::Release);
                repl.primary_next_lsn
                    .store(img.applied_lsn + 1, Ordering::Release);
                persist_lsn(lsn_path, img.applied_lsn);
                m.inc_by("serve.repl.image_handoffs", 1);
                write_frame(&mut writer, &encode_ack(img.applied_lsn))?;
                writer.flush()?;
            }
            _ => return Err(bad("unknown replication frame")),
        }
    }
}

/// Applies one shipped segment inside the epoch writer and publishes
/// the result, so follower reads stay snapshot-consistent: a batch is
/// either fully visible or not at all.
fn apply_records<S: PageStore + 'static>(
    shared: &Arc<Shared<S>>,
    records: &[StampedRecord],
    applied: u64,
) -> io::Result<ccam_storage::SegmentApply> {
    let mut w = shared.db.write().map_err(storage_io)?;
    match w.apply_replicated(records, applied) {
        Ok(apply) => {
            if apply.batches > 0 {
                w.commit().map_err(storage_io)?;
            }
            Ok(apply)
        }
        Err(e) => {
            let _ = w.restore_committed();
            Err(storage_io(e))
        }
    }
}

fn apply_image<S: PageStore + 'static>(shared: &Arc<Shared<S>>, img: &ReplImage) -> io::Result<()> {
    let mut w = shared.db.write().map_err(storage_io)?;
    match w.apply_replicated_image(&img.pages) {
        Ok(_) => {
            w.commit().map_err(storage_io)?;
            Ok(())
        }
        Err(e) => {
            let _ = w.restore_committed();
            Err(storage_io(e))
        }
    }
}

/// Best-effort persistence of the applied-LSN hint; loss or staleness
/// is recovered by idempotent re-apply or image handoff.
fn persist_lsn(path: Option<&PathBuf>, lsn: u64) {
    if let Some(p) = path {
        let _ = std::fs::write(p, format!("{lsn}\n"));
    }
}

/// Wakes a replication acceptor blocked in `accept()` so it observes
/// the shutdown flag.
pub(crate) fn poke(addr: SocketAddr) {
    if let Ok(s) = TcpStream::connect(addr) {
        let _ = s.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_frames_round_trip() {
        let records = vec![
            StampedRecord {
                lsn: 7,
                record: LogRecord::Alloc { page: PageId(3) },
            },
            StampedRecord {
                lsn: 8,
                record: LogRecord::PageImage {
                    page: PageId(3),
                    data: vec![0xAB; 64].into_boxed_slice(),
                },
            },
            StampedRecord {
                lsn: 9,
                record: LogRecord::Free { page: PageId(1) },
            },
            StampedRecord {
                lsn: 10,
                record: LogRecord::Commit,
            },
            StampedRecord {
                lsn: 11,
                record: LogRecord::Checkpoint,
            },
        ];
        let frame = encode_segment(&records, 12);
        let mut c = Cur::new(&frame);
        assert_eq!(c.u8().unwrap(), FRAME_SEGMENT);
        let (next_lsn, decoded) = decode_segment(&mut c).unwrap();
        assert_eq!(next_lsn, 12);
        assert_eq!(decoded, records);
    }

    #[test]
    fn hello_and_ack_round_trip() {
        let hello = encode_hello(41, 4096);
        let mut c = Cur::new(&hello);
        assert_eq!(c.u8().unwrap(), FRAME_HELLO);
        assert_eq!(decode_hello(&mut c).unwrap(), (REPL_VERSION, 41, 4096));

        let ack = encode_hello_ack(4096, "127.0.0.1:9999");
        let mut c = Cur::new(&ack);
        assert_eq!(c.u8().unwrap(), FRAME_HELLO_ACK);
        assert_eq!(
            decode_hello_ack(&mut c).unwrap(),
            (REPL_VERSION, 4096, "127.0.0.1:9999".to_string())
        );
    }

    #[test]
    fn chunking_splits_on_byte_budget_at_record_boundaries() {
        let page = vec![0u8; SEGMENT_BYTE_BUDGET / 2].into_boxed_slice();
        let records: Vec<StampedRecord> = (0..5)
            .map(|i| StampedRecord {
                lsn: i,
                record: LogRecord::PageImage {
                    page: PageId(u32::try_from(i).unwrap()),
                    data: page.clone(),
                },
            })
            .collect();
        let chunks = chunk_records(&records);
        assert!(chunks.len() >= 3, "got {} chunks", chunks.len());
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, records.len());
        // Order is preserved across chunks.
        let flat: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.iter().map(|r| r.lsn))
            .collect();
        assert_eq!(flat, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let frame = encode_segment(
            &[StampedRecord {
                lsn: 3,
                record: LogRecord::Commit,
            }],
            4,
        );
        for cut in 1..frame.len() {
            let mut c = Cur::new(&frame[1..cut]);
            assert!(decode_segment(&mut c).is_err() || cut == frame.len());
        }
    }
}
