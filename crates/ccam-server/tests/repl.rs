//! End-to-end replication tests over real loopback sockets: a primary
//! streams committed WAL segments to a follower, the follower serves
//! reads from replayed state and redirects writes, and the client
//! layer rides through restarts and fails reads over to the replica.

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccam_core::epoch::EpochCell;
use ccam_core::{AccessMethod, Ccam, CcamBuilder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::Network;
use ccam_server::client::{Backoff, Client, MultiClient};
use ccam_server::protocol::{OpCode, Request, Response, Status};
use ccam_server::{ReplRole, Server, ServerConfig, ServerHandle};
use ccam_storage::{MemPageStore, PageStore, WalStore};

type WalMem = WalStore<MemPageStore>;

fn test_network() -> Network {
    road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 5,
    })
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ccam-repl-{}-{}", std::process::id(), name))
}

/// Layout-independent digest of every record reachable in a view — two
/// stores digest equal iff they hold the same logical node set.
fn digest<S: PageStore>(am: &Ccam<S>) -> u64 {
    let mut nodes = std::collections::BTreeMap::new();
    for (_page, records) in am.file().scan_uncounted().expect("scan view") {
        for node in records {
            nodes.insert(node.id.0, node);
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (id, node) in &nodes {
        id.hash(&mut h);
        node.x.hash(&mut h);
        node.y.hash(&mut h);
        node.payload.hash(&mut h);
        for e in &node.successors {
            e.to.0.hash(&mut h);
            e.cost.hash(&mut h);
        }
        for p in &node.predecessors {
            p.0.hash(&mut h);
        }
    }
    h.finish()
}

/// A WAL-backed primary loaded with the test network, with replication
/// enabled on an ephemeral port.
fn start_primary(tag: &str, net: &Network) -> ServerHandle<WalMem> {
    let wal = WalStore::create(
        MemPageStore::new(1024).unwrap(),
        &temp_path(&format!("{tag}-p.wal")),
    )
    .unwrap();
    let mut am = CcamBuilder::new(1024).build_static_on(wal, net).unwrap();
    am.file_mut().set_auto_commit(true);
    am.file()
        .pool()
        .with_store_mut(|s| s.set_max_wal_bytes(Some(64 << 20)));
    am.enable_snapshots().unwrap();
    let db = Arc::new(EpochCell::new(am).unwrap());
    Server::start(
        db,
        ServerConfig {
            role: ReplRole::Primary {
                repl_addr: Some("127.0.0.1:0".to_string()),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// An *empty* WAL-backed follower subscribed to `primary_repl` — it
/// must catch up entirely over the wire.
fn start_follower(tag: &str, primary_repl: &str) -> ServerHandle<WalMem> {
    let wal = WalStore::create(
        MemPageStore::new(1024).unwrap(),
        &temp_path(&format!("{tag}-f.wal")),
    )
    .unwrap();
    let mut am = CcamBuilder::new(1024)
        .build_static_on(wal, &Network::new())
        .unwrap();
    am.file_mut().set_auto_commit(true);
    am.enable_snapshots().unwrap();
    let db = Arc::new(EpochCell::new(am).unwrap());
    Server::start(
        db,
        ServerConfig {
            role: ReplRole::Replica {
                primary: primary_repl.to_string(),
                seed: 7,
                lsn_path: None,
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn primary_next_lsn(handle: &ServerHandle<WalMem>) -> u64 {
    handle
        .db()
        .with_writer(|am| am.file().pool().with_store(|s| s.wal_info()))
        .unwrap()
        .expect("primary has a WAL")
        .next_lsn
}

/// Polls until the follower has applied everything the primary has
/// committed (bounded); panics on timeout.
fn await_catch_up(primary: &ServerHandle<WalMem>, follower: &ServerHandle<WalMem>, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let target = primary_next_lsn(primary).saturating_sub(1);
        if follower.applied_lsn() >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: follower stuck at {} of {}",
            follower.applied_lsn(),
            target
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn digests_match(primary: &ServerHandle<WalMem>, follower: &ServerHandle<WalMem>) -> bool {
    let p = primary.db().read().unwrap();
    let f = follower.db().read().unwrap();
    digest(&p) == digest(&f)
}

#[test]
fn follower_catches_up_serves_reads_and_redirects_writes() {
    let net = test_network();
    let primary = start_primary("catchup", &net);
    let repl_addr = primary.repl_addr().unwrap().to_string();
    let follower = start_follower("catchup", &repl_addr);

    // Cold catch-up: the follower starts empty and must replay the
    // whole build (or take an image handoff) before digests agree.
    await_catch_up(&primary, &follower, "cold catch-up");
    assert!(
        digests_match(&primary, &follower),
        "divergence after cold catch-up"
    );

    // Writes through the primary replicate; the follower read answers
    // the *new* payload from its own replayed state.
    let ids = net.node_ids();
    let mut to_primary = Client::connect(primary.local_addr()).unwrap();
    for (i, &id) in ids.iter().take(5).enumerate() {
        let resps = to_primary
            .call(&[Request::Upsert {
                id,
                payload: vec![0xB0 + i as u8; 9],
            }])
            .unwrap();
        assert!(
            matches!(resps[0], Response::Upserted { .. }),
            "upsert {i}: {:?}",
            resps[0]
        );
    }
    await_catch_up(&primary, &follower, "post-write catch-up");
    assert!(
        digests_match(&primary, &follower),
        "divergence after writes"
    );
    let mut to_follower = Client::connect(follower.local_addr()).unwrap();
    let resps = to_follower.call(&[Request::Find(ids[0])]).unwrap();
    match &resps[0] {
        Response::Record(node) => assert_eq!(node.payload, vec![0xB0; 9]),
        other => panic!("follower read: {other:?}"),
    }

    // Writes against the follower answer NotPrimary carrying the
    // primary's client address (learned in the handshake).
    let resps = to_follower
        .call(&[Request::Upsert {
            id: ids[0],
            payload: vec![1],
        }])
        .unwrap();
    match &resps[0] {
        Response::NotPrimary { primary: addr, op } => {
            assert_eq!(*op, OpCode::Upsert);
            assert_eq!(*addr, primary.local_addr().to_string());
        }
        other => panic!("follower write: {other:?}"),
    }

    // Lag metrics are published.
    let json = follower.metrics_json();
    assert!(
        json.contains("serve.repl_lag_lsn"),
        "missing lag gauge: {json}"
    );
    assert!(json.contains("serve.repl_connected"), "missing link gauge");

    follower.shutdown().unwrap();
    primary.shutdown().unwrap();
}

#[test]
fn follower_keeps_serving_stale_after_primary_death() {
    let net = test_network();
    let primary = start_primary("staleness", &net);
    let repl_addr = primary.repl_addr().unwrap().to_string();
    let follower = start_follower("staleness", &repl_addr);
    await_catch_up(&primary, &follower, "initial catch-up");

    let expected = {
        let p = primary.db().read().unwrap();
        digest(&p)
    };
    primary.shutdown().unwrap();

    // The link drops; the follower flags itself disconnected but keeps
    // answering reads from the last applied state.
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.repl_connected() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!follower.repl_connected(), "follower never noticed death");
    let mut client = Client::connect(follower.local_addr()).unwrap();
    let resps = client.call(&[Request::Find(net.node_ids()[0])]).unwrap();
    assert!(
        matches!(resps[0], Response::Record(_)),
        "stale read failed: {:?}",
        resps[0]
    );
    {
        let f = follower.db().read().unwrap();
        assert_eq!(digest(&f), expected, "follower state drifted after death");
    }
    assert!(
        follower.metrics().counter("serve.stale_reads") > 0,
        "stale reads were not counted"
    );
    follower.shutdown().unwrap();
}

/// Satellite: `call_with_retry` must ride through a server kill +
/// restart on the same address — connect-refused/reset are retryable
/// transport errors, not terminal failures.
#[test]
fn client_retries_reconnect_through_server_restart() {
    let net = test_network();
    let build = |addr: String| {
        // Deterministic: the same seed rebuilds the same network.
        let net = test_network();
        let am = CcamBuilder::new(1024).build_static(&net).unwrap();
        let db = Arc::new(EpochCell::new(am).unwrap());
        Server::start(
            db,
            ServerConfig {
                addr,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    };
    let first = build("127.0.0.1:0".to_string());
    let addr = first.local_addr().to_string();
    let a = net.node_ids()[0];

    let mut client = Client::connect(&addr).unwrap();
    let resps = client.call(&[Request::Find(a)]).unwrap();
    assert!(matches!(resps[0], Response::Record(_)));

    // Kill the server; restart it on the same address shortly after,
    // while the client is already retrying.
    first.shutdown().unwrap();
    let addr2 = addr.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        build(addr2)
    });
    let mut backoff = Backoff::new(30, Duration::from_millis(20), Duration::from_millis(100), 3);
    let resps = client
        .call_with_retry(&[Request::Find(a)], &mut backoff)
        .expect("retry through restart");
    assert!(
        matches!(resps[0], Response::Record(_)),
        "post-restart: {:?}",
        resps[0]
    );
    restarter.join().unwrap().shutdown().unwrap();
}

/// `MultiClient` fails reads over to the follower while the primary is
/// down, and follows `NotPrimary` redirects back for writes.
#[test]
fn multi_client_fails_over_reads_and_follows_redirects() {
    let net = test_network();
    let primary = start_primary("failover", &net);
    let repl_addr = primary.repl_addr().unwrap().to_string();
    let follower = start_follower("failover", &repl_addr);
    await_catch_up(&primary, &follower, "failover catch-up");
    let ids = net.node_ids();

    let mut mc = MultiClient::new(vec![
        primary.local_addr().to_string(),
        follower.local_addr().to_string(),
    ]);
    let mut backoff = Backoff::new(10, Duration::from_millis(10), Duration::from_millis(50), 11);

    // Writes sent while connected to the follower redirect to the
    // primary and succeed.
    mc.set_endpoints(vec![
        follower.local_addr().to_string(),
        primary.local_addr().to_string(),
    ]);
    let resps = mc
        .call_with_retry(
            &[Request::Upsert {
                id: ids[1],
                payload: vec![0xEE; 4],
            }],
            &mut backoff,
        )
        .unwrap();
    assert!(
        matches!(resps[0], Response::Upserted { .. }),
        "redirected write: {:?}",
        resps[0]
    );
    assert_eq!(
        mc.connected_to().unwrap(),
        primary.local_addr().to_string(),
        "client did not follow the redirect"
    );

    // Primary dies: reads fail over to the follower.
    primary.shutdown().unwrap();
    let resps = mc
        .call_with_retry(&[Request::Find(ids[0])], &mut backoff)
        .expect("failover read");
    assert!(
        matches!(
            resps[0],
            Response::Record(_) | Response::Error(Status::NotFound, _)
        ),
        "failover read: {:?}",
        resps[0]
    );
    assert_eq!(
        mc.connected_to().unwrap(),
        follower.local_addr().to_string(),
        "read did not land on the follower"
    );
    follower.shutdown().unwrap();
}
