//! Fault-tolerance tests over a real loopback socket: slowloris
//! reaping, mid-frame disconnects, request deadlines, worker panic
//! isolation, and degraded reads around corrupted pages.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccam_core::epoch::EpochCell;
use ccam_core::{AccessMethod, CcamBuilder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::Network;
use ccam_server::client::Client;
use ccam_server::protocol::{OpCode, Request, Response, Status};
use ccam_server::{Server, ServerConfig, ServerHandle};
use ccam_storage::{CorruptStore, MemPageStore, PageId};

fn test_net() -> Network {
    road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 5,
    })
}

fn start_server(config: ServerConfig) -> (ServerHandle<MemPageStore>, Network) {
    let net = test_net();
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let db = Arc::new(EpochCell::new(am).unwrap());
    (Server::start(db, config).unwrap(), net)
}

/// Polls `cond` until true or the timeout elapses; returns success.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A slowloris peer — a connection that writes half a frame and then
/// stalls — must be reaped by the idle timeout: its reader exits, the
/// socket is severed (the peer observes EOF/reset), and the connection
/// slot is reclaimed. Meanwhile a well-behaved client on the same
/// server keeps getting answers; the staller pins nothing.
#[test]
fn stalled_half_frame_is_reaped_without_blocking_others() {
    let (handle, net) = start_server(ServerConfig {
        idle_timeout_ms: 200,
        ..ServerConfig::default()
    });
    let a = net.node_ids()[0];

    // The staller: claim a 64-byte frame, deliver only 8 bytes.
    let mut staller = TcpStream::connect(handle.local_addr()).unwrap();
    staller.write_all(&64u32.to_le_bytes()).unwrap();
    staller.write_all(&[0u8; 8]).unwrap();
    staller.flush().unwrap();

    // A healthy client is served while the staller sits half-written.
    let mut good = Client::connect(handle.local_addr()).unwrap();
    for _ in 0..5 {
        let resps = good.call(&[Request::Find(a)]).unwrap();
        assert!(matches!(resps[0], Response::Record(_)));
        std::thread::sleep(Duration::from_millis(20));
    }

    // The reap severs the staller's socket: its read unblocks with EOF
    // or a reset well within a few idle-timeout periods.
    staller
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut sink = [0u8; 16];
    match staller.read(&mut sink) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("staller unexpectedly received {n} bytes"),
    }
    assert!(handle.metrics().counter("serve.idle_reaped") >= 1);

    // The staller's connection slot is reclaimed; only `good` remains.
    drop(good);
    assert!(
        wait_for(Duration::from_secs(10), || handle.active_connections() == 0),
        "reaped/closed connections leaked"
    );
    handle.shutdown().unwrap();
}

/// A client that vanishes mid-conversation — pipelined request frames,
/// responses discarded unread, socket dropped (close with unread data
/// sends a TCP reset) — must not wedge a worker or the server: writes
/// to the dead peer fail and sever the connection, other clients keep
/// working, and shutdown stays clean.
#[test]
fn mid_frame_disconnect_during_response_write_is_survived() {
    let (handle, net) = start_server(ServerConfig {
        workers: 2,
        write_timeout_ms: 500,
        ..ServerConfig::default()
    });
    let ids = net.node_ids();
    let heavy: Vec<Request> = ids.iter().map(|&id| Request::GetSuccessors(id)).collect();

    for _ in 0..4 {
        let mut rude = Client::connect(handle.local_addr()).unwrap();
        for tag in 0..8 {
            let payload = ccam_server::protocol::encode_request_batch(tag, 0, &heavy);
            rude.send_raw(&payload).unwrap();
        }
        // Give the server a moment to start answering, then vanish with
        // the responses unread.
        std::thread::sleep(Duration::from_millis(30));
        drop(rude);
    }

    let mut good = Client::connect(handle.local_addr()).unwrap();
    let resps = good.call(&heavy).unwrap();
    assert_eq!(resps.len(), heavy.len());
    drop(good);

    assert!(
        wait_for(Duration::from_secs(10), || handle.active_connections() == 0),
        "dead connections leaked"
    );
    handle.shutdown().unwrap();
}

/// A pathological `Route` under a tiny client-supplied deadline answers
/// `DeadlineExceeded` instead of holding a worker for the whole walk.
#[test]
fn pathological_route_respects_client_deadline() {
    let (handle, net) = start_server(ServerConfig::default());

    // Find a bidirectional arc and ping-pong over it: a long route of
    // real edges, so the evaluation would genuinely run to the end.
    let (a, b) = net
        .nodes()
        .find_map(|n| {
            n.successors
                .iter()
                .map(|e| e.to)
                .find(|&to| {
                    net.nodes()
                        .find(|m| m.id == to)
                        .is_some_and(|m| m.successors.iter().any(|e| e.to == n.id))
                })
                .map(|to| (n.id, to))
        })
        .expect("road map has a two-way street");
    let mut route = Vec::with_capacity(50_000);
    for i in 0..50_000 {
        route.push(if i % 2 == 0 { a } else { b });
    }

    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_deadline_ms(1);
    let resps = client.call(&[Request::Route(route.clone())]).unwrap();
    assert_eq!(
        resps[0],
        Response::Error(Status::DeadlineExceeded, OpCode::Route)
    );
    assert!(handle.metrics().counter("serve.deadline_exceeded") >= 1);

    // The same route without a deadline completes.
    client.set_deadline_ms(0);
    let resps = client.call(&[Request::Route(route)]).unwrap();
    assert!(
        matches!(resps[0], Response::RouteEval { complete: true, .. }),
        "unbounded route should evaluate fully, got {:?}",
        resps[0]
    );
    handle.shutdown().unwrap();
}

/// A request that panics inside the storage stack answers `Internal`
/// for that request only; the server counts the panic, keeps answering
/// subsequent requests on the same connection, and still shuts down
/// cleanly (no corpse discovered at join time).
///
/// The panic is injected into the *served view's* read path: the pinned
/// snapshot's buffer pool invokes the prefetch hook on every fault, so
/// an armed panicking hook plus dropped cached frames makes the next
/// storage-touching request unwind inside a worker.
#[test]
fn worker_panic_is_isolated_and_the_pool_survives() {
    let net = test_net();
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    let db = Arc::new(EpochCell::new(am).unwrap());
    let handle = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let a = net.node_ids()[0];
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Sanity: the database answers before the fault is armed.
    let resps = client.call(&[Request::Find(a)]).unwrap();
    assert!(matches!(resps[0], Response::Record(_)));

    // Arm the hook on the published view (all pinned snapshots of this
    // epoch share it) and drop cached frames so the next read faults.
    let armed = Arc::new(AtomicBool::new(false));
    let hook_armed = Arc::clone(&armed);
    let view = db.read().unwrap();
    view.file()
        .pool()
        .set_prefetcher(Some(Arc::new(move |id: PageId| {
            if hook_armed.load(Ordering::SeqCst) {
                panic!("injected storage panic reading {id:?}");
            }
            Vec::new()
        })));
    view.file().pool().clear().unwrap();
    armed.store(true, Ordering::SeqCst);
    let resps = client
        .call(&[Request::Find(a), Request::Stats, Request::Find(a)])
        .unwrap();
    assert_eq!(resps[0], Response::Error(Status::Internal, OpCode::Find));
    // The panic is contained per-request: the rest of the batch ran…
    assert!(matches!(resps[1], Response::StatsJson(_)));
    // …and the faulted page was installed before the hook unwound, so
    // the retry within the same batch already answers again.
    assert!(matches!(resps[2], Response::Record(_)));
    assert!(handle.metrics().counter("serve.worker_panics") >= 1);

    // Disarm: the same connection and worker pool keep serving.
    armed.store(false, Ordering::SeqCst);
    let resps = client.call(&[Request::Find(a)]).unwrap();
    assert!(matches!(resps[0], Response::Record(_)));
    handle.shutdown().unwrap();
}

/// A maintenance writer that panics mid-transaction poisons the cell:
/// in-flight pinned snapshots keep answering, *new* batches fail with
/// `Internal` (counted under `serve.internal_errors.poisoned`), and
/// `EpochCell::recover` restores service on the running server.
#[test]
fn poisoned_cell_fails_batches_until_recovered() {
    let (handle, net) = start_server(ServerConfig::default());
    let db = Arc::clone(handle.db());
    let a = net.node_ids()[0];
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let resps = client.call(&[Request::Find(a)]).unwrap();
    assert!(matches!(resps[0], Response::Record(_)));

    // Writer dies mid-transaction, before any commit.
    let writer_db = Arc::clone(&db);
    let r = std::thread::spawn(move || {
        let _am = writer_db.write().unwrap();
        panic!("injected maintenance panic");
    })
    .join();
    assert!(r.is_err());
    assert!(db.is_poisoned());

    // Every request of a new batch answers Internal, and the failure is
    // visible per-kind in the metrics.
    let resps = client.call(&[Request::Find(a), Request::Stats]).unwrap();
    assert_eq!(resps[0], Response::Error(Status::Internal, OpCode::Find));
    assert_eq!(resps[1], Response::Error(Status::Internal, OpCode::Stats));
    assert!(handle.metrics().counter("serve.internal_errors.poisoned") >= 2);

    // Recovery republishes the committed state on the running server.
    db.recover().unwrap();
    let resps = client.call(&[Request::Find(a)]).unwrap();
    assert!(matches!(resps[0], Response::Record(_)));
    handle.shutdown().unwrap();
}

/// Reads that hit a corrupted (checksum-failing) page degrade instead
/// of erroring: `Find` answers `Degraded` when the record may live on
/// the quarantined page, `GetSuccessors` returns the partial result it
/// could assemble, and healing the page restores exact answers.
#[test]
fn corrupted_pages_degrade_reads_and_heal() {
    let net = test_net();
    let (store, corruption) = CorruptStore::new(MemPageStore::new(1024).unwrap(), 77);
    let am = CcamBuilder::new(1024).build_static_on(store, &net).unwrap();
    let target = net.node_ids()[10];
    let page = am
        .file()
        .page_of(target)
        .unwrap()
        .expect("target node is stored");
    // A predecessor of the target on a *different* page, so its own
    // record stays readable while its successor's page is corrupt.
    let neighbor = net
        .nodes()
        .find(|n| {
            n.successors.iter().any(|e| e.to == target)
                && am.file().page_of(n.id).unwrap() != Some(page)
        })
        .map(|n| n.id);

    let db = Arc::new(EpochCell::new(am).unwrap());
    let handle = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Corrupt the page on the backing store, then republish through the
    // writer: the commit's capture re-reads the store (cached frames
    // dropped first — a dirty write-back would heal the injected
    // corruption) and the fresh view carries the page as unreadable.
    {
        let w = db.write().unwrap();
        w.file().pool().clear().unwrap();
        corruption.mark_corrupt(page);
        w.commit().unwrap();
    }

    let resps = client.call(&[Request::Find(target)]).unwrap();
    assert_eq!(resps[0], Response::Error(Status::Degraded, OpCode::Find));
    assert!(handle.metrics().counter("serve.degraded_reads") >= 1);

    if let Some(neighbor) = neighbor {
        let resps = client.call(&[Request::GetSuccessors(neighbor)]).unwrap();
        match &resps[0] {
            Response::RecordsDegraded {
                nodes,
                skipped_pages,
            } => {
                assert!(*skipped_pages >= 1, "corrupt page must be reported");
                assert!(
                    nodes.iter().all(|n| n.id != target),
                    "the unreadable record cannot appear in the partial answer"
                );
            }
            other => panic!("expected a degraded partial answer, got {other:?}"),
        }
    }

    // Heal: clear the injected corruption and republish — the next
    // capture reads the page cleanly, so the new view drops the
    // quarantine and reads are exact again on the same running server.
    corruption.clear_corrupt(page);
    {
        let w = db.write().unwrap();
        w.file().pool().clear().unwrap();
        w.commit().unwrap();
    }
    let resps = client.call(&[Request::Find(target)]).unwrap();
    match &resps[0] {
        Response::Record(n) => assert_eq!(n.id, target),
        other => panic!("healed read must be exact, got {other:?}"),
    }
    handle.shutdown().unwrap();
}
