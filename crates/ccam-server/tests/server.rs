//! End-to-end tests over a real loopback socket: batching, error
//! statuses, overload rejection, snapshot-consistent reads during
//! writer commits, and graceful shutdown draining.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ccam_core::epoch::EpochCell;
use ccam_core::{AccessMethod, Ccam, CcamBuilder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::{Network, NodeId};
use ccam_server::client::Client;
use ccam_server::protocol::{OpCode, Request, Response, Status, PROTOCOL_VERSION};
use ccam_server::{Server, ServerConfig, ServerHandle};

fn build_db() -> (Ccam, Network) {
    let net = road_map(&RoadMapConfig {
        grid_w: 10,
        grid_h: 10,
        removed_nodes: 2,
        target_segments: 150,
        target_directed: 265,
        cell: 64,
        jitter: 24,
        seed: 5,
    });
    let am = CcamBuilder::new(1024).build_static(&net).unwrap();
    (am, net)
}

fn start_server(config: ServerConfig) -> (ServerHandle<ccam_storage::MemPageStore>, Network) {
    let (am, net) = build_db();
    let db = Arc::new(EpochCell::new(am).unwrap());
    (Server::start(db, config).unwrap(), net)
}

/// A long-running server must forget closed connections (each holds two
/// socket fds plus a reader handle) instead of accumulating them until
/// shutdown — whether the client disconnects idle or right after a
/// served batch.
#[test]
fn closed_connections_are_forgotten() {
    let (handle, net) = start_server(ServerConfig::default());
    let a = net.node_ids()[0];
    for busy in [false, true] {
        for _ in 0..4 {
            let mut client = Client::connect(handle.local_addr()).unwrap();
            if busy {
                let resps = client.call(&[Request::Find(a)]).unwrap();
                assert_eq!(resps.len(), 1);
            }
            drop(client);
        }
    }
    // Readers observe the EOFs asynchronously; poll with a deadline.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while handle.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(handle.active_connections(), 0, "closed connections leaked");
    handle.shutdown().unwrap();
}

#[test]
fn batched_queries_round_trip() {
    let (handle, net) = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let ids = net.node_ids();
    let (a, b) = (ids[0], ids[1]);
    let resps = client
        .call(&[
            Request::Find(a),
            Request::Find(NodeId(u64::MAX)),
            Request::GetSuccessors(b),
            Request::Stats,
        ])
        .unwrap();
    assert_eq!(resps.len(), 4);
    match &resps[0] {
        Response::Record(node) => assert_eq!(node.id, a),
        other => panic!("expected record, got {other:?}"),
    }
    assert_eq!(resps[1], Response::Error(Status::NotFound, OpCode::Find));
    match &resps[2] {
        Response::Records(succs) => {
            let expected = net.nodes().find(|n| n.id == b).unwrap().successors.len();
            assert_eq!(succs.len(), expected);
        }
        other => panic!("expected records, got {other:?}"),
    }
    match &resps[3] {
        Response::StatsJson(json) => {
            assert!(json.contains("serve.requests"));
            assert!(json.contains("io.physical_reads"));
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn route_and_aggregate_match_direct_evaluation() {
    let (am, net) = build_db();
    // Take a real 4-node walk so the route is complete.
    let start = net.node_ids()[3];
    let mut walk = vec![start];
    for _ in 0..3 {
        let cur = *walk.last().unwrap();
        let node = net.nodes().find(|n| n.id == cur).unwrap();
        match node.successors.first() {
            Some(e) => walk.push(e.to),
            None => break,
        }
    }
    let direct = ccam_core::query::route::evaluate_path(&am, &walk).unwrap();
    let arcs: Vec<(NodeId, NodeId)> = walk.windows(2).map(|w| (w[0], w[1])).collect();
    let direct_agg = ccam_core::query::route_unit_aggregate(&am, &arcs).unwrap();

    let db = Arc::new(EpochCell::new(am).unwrap());
    let handle = Server::start(db, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let resps = client
        .call(&[
            Request::Route(walk.clone()),
            Request::RangeAggregate(arcs.clone()),
        ])
        .unwrap();
    assert_eq!(
        resps[0],
        Response::RouteEval {
            total_cost: direct.total_cost,
            nodes_visited: direct.nodes_visited as u32,
            complete: direct.complete,
        }
    );
    assert_eq!(
        resps[1],
        Response::Aggregate {
            arcs_found: direct_agg.arcs_found as u32,
            arcs_missing: direct_agg.arcs_missing as u32,
            total_cost: direct_agg.total_cost,
            node_payload_sum: direct_agg.node_payload_sum,
            nodes_retrieved: direct_agg.nodes_retrieved as u32,
        }
    );
    handle.shutdown().unwrap();
}

#[test]
fn undecodable_frame_gets_bad_request_and_close() {
    let (handle, _net) = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.send_raw(&[PROTOCOL_VERSION, 0xFF, 0xFF]).unwrap();
    let payload = client.recv_raw().unwrap().expect("error response expected");
    let (_tag, resps) = ccam_server::protocol::decode_response_batch(&payload).unwrap();
    assert_eq!(resps.len(), 1);
    assert!(matches!(resps[0], Response::Error(Status::BadRequest, _)));
    // Server closes the connection after a bad frame.
    assert!(client.recv_raw().unwrap().is_none());
    handle.shutdown().unwrap();
}

#[test]
fn overload_is_rejected_with_overloaded_not_a_hang() {
    // One worker, depth-1 queue, and a batch heavy enough to hold the
    // worker busy: pipelined frames beyond the first two must be
    // rejected immediately with per-request Overloaded.
    let (handle, net) = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let ids = net.node_ids();
    let heavy: Vec<Request> = ids.iter().map(|&id| Request::GetSuccessors(id)).collect();

    // Raw pipelining: fire many frames without reading responses.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let total_frames = 32;
    for tag in 0..total_frames {
        let payload = ccam_server::protocol::encode_request_batch(tag, 0, &heavy);
        client.send_raw(&payload).unwrap();
    }
    let mut overloaded = 0usize;
    let mut served = 0usize;
    for _ in 0..total_frames {
        let payload = client.recv_raw().unwrap().expect("response per frame");
        let (_tag, resps) = ccam_server::protocol::decode_response_batch(&payload).unwrap();
        assert_eq!(resps.len(), heavy.len());
        if resps
            .iter()
            .all(|r| matches!(r, Response::Error(Status::Overloaded, _)))
        {
            overloaded += 1;
        } else {
            served += 1;
        }
    }
    assert!(served >= 1, "at least the first frame must be served");
    assert!(
        overloaded >= 1,
        "with depth 1 and 32 pipelined frames some must be rejected"
    );
    assert_eq!(
        handle.metrics().counter("serve.overloaded"),
        (overloaded * heavy.len()) as u64
    );
    handle.shutdown().unwrap();
}

#[test]
fn batches_are_snapshot_consistent_across_commits() {
    // A writer toggles a node's payload between two self-consistent
    // values (all bytes 0xAA or all 0xBB) via the epoch writer. Every
    // batch of two Finds for that node must see the SAME value twice:
    // a batch runs under one epoch read guard.
    let (am, net) = build_db();
    let target = net.node_ids()[7];
    let db = Arc::new(EpochCell::new(am).unwrap());
    let handle = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer_db = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        let mut flip = false;
        while !writer_stop.load(Ordering::Relaxed) {
            // One write transaction under the epoch guard: delete +
            // re-insert with a flipped payload is invisible to readers
            // until commit publishes the next snapshot.
            let mut am = writer_db.write().unwrap();
            let deleted = am.delete_node(target).unwrap().unwrap();
            let mut node = deleted.data;
            let byte = if flip { 0xAA } else { 0xBB };
            flip = !flip;
            node.payload = vec![byte; 8];
            am.insert_node(&node, &deleted.incoming).unwrap();
            am.commit().unwrap();
        }
    });

    let mut client = Client::connect(handle.local_addr()).unwrap();
    for _ in 0..300 {
        let resps = client
            .call(&[Request::Find(target), Request::Find(target)])
            .unwrap();
        let payloads: Vec<&Vec<u8>> = resps
            .iter()
            .map(|r| match r {
                Response::Record(n) => &n.payload,
                other => panic!("expected record, got {other:?}"),
            })
            .collect();
        // Same snapshot within the batch…
        assert_eq!(payloads[0], payloads[1], "torn batch across a commit");
        // …and each observation is itself a committed value.
        if payloads[0].len() == 8 {
            assert!(
                payloads[0].iter().all(|&b| b == 0xAA) || payloads[0].iter().all(|&b| b == 0xBB),
                "read observed a torn payload: {:?}",
                payloads[0]
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_drains_pending_batches() {
    let (handle, net) = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 16,
        ..ServerConfig::default()
    });
    let ids = net.node_ids();
    let heavy: Vec<Request> = ids.iter().map(|&id| Request::GetSuccessors(id)).collect();

    // Queue several frames, then shut down before reading responses:
    // every accepted frame must still be answered.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let frames = 8u32;
    for tag in 0..frames {
        let payload = ccam_server::protocol::encode_request_batch(tag, 0, &heavy);
        client.send_raw(&payload).unwrap();
    }
    // Wait until the reader has *accepted* all frames — shutdown only
    // guarantees answers for accepted batches, not frames still in the
    // socket buffer.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while handle.metrics().counter("serve.frames_accepted") < frames as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "frames were never accepted"
        );
        std::thread::yield_now();
    }
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let mut answered = 0;
    while let Ok(Some(payload)) = client.recv_raw() {
        let (_tag, resps) = ccam_server::protocol::decode_response_batch(&payload).unwrap();
        assert_eq!(resps.len(), heavy.len());
        answered += 1;
    }
    shutdown.join().unwrap().unwrap();
    assert_eq!(answered, frames, "shutdown dropped accepted batches");
}

#[test]
fn requests_after_shutdown_get_shutting_down_or_closed_connection() {
    let (handle, _net) = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Prove the connection works, then shut the server down.
    client.call(&[Request::Stats]).unwrap();
    handle.shutdown().unwrap();
    // The old connection is closed; new connections are refused or die
    // unanswered. Either way: no hang, no partial garbage.
    let err = client.call(&[Request::Stats]);
    assert!(err.is_err());
}
