//! Property-based tests: the B⁺-tree is model-checked against
//! `std::collections::BTreeMap`, and the Grid File's structural invariants
//! hold under arbitrary insert/remove interleavings.

use std::collections::BTreeMap;

use ccam_index::{zorder, BPlusTree, GridFile};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
}

fn tree_op(key_space: u64) -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        4 => (0..key_space, any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        3 => (0..key_space).prop_map(TreeOp::Remove),
        1 => (0..key_space).prop_map(TreeOp::Get),
        1 => (0..key_space, 0..key_space).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence leaves the B+-tree agreeing with BTreeMap, with all
    /// structural invariants intact.
    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec(tree_op(128), 1..300)) {
        let mut tree = BPlusTree::new_mem(128).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v).unwrap(), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(k).unwrap(), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(k).unwrap(), model.get(&k).copied());
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree.range(lo, hi).unwrap();
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants().unwrap();
    }

    /// Grid-file structure stays consistent and every live value is
    /// retrievable at its coordinates under random weighted inserts and
    /// removes.
    #[test]
    fn gridfile_consistency(
        cap in 2usize..12,
        ops in prop::collection::vec(
            (0u32..64, 0u32..64, 1usize..5, any::<bool>()), 1..200),
    ) {
        let mut g: GridFile<u64> = GridFile::new(cap * 4);
        let mut live: Vec<(u32, u32, u64)> = Vec::new();
        let mut next_val = 0u64;
        for (x, y, w, is_insert) in ops {
            if is_insert || live.is_empty() {
                g.insert(x, y, w, next_val);
                live.push((x, y, next_val));
                next_val += 1;
            } else {
                let (x, y, v) = live.swap_remove((x as usize + y as usize) % live.len());
                prop_assert_eq!(g.remove(x, y, v), Some(v));
            }
            g.check_invariants();
        }
        prop_assert_eq!(g.len(), live.len());
        for &(x, y, v) in &live {
            let found = g.point_query(x, y).iter().any(|e| e.value == v);
            prop_assert!(found, "value {v} at ({x},{y}) lost");
        }
    }

    /// Grid-file range queries return exactly the points in the rectangle.
    #[test]
    fn gridfile_range_queries_exact(
        pts in prop::collection::vec((0u32..100, 0u32..100), 1..80),
        rect in (0u32..100, 0u32..100, 0u32..100, 0u32..100),
    ) {
        let mut g: GridFile<u64> = GridFile::new(4);
        for (i, &(x, y)) in pts.iter().enumerate() {
            g.insert(x, y, 1, i as u64);
        }
        let (a, b, c, d) = rect;
        let (x0, x1) = (a.min(c), a.max(c));
        let (y0, y1) = (b.min(d), b.max(d));
        let mut got: Vec<u64> = g.range_query(x0, y0, x1, y1).iter().map(|e| e.value).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts.iter().enumerate()
            .filter(|(_, &(x, y))| x >= x0 && x <= x1 && y >= y0 && y <= y1)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// R-tree model check: under random inserts and removes, window
    /// queries agree with a brute-force list and invariants hold.
    #[test]
    fn rtree_matches_brute_force(
        fanout in 4usize..10,
        ops in prop::collection::vec((0u32..64, 0u32..64, any::<bool>()), 1..150),
        window in (0u32..64, 0u32..64, 0u32..64, 0u32..64),
    ) {
        use ccam_index::rtree::{RTree, Rect};
        let mut tree: RTree<u64> = RTree::new(fanout);
        let mut model: Vec<(u32, u32, u64)> = Vec::new();
        let mut next = 0u64;
        for (x, y, insert) in ops {
            if insert || model.is_empty() {
                tree.insert(Rect::point(x, y), next);
                model.push((x, y, next));
                next += 1;
            } else {
                let (mx, my, mv) = model.swap_remove((x as usize * 31 + y as usize) % model.len());
                prop_assert!(tree.remove(Rect::point(mx, my), &mv));
            }
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), model.len());
        let (a, b, c, d) = window;
        let w = Rect::new(a.min(c), b.min(d), a.max(c), b.max(d));
        let mut got: Vec<u64> = tree.window_query(w).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<u64> = model
            .iter()
            .filter(|&&(x, y, _)| x >= w.x0 && x <= w.x1 && y >= w.y0 && y <= w.y1)
            .map(|&(_, _, v)| v)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Z-order locality: the codes of the 4 sub-quadrants of any aligned
    /// power-of-two square are contiguous, disjoint blocks.
    #[test]
    fn zorder_block_property(level in 1u32..16, cx in any::<u32>(), cy in any::<u32>()) {
        let size = 1u32 << level;
        let x0 = cx & !(size - 1);
        let y0 = cy & !(size - 1);
        let lo = zorder::z_encode(x0, y0);
        let hi = zorder::z_encode(x0 + size - 1, y0 + size - 1);
        // Every point in the square falls inside [lo, hi] ...
        let probe = [
            (x0, y0), (x0 + size - 1, y0), (x0, y0 + size - 1),
            (x0 + size / 2, y0 + size / 2),
        ];
        for (x, y) in probe {
            let z = zorder::z_encode(x, y);
            prop_assert!(z >= lo && z <= hi);
        }
        // ... and the range is exactly size^2 codes (the block is dense).
        prop_assert_eq!(hi - lo + 1, (size as u64) * (size as u64));
    }
}
