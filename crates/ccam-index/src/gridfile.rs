//! The Grid File of Nievergelt, Hinterberger & Sevcik \[21\].
//!
//! A grid file partitions 2-D space by two *linear scales* (sorted split
//! coordinates per axis) whose cross product defines a grid of cells; a
//! *directory* maps every cell to a data bucket, and several adjacent
//! cells may share one bucket (here: bucket regions are kept rectangular).
//! When a bucket overflows it splits — either by dividing its cell
//! rectangle, or, when it covers a single cell, by inserting a new split
//! coordinate into one scale (which adds a directory row/column).
//!
//! The paper evaluates the Grid File as the *proximity-clustering*
//! competitor to CCAM: nodes that are spatially close share a bucket, so
//! it "takes advantage of the correlation between connectivity and
//! spatial proximity" (§4.1). To serve as the clustering engine of the
//! Grid-File access method, every entry carries a caller-supplied
//! **weight** (the node record's size in bytes) and buckets overflow on
//! total weight, not entry count — node records have variable size.

use std::fmt;

/// Identifier of a grid-file bucket. The Grid-File access method maps
/// bucket ids 1:1 to data pages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BucketId(pub u32);

impl fmt::Debug for BucketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// One point entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridEntry<V> {
    /// X coordinate.
    pub x: u32,
    /// Y coordinate.
    pub y: u32,
    /// Caller-defined weight (record bytes for the Grid-File AM, 1 for a
    /// pure point index).
    pub weight: usize,
    /// Payload.
    pub value: V,
}

/// A bucket split performed while absorbing an insert: `moved` values were
/// transferred from bucket `from` to the new bucket `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitEvent<V> {
    /// Bucket that overflowed.
    pub from: BucketId,
    /// Newly created bucket.
    pub to: BucketId,
    /// Values that moved to `to`.
    pub moved: Vec<V>,
}

/// Rectangle of directory cells, `x0..x1` × `y0..y1` (exclusive ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rect {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
}

struct Bucket<V> {
    entries: Vec<GridEntry<V>>,
    rect: Rect,
}

impl<V> Bucket<V> {
    fn total_weight(&self) -> usize {
        self.entries.iter().map(|e| e.weight).sum()
    }
}

/// An in-memory grid file over point data.
///
/// ```
/// use ccam_index::GridFile;
///
/// let mut g: GridFile<u64> = GridFile::new(3); // 3 weight units per bucket
/// for i in 0..20u32 {
///     g.insert(i * 5, i * 7 % 50, 1, i as u64);
/// }
/// assert!(g.num_buckets() >= 7);              // splits happened
/// assert_eq!(g.point_query(5, 7).len(), 1);   // point i = 1
/// let hits = g.range_query(0, 0, 25, 50);
/// assert!(hits.iter().all(|e| e.x <= 25));
/// ```
pub struct GridFile<V> {
    capacity: usize,
    /// Sorted x split coordinates; cell `i` covers `[xs[i-1], xs[i])`.
    xs: Vec<u32>,
    ys: Vec<u32>,
    /// `dir[xi][yi]` = bucket covering that cell.
    dir: Vec<Vec<BucketId>>,
    buckets: Vec<Option<Bucket<V>>>,
}

impl<V: Copy + PartialEq> GridFile<V> {
    /// Creates an empty grid file whose buckets hold at most `capacity`
    /// total weight before splitting.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        GridFile {
            capacity,
            xs: Vec::new(),
            ys: Vec::new(),
            dir: vec![vec![BucketId(0)]],
            buckets: vec![Some(Bucket {
                entries: Vec::new(),
                rect: Rect {
                    x0: 0,
                    x1: 1,
                    y0: 0,
                    y1: 1,
                },
            })],
        }
    }

    /// Maximum bucket weight before a split is attempted.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| b.is_some()).count()
    }

    /// Directory dimensions `(columns, rows)`.
    pub fn directory_dims(&self) -> (usize, usize) {
        (self.xs.len() + 1, self.ys.len() + 1)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.buckets.iter().flatten().map(|b| b.entries.len()).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn cell_of(&self, x: u32, y: u32) -> (usize, usize) {
        (
            self.xs.partition_point(|&s| s <= x),
            self.ys.partition_point(|&s| s <= y),
        )
    }

    /// The bucket whose region covers point `(x, y)`.
    pub fn bucket_of(&self, x: u32, y: u32) -> BucketId {
        let (xi, yi) = self.cell_of(x, y);
        self.dir[xi][yi]
    }

    fn bucket(&self, id: BucketId) -> &Bucket<V> {
        self.buckets[id.0 as usize].as_ref().expect("live bucket")
    }

    fn bucket_mut(&mut self, id: BucketId) -> &mut Bucket<V> {
        self.buckets[id.0 as usize].as_mut().expect("live bucket")
    }

    /// Inserts an entry, splitting overflowing buckets. Returns the bucket
    /// the entry finally landed in plus every split performed (the
    /// Grid-File AM replays these on its data pages).
    pub fn insert(
        &mut self,
        x: u32,
        y: u32,
        weight: usize,
        value: V,
    ) -> (BucketId, Vec<SplitEvent<V>>) {
        let id = self.bucket_of(x, y);
        self.bucket_mut(id).entries.push(GridEntry {
            x,
            y,
            weight,
            value,
        });
        let mut events = Vec::new();
        let mut queue = vec![id];
        while let Some(b) = queue.pop() {
            while self.bucket(b).total_weight() > self.capacity {
                match self.split(b) {
                    Some(ev) => {
                        queue.push(ev.to);
                        events.push(ev);
                    }
                    None => break, // unsplittable (all points identical)
                }
            }
        }
        (self.bucket_of(x, y), events)
    }

    /// Removes the first entry at `(x, y)` whose value equals `value`.
    ///
    /// Bucket/directory merging on underflow is not implemented — the
    /// paper's Table 5 experiment explicitly ignores underflow handling
    /// "to filter out the effect of reorganization policies" (§4.2).
    pub fn remove(&mut self, x: u32, y: u32, value: V) -> Option<V> {
        let id = self.bucket_of(x, y);
        let b = self.bucket_mut(id);
        let idx = b
            .entries
            .iter()
            .position(|e| e.x == x && e.y == y && e.value == value)?;
        Some(b.entries.swap_remove(idx).value)
    }

    /// All entries at exactly `(x, y)`.
    pub fn point_query(&self, x: u32, y: u32) -> Vec<&GridEntry<V>> {
        self.bucket(self.bucket_of(x, y))
            .entries
            .iter()
            .filter(|e| e.x == x && e.y == y)
            .collect()
    }

    /// All entries with `x0 <= x <= x1` and `y0 <= y <= y1`.
    pub fn range_query(&self, x0: u32, y0: u32, x1: u32, y1: u32) -> Vec<&GridEntry<V>> {
        let (cx0, cy0) = self.cell_of(x0, y0);
        let (cx1, cy1) = self.cell_of(x1, y1);
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for col in self.dir[cx0..=cx1].iter() {
            for &id in col[cy0..=cy1].iter() {
                if seen.contains(&id) {
                    continue;
                }
                seen.push(id);
                out.extend(
                    self.bucket(id)
                        .entries
                        .iter()
                        .filter(|e| e.x >= x0 && e.x <= x1 && e.y >= y0 && e.y <= y1),
                );
            }
        }
        out
    }

    /// Iterates `(bucket, entries)` over live buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (BucketId, &[GridEntry<V>])> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|b| (BucketId(i as u32), &b.entries[..])))
    }

    /// Splits bucket `id`, returning the split event, or `None` when every
    /// entry sits at the same point (no boundary can separate them).
    ///
    /// The cut position is entry-aware: the region divides at the cell
    /// boundary that best balances the entry weight (not blindly at the
    /// rectangle midpoint, which can leave all entries on one side). When
    /// the entries all share one cell, a new scale boundary at their
    /// median coordinate is inserted first — that boundary is strictly
    /// inside the shared cell, so progress is guaranteed.
    fn split(&mut self, id: BucketId) -> Option<SplitEvent<V>> {
        // Entry cell indices along both axes.
        let (cells_x, cells_y): (Vec<usize>, Vec<usize>) = {
            let b = self.bucket(id);
            b.entries.iter().map(|e| self.cell_of(e.x, e.y)).unzip()
        };
        let span = |cells: &[usize]| -> (usize, usize) {
            let min = cells.iter().min().copied().unwrap_or(0);
            let max = cells.iter().max().copied().unwrap_or(0);
            (min, max)
        };
        let (min_cx, max_cx) = span(&cells_x);
        let (min_cy, max_cy) = span(&cells_y);

        if min_cx == max_cx && min_cy == max_cy {
            // Entries share one cell: refine the scale along the axis
            // with the larger coordinate spread, then retry.
            let (xs, ys): (Vec<u32>, Vec<u32>) = {
                let b = self.bucket(id);
                (
                    b.entries.iter().map(|e| e.x).collect(),
                    b.entries.iter().map(|e| e.y).collect(),
                )
            };
            let spread = |v: &[u32]| {
                v.iter().max().copied().unwrap_or(0) - v.iter().min().copied().unwrap_or(0)
            };
            let bx = median_boundary(&xs);
            let by = median_boundary(&ys);
            match (bx, by) {
                (Some(b), _) if spread(&xs) >= spread(&ys) => self.add_x_boundary(b),
                (_, Some(b)) => self.add_y_boundary(b),
                (Some(b), None) => self.add_x_boundary(b),
                (None, None) => return None, // all entries at one point
            }
            return self.split(id);
        }

        // Choose the axis whose entry cells span more; cut at the
        // weight-median cell boundary so both sides are non-empty.
        let split_x = (max_cx - min_cx) >= (max_cy - min_cy) && max_cx > min_cx;
        let rect = self.bucket(id).rect;
        let cut = {
            let cells = if split_x { &cells_x } else { &cells_y };
            let weights: Vec<usize> = self.bucket(id).entries.iter().map(|e| e.weight).collect();
            weight_median_cut(cells, &weights)
        };
        let (left_rect, right_rect) = if split_x {
            debug_assert!(cut > rect.x0 && cut < rect.x1);
            (Rect { x1: cut, ..rect }, Rect { x0: cut, ..rect })
        } else {
            debug_assert!(cut > rect.y0 && cut < rect.y1);
            (Rect { y1: cut, ..rect }, Rect { y0: cut, ..rect })
        };

        // Partition entries between the halves by cell index.
        let (stay, moved): (Vec<GridEntry<V>>, Vec<GridEntry<V>>) = {
            let entries = std::mem::take(&mut self.bucket_mut(id).entries);
            entries.into_iter().partition(|e| {
                let (xi, yi) = self.cell_of(e.x, e.y);
                if split_x {
                    xi < cut
                } else {
                    yi < cut
                }
            })
        };
        debug_assert!(!stay.is_empty() && !moved.is_empty());

        let new_id = self.alloc_bucket(Bucket {
            entries: moved.clone(),
            rect: right_rect,
        });
        self.bucket_mut(id).entries = stay;
        self.bucket_mut(id).rect = left_rect;
        for col in self.dir[right_rect.x0..right_rect.x1].iter_mut() {
            for cell in col[right_rect.y0..right_rect.y1].iter_mut() {
                debug_assert_eq!(*cell, id);
                *cell = new_id;
            }
        }
        Some(SplitEvent {
            from: id,
            to: new_id,
            moved: moved.into_iter().map(|e| e.value).collect(),
        })
    }

    fn alloc_bucket(&mut self, b: Bucket<V>) -> BucketId {
        if let Some(i) = self.buckets.iter().position(|b| b.is_none()) {
            self.buckets[i] = Some(b);
            return BucketId(i as u32);
        }
        self.buckets.push(Some(b));
        BucketId(self.buckets.len() as u32 - 1)
    }

    /// Inserts split coordinate `b` into the x scale: directory cell
    /// column `k` becomes columns `k` and `k+1`, and every bucket
    /// rectangle adjusts.
    fn add_x_boundary(&mut self, b: u32) {
        debug_assert!(!self.xs.contains(&b));
        let k = self.xs.partition_point(|&s| s <= b);
        self.xs.insert(k, b);
        let col = self.dir[k].clone();
        self.dir.insert(k + 1, col);
        for bucket in self.buckets.iter_mut().flatten() {
            let r = &mut bucket.rect;
            if r.x0 > k {
                r.x0 += 1;
            }
            if r.x1 > k {
                r.x1 += 1;
            }
        }
    }

    /// Inserts split coordinate `b` into the y scale (see
    /// [`Self::add_x_boundary`]).
    fn add_y_boundary(&mut self, b: u32) {
        debug_assert!(!self.ys.contains(&b));
        let k = self.ys.partition_point(|&s| s <= b);
        self.ys.insert(k, b);
        for col in &mut self.dir {
            let cell = col[k];
            col.insert(k + 1, cell);
        }
        for bucket in self.buckets.iter_mut().flatten() {
            let r = &mut bucket.rect;
            if r.y0 > k {
                r.y0 += 1;
            }
            if r.y1 > k {
                r.y1 += 1;
            }
        }
    }

    /// Verifies internal consistency (test-support API):
    /// directory/bucket-rect agreement, entries inside their bucket's
    /// region, rectangles tile the directory.
    pub fn check_invariants(&self) {
        let (nx, ny) = self.directory_dims();
        assert_eq!(self.dir.len(), nx);
        for col in &self.dir {
            assert_eq!(col.len(), ny);
        }
        for w in self.xs.windows(2) {
            assert!(w[0] < w[1], "x scale unsorted");
        }
        for w in self.ys.windows(2) {
            assert!(w[0] < w[1], "y scale unsorted");
        }
        let mut covered = 0usize;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let Some(bucket) = bucket else { continue };
            let r = bucket.rect;
            assert!(r.x0 < r.x1 && r.y0 < r.y1, "empty rect");
            assert!(r.x1 <= nx && r.y1 <= ny, "rect out of range");
            covered += (r.x1 - r.x0) * (r.y1 - r.y0);
            for xi in r.x0..r.x1 {
                for yi in r.y0..r.y1 {
                    assert_eq!(
                        self.dir[xi][yi],
                        BucketId(i as u32),
                        "directory cell ({xi},{yi}) disagrees with rect of bucket {i}"
                    );
                }
            }
            for e in &bucket.entries {
                let (xi, yi) = self.cell_of(e.x, e.y);
                assert!(
                    xi >= r.x0 && xi < r.x1 && yi >= r.y0 && yi < r.y1,
                    "entry ({}, {}) outside its bucket region",
                    e.x,
                    e.y
                );
            }
        }
        assert_eq!(covered, nx * ny, "bucket rects must tile the directory");
    }
}

/// The cut cell index that best balances entry weight: entries in cells
/// `< cut` go left, the rest right, both sides non-empty. `cells` must
/// span at least two distinct values.
fn weight_median_cut(cells: &[usize], weights: &[usize]) -> usize {
    debug_assert_eq!(cells.len(), weights.len());
    let mut pairs: Vec<(usize, usize)> =
        cells.iter().copied().zip(weights.iter().copied()).collect();
    pairs.sort_unstable();
    let total: usize = weights.iter().sum();
    let mut acc = 0usize;
    let max_cell = pairs.last().expect("non-empty").0;
    for (cell, w) in pairs {
        acc += w;
        if acc * 2 >= total && cell < max_cell {
            return cell + 1;
        }
    }
    // Fallback: cut just below the maximum cell (still non-empty sides).
    max_cell
}

/// A boundary value that splits `coords` into two non-empty groups
/// (`< b` and `>= b`), or `None` when all values are equal. Picks the
/// median so repeated splits stay balanced.
fn median_boundary(coords: &[u32]) -> Option<u32> {
    let mut sorted: Vec<u32> = coords.to_vec();
    sorted.sort_unstable();
    let min = *sorted.first()?;
    if *sorted.last()? == min {
        return None;
    }
    let mid = sorted[sorted.len() / 2];
    if mid > min {
        Some(mid)
    } else {
        // Median equals the minimum; take the smallest value above it.
        sorted.into_iter().find(|&c| c > min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_until_capacity() {
        let mut g: GridFile<u64> = GridFile::new(4);
        for i in 0..4 {
            let (_, events) = g.insert(i, i, 1, i as u64);
            assert!(events.is_empty());
        }
        assert_eq!(g.num_buckets(), 1);
        g.check_invariants();
    }

    #[test]
    fn overflow_splits_bucket() {
        let mut g: GridFile<u64> = GridFile::new(4);
        for i in 0..5u32 {
            g.insert(i * 10, 0, 1, i as u64);
        }
        assert!(g.num_buckets() >= 2);
        g.check_invariants();
        // Every inserted point is still findable.
        for i in 0..5u32 {
            assert_eq!(g.point_query(i * 10, 0).len(), 1, "point {i}");
        }
    }

    #[test]
    fn splits_reported_to_caller() {
        let mut g: GridFile<u64> = GridFile::new(2);
        g.insert(0, 0, 1, 100);
        g.insert(100, 0, 1, 101);
        let (_, events) = g.insert(50, 0, 1, 102);
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert!(!ev.moved.is_empty());
        // Moved values live in the new bucket now.
        for &v in &ev.moved {
            let in_new = g
                .buckets()
                .find(|(id, _)| *id == ev.to)
                .map(|(_, es)| es.iter().any(|e| e.value == v))
                .unwrap();
            assert!(in_new);
        }
        g.check_invariants();
    }

    #[test]
    fn weighted_overflow() {
        // Capacity 100 bytes; records of 40 bytes: 2 fit, the 3rd splits.
        let mut g: GridFile<u64> = GridFile::new(100);
        g.insert(0, 0, 40, 1);
        g.insert(10, 10, 40, 2);
        let (_, events) = g.insert(90, 90, 40, 3);
        assert_eq!(events.len(), 1);
        assert_eq!(g.num_buckets(), 2);
        g.check_invariants();
    }

    #[test]
    fn identical_points_do_not_split_forever() {
        let mut g: GridFile<u64> = GridFile::new(2);
        for i in 0..10 {
            g.insert(5, 5, 1, i);
        }
        // Unsplittable: one bucket holds everything, over capacity.
        assert_eq!(g.num_buckets(), 1);
        assert_eq!(g.point_query(5, 5).len(), 10);
        g.check_invariants();
    }

    #[test]
    fn collinear_points_split_on_the_other_axis() {
        let mut g: GridFile<u64> = GridFile::new(2);
        // All x equal: splits must use the y axis.
        for i in 0..8u32 {
            g.insert(5, i * 10, 1, i as u64);
        }
        g.check_invariants();
        assert!(g.num_buckets() >= 3);
        for i in 0..8u32 {
            assert_eq!(g.point_query(5, i * 10).len(), 1);
        }
    }

    #[test]
    fn remove_then_query() {
        let mut g: GridFile<u64> = GridFile::new(4);
        g.insert(1, 2, 1, 7);
        g.insert(1, 2, 1, 8);
        assert_eq!(g.remove(1, 2, 7), Some(7));
        assert_eq!(g.remove(1, 2, 7), None);
        let left: Vec<u64> = g.point_query(1, 2).iter().map(|e| e.value).collect();
        assert_eq!(left, vec![8]);
    }

    #[test]
    fn range_query_clips() {
        let mut g: GridFile<u64> = GridFile::new(3);
        for x in 0..10u32 {
            for y in 0..10u32 {
                g.insert(x, y, 1, (x * 10 + y) as u64);
            }
        }
        g.check_invariants();
        let hits = g.range_query(2, 3, 4, 5);
        assert_eq!(hits.len(), 3 * 3);
        for e in hits {
            assert!((2..=4).contains(&e.x) && (3..=5).contains(&e.y));
        }
        assert_eq!(g.range_query(100, 100, 200, 200).len(), 0);
    }

    #[test]
    fn many_inserts_keep_buckets_within_capacity() {
        let mut g: GridFile<u64> = GridFile::new(8);
        // Deterministic scatter.
        let mut x = 1u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            g.insert((x >> 40) as u32 % 1000, (x >> 20) as u32 % 1000, 1, i);
        }
        g.check_invariants();
        assert_eq!(g.len(), 500);
        for (_, entries) in g.buckets() {
            assert!(
                entries.len() <= 8,
                "bucket over capacity: {}",
                entries.len()
            );
        }
    }

    #[test]
    fn clustered_points_grow_directory_locally() {
        let mut g: GridFile<u64> = GridFile::new(2);
        // Dense cluster bottom-left, single far point top-right.
        g.insert(1000, 1000, 1, 999);
        for i in 0..20u32 {
            g.insert(i, i / 2, 1, i as u64);
        }
        g.check_invariants();
        // All points retrievable.
        assert_eq!(g.point_query(1000, 1000).len(), 1);
        assert_eq!(g.len(), 21);
    }

    #[test]
    fn bucket_of_is_stable_for_queries() {
        let mut g: GridFile<u64> = GridFile::new(3);
        for i in 0..30u32 {
            g.insert(i * 7 % 100, i * 13 % 100, 1, i as u64);
        }
        for i in 0..30u32 {
            let (x, y) = (i * 7 % 100, i * 13 % 100);
            let b = g.bucket_of(x, y);
            let found = g
                .buckets()
                .find(|(id, _)| *id == b)
                .map(|(_, es)| es.iter().any(|e| e.value == i as u64))
                .unwrap();
            assert!(found, "value {i} must be in bucket_of its coordinates");
        }
    }

    #[test]
    fn median_boundary_cases() {
        assert_eq!(median_boundary(&[]), None);
        assert_eq!(median_boundary(&[5]), None);
        assert_eq!(median_boundary(&[5, 5, 5]), None);
        assert_eq!(median_boundary(&[1, 2]), Some(2));
        assert_eq!(median_boundary(&[1, 1, 1, 9]), Some(9));
        let b = median_boundary(&[1, 2, 3, 4, 5]).unwrap();
        assert!(b > 1 && b <= 5);
    }
}
