//! An R-tree spatial index (Guttman \[11\]).
//!
//! The paper's §2.1: "Other access methods such as R-tree \[11\] and Grid
//! File \[21\], etc. can alternatively be created on top of the data file
//! as secondary indices in CCAM to suit the application." This is that
//! alternative: a classic R-tree over point data with quadratic-split
//! insertion, deletion with under-full node reinsertion, and point /
//! window queries.
//!
//! The tree stores `(rect, value)` pairs; for CCAM's node index the rect
//! is a point (zero-area rectangle) and the value the node id.

use std::fmt;

/// Axis-aligned rectangle `[x0, x1] × [y0, y1]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x0: u32,
    /// Bottom edge.
    pub y0: u32,
    /// Right edge.
    pub x1: u32,
    /// Top edge.
    pub y1: u32,
}

impl Rect {
    /// A zero-area rectangle at a point.
    pub fn point(x: u32, y: u32) -> Rect {
        Rect {
            x0: x,
            y0: y,
            x1: x,
            y1: y,
        }
    }

    /// A rectangle from two corners (any order).
    pub fn new(ax: u32, ay: u32, bx: u32, by: u32) -> Rect {
        Rect {
            x0: ax.min(bx),
            y0: ay.min(by),
            x1: ax.max(bx),
            y1: ay.max(by),
        }
    }

    /// Area as `u64` (side lengths are inclusive spans).
    pub fn area(&self) -> u64 {
        (self.x1 - self.x0) as u64 * (self.y1 - self.y0) as u64
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// True when the rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && self.x1 >= other.x1 && self.y0 <= other.y0 && self.y1 >= other.y1
    }

    /// Area growth needed to absorb `other`.
    fn enlargement(&self, other: &Rect) -> u64 {
        self.union(other).area() - self.area()
    }
}

enum Node<V> {
    Leaf(Vec<(Rect, V)>),
    Internal(Vec<(Rect, Box<Node<V>>)>),
}

impl<V> Node<V> {
    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Internal(e) => e.len(),
        }
    }

    fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Leaf(e) => e.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
            Node::Internal(e) => e.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
        }
    }
}

/// An in-memory R-tree with Guttman's quadratic split.
///
/// ```
/// use ccam_index::{RTree, Rect};
///
/// let mut t: RTree<&str> = RTree::new(8);
/// t.insert(Rect::point(10, 20), "stop A");
/// t.insert(Rect::point(11, 21), "stop B");
/// t.insert(Rect::point(90, 90), "depot");
/// let near = t.window_query(Rect::new(0, 0, 30, 30));
/// assert_eq!(near.len(), 2);
/// assert!(t.remove(Rect::point(90, 90), &"depot"));
/// ```
pub struct RTree<V> {
    root: Node<V>,
    max_entries: usize,
    min_entries: usize,
    len: usize,
    height: usize,
}

impl<V> fmt::Debug for RTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RTree(len={}, height={})", self.len, self.height)
    }
}

impl<V: Clone + PartialEq> Default for RTree<V> {
    fn default() -> Self {
        Self::new(8)
    }
}

impl<V: Clone + PartialEq> RTree<V> {
    /// An empty tree with the given node fanout (`max_entries >= 4`).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4);
        RTree {
            root: Node::Leaf(Vec::new()),
            max_entries,
            min_entries: max_entries.div_ceil(2).max(2),
            len: 0,
            height: 1,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Inserts `(rect, value)`.
    pub fn insert(&mut self, rect: Rect, value: V) {
        let max = self.max_entries;
        let min = self.min_entries;
        if let Some((r1, n1, r2, n2)) = insert_rec(&mut self.root, rect, value, max, min) {
            // Root split: grow the tree.
            self.root = Node::Internal(vec![(r1, n1), (r2, n2)]);
            self.height += 1;
        }
        self.len += 1;
    }

    /// Removes one entry with exactly this `rect` and `value`. Under-full
    /// nodes dissolve and their entries reinsert (Guttman's condense).
    pub fn remove(&mut self, rect: Rect, value: &V) -> bool {
        let mut orphans: Vec<(Rect, V)> = Vec::new();
        let removed = remove_rec(&mut self.root, rect, value, self.min_entries, &mut orphans);
        if !removed {
            return false;
        }
        self.len -= 1;
        // Shrink a root with a single child.
        loop {
            let new_root = match &mut self.root {
                Node::Internal(ch) if ch.len() == 1 => Some(*ch.pop().expect("one child").1),
                _ => None,
            };
            match new_root {
                Some(n) => {
                    self.root = n;
                    self.height -= 1;
                }
                None => break,
            }
        }
        for (r, v) in orphans {
            self.len -= 1; // reinsert bumps it back
            self.insert(r, v);
        }
        true
    }

    /// All values whose rect intersects `window`.
    pub fn window_query(&self, window: Rect) -> Vec<&V> {
        let mut out = Vec::new();
        window_rec(&self.root, window, &mut out);
        out
    }

    /// All values stored exactly at point `(x, y)`.
    pub fn point_query(&self, x: u32, y: u32) -> Vec<&V> {
        self.window_query(Rect::point(x, y))
    }

    /// Verifies R-tree invariants (test-support API): entry counts,
    /// bounding-rectangle containment, uniform leaf depth.
    pub fn check_invariants(&self) {
        fn rec<V>(
            node: &Node<V>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            min: usize,
            max: usize,
            is_root: bool,
        ) {
            match node {
                Node::Leaf(entries) => {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                        None => *leaf_depth = Some(depth),
                    }
                    if !is_root {
                        assert!(entries.len() >= min, "leaf underflow: {}", entries.len());
                    }
                    assert!(entries.len() <= max, "leaf overflow");
                }
                Node::Internal(entries) => {
                    if !is_root {
                        assert!(entries.len() >= min, "internal underflow");
                    }
                    assert!(entries.len() <= max, "internal overflow");
                    assert!(!entries.is_empty(), "empty internal node");
                    for (r, child) in entries {
                        let mbr = child.mbr().expect("child non-empty");
                        assert!(
                            r.contains(&mbr) && mbr.contains(r),
                            "stored rect {r:?} != child MBR {mbr:?}"
                        );
                        rec(child, depth + 1, leaf_depth, min, max, false);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        rec(
            &self.root,
            1,
            &mut leaf_depth,
            self.min_entries,
            self.max_entries,
            true,
        );
    }
}

/// Recursive insert. On overflow the node's entries split in two; both
/// halves return to the caller, which overwrites the original slot.
#[allow(clippy::type_complexity)]
fn insert_rec<V: Clone>(
    node: &mut Node<V>,
    rect: Rect,
    value: V,
    max: usize,
    min: usize,
) -> Option<(Rect, Box<Node<V>>, Rect, Box<Node<V>>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((rect, value));
            if entries.len() <= max {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(entries), min);
            let (ra, rb) = (mbr_of(&a), mbr_of(&b));
            Some((ra, Box::new(Node::Leaf(a)), rb, Box::new(Node::Leaf(b))))
        }
        Node::Internal(entries) => {
            // ChooseLeaf: least enlargement, ties by smaller area.
            let idx = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (r, _))| (r.enlargement(&rect), r.area()))
                .map(|(i, _)| i)
                .expect("internal node non-empty");
            let split = insert_rec(&mut entries[idx].1, rect, value, max, min);
            match split {
                Some((r1, n1, r2, n2)) => {
                    entries[idx] = (r1, n1);
                    entries.push((r2, n2));
                }
                None => {
                    entries[idx].0 = entries[idx].1.mbr().expect("child non-empty");
                }
            }
            if entries.len() <= max {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(entries), min);
            let (ra, rb) = (mbr_of_nodes(&a), mbr_of_nodes(&b));
            Some((
                ra,
                Box::new(Node::Internal(a)),
                rb,
                Box::new(Node::Internal(b)),
            ))
        }
    }
}

fn mbr_of<V>(entries: &[(Rect, V)]) -> Rect {
    entries
        .iter()
        .map(|(r, _)| *r)
        .reduce(|a, b| a.union(&b))
        .expect("non-empty")
}

fn mbr_of_nodes<V>(entries: &[(Rect, Box<Node<V>>)]) -> Rect {
    entries
        .iter()
        .map(|(r, _)| *r)
        .reduce(|a, b| a.union(&b))
        .expect("non-empty")
}

/// Two groups of entries produced by a node split.
type SplitGroups<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

/// Guttman's quadratic split over any entry type with a rect; each group
/// receives at least `min` entries.
fn quadratic_split<E>(mut entries: Vec<(Rect, E)>, min: usize) -> SplitGroups<E> {
    debug_assert!(entries.len() >= 2);
    // PickSeeds: the pair wasting the most area together.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, i64::MIN);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).area() as i64
                - entries[i].0.area() as i64
                - entries[j].0.area() as i64;
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Take seeds out (remove the later index first).
    let e2 = entries.remove(s2);
    let e1 = entries.remove(s1);
    let mut r1 = e1.0;
    let mut r2 = e2.0;
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];

    while let Some(next) = pick_next(&entries, &r1, &r2) {
        let (rect, e) = entries.remove(next);
        // Force-assign when a group needs every remaining entry to reach
        // the minimum occupancy (Guttman's stopping rule).
        let remaining = entries.len() + 1;
        let to_g1 = if g1.len() + remaining <= min {
            true
        } else if g2.len() + remaining <= min {
            false
        } else {
            let d1 = r1.enlargement(&rect);
            let d2 = r2.enlargement(&rect);
            d1 < d2 || (d1 == d2 && r1.area() <= r2.area())
        };
        if to_g1 {
            r1 = r1.union(&rect);
            g1.push((rect, e));
        } else {
            r2 = r2.union(&rect);
            g2.push((rect, e));
        }
    }
    (g1, g2)
}

/// PickNext: the entry with the largest preference difference.
fn pick_next<E>(entries: &[(Rect, E)], r1: &Rect, r2: &Rect) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .max_by_key(|(_, (r, _))| {
            (r1.enlargement(r) as i64 - r2.enlargement(r) as i64).unsigned_abs()
        })
        .map(|(i, _)| i)
}

/// Recursive remove; dissolved nodes push their entries into `orphans`.
fn remove_rec<V: Clone + PartialEq>(
    node: &mut Node<V>,
    rect: Rect,
    value: &V,
    min: usize,
    orphans: &mut Vec<(Rect, V)>,
) -> bool {
    match node {
        Node::Leaf(entries) => {
            if let Some(pos) = entries.iter().position(|(r, v)| *r == rect && v == value) {
                entries.remove(pos);
                true
            } else {
                false
            }
        }
        Node::Internal(entries) => {
            for i in 0..entries.len() {
                if !entries[i].0.contains(&rect) && !entries[i].0.intersects(&rect) {
                    continue;
                }
                if remove_rec(&mut entries[i].1, rect, value, min, orphans) {
                    if entries[i].1.len() < min {
                        // Dissolve the under-full child.
                        let (_, child) = entries.remove(i);
                        collect_entries(*child, orphans);
                    } else {
                        entries[i].0 = entries[i].1.mbr().expect("non-empty");
                    }
                    return true;
                }
            }
            false
        }
    }
}

fn collect_entries<V>(node: Node<V>, out: &mut Vec<(Rect, V)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Internal(entries) => {
            for (_, child) in entries {
                collect_entries(*child, out);
            }
        }
    }
}

fn window_rec<'a, V>(node: &'a Node<V>, window: Rect, out: &mut Vec<&'a V>) {
    match node {
        Node::Leaf(entries) => {
            out.extend(
                entries
                    .iter()
                    .filter(|(r, _)| r.intersects(&window))
                    .map(|(_, v)| v),
            );
        }
        Node::Internal(entries) => {
            for (r, child) in entries {
                if r.intersects(&window) {
                    window_rec(child, window, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_algebra() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 8, 8);
        assert_eq!(a.area(), 16);
        assert_eq!(a.union(&b), Rect::new(0, 0, 8, 8));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&Rect::new(5, 5, 6, 6)));
        assert!(Rect::new(0, 0, 10, 10).contains(&a));
        assert!(!a.contains(&b));
        assert_eq!(Rect::point(3, 3).area(), 0);
    }

    #[test]
    fn insert_and_point_query() {
        let mut t: RTree<u64> = RTree::new(4);
        for i in 0..50u32 {
            t.insert(Rect::point(i * 3, i * 7 % 97), i as u64);
        }
        t.check_invariants();
        assert_eq!(t.len(), 50);
        for i in 0..50u32 {
            let hits = t.point_query(i * 3, i * 7 % 97);
            assert!(hits.contains(&&(i as u64)), "point {i}");
        }
        assert!(t.height() > 1, "50 points at fanout 4 must split");
    }

    #[test]
    fn window_query_exact() {
        let mut t: RTree<u64> = RTree::new(6);
        for x in 0..20u32 {
            for y in 0..20u32 {
                t.insert(Rect::point(x, y), (x * 100 + y) as u64);
            }
        }
        t.check_invariants();
        let mut got: Vec<u64> = t
            .window_query(Rect::new(3, 4, 7, 6))
            .into_iter()
            .copied()
            .collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for x in 3..=7u64 {
            for y in 4..=6u64 {
                want.push(x * 100 + y);
            }
        }
        assert_eq!(got, want);
        assert!(t.window_query(Rect::new(100, 100, 200, 200)).is_empty());
    }

    #[test]
    fn remove_and_reinsert_preserves_the_rest() {
        let mut t: RTree<u64> = RTree::new(4);
        for i in 0..80u32 {
            t.insert(Rect::point(i % 16, i / 16), i as u64);
        }
        for i in (0..80u32).step_by(2) {
            assert!(t.remove(Rect::point(i % 16, i / 16), &(i as u64)), "{i}");
            t.check_invariants();
        }
        assert_eq!(t.len(), 40);
        for i in 0..80u32 {
            let hits = t.point_query(i % 16, i / 16);
            let present = hits.contains(&&(i as u64));
            assert_eq!(present, i % 2 == 1, "entry {i}");
        }
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t: RTree<u64> = RTree::new(4);
        t.insert(Rect::point(1, 1), 7);
        assert!(!t.remove(Rect::point(1, 1), &8));
        assert!(!t.remove(Rect::point(2, 2), &7));
        assert!(t.remove(Rect::point(1, 1), &7));
        assert!(t.is_empty());
    }

    #[test]
    fn rectangles_not_just_points() {
        let mut t: RTree<&'static str> = RTree::new(4);
        t.insert(Rect::new(0, 0, 10, 10), "big");
        t.insert(Rect::new(2, 2, 3, 3), "small");
        t.insert(Rect::new(20, 20, 25, 25), "far");
        let hits = t.window_query(Rect::new(1, 1, 4, 4));
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&&"big") && hits.contains(&&"small"));
    }

    #[test]
    fn deep_tree_stays_consistent() {
        let mut t: RTree<u64> = RTree::new(4);
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert(
                Rect::point((x >> 40) as u32 % 4096, (x >> 20) as u32 % 4096),
                i,
            );
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 4);
    }
}
