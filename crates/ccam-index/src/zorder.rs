//! Morton (Z-order) encoding of 2-D coordinates.
//!
//! Z-ordering maps a 2-D point to a single integer whose order roughly
//! preserves spatial proximity — points close in the plane tend to be
//! close on the Z-curve. The paper uses it to order CCAM's secondary
//! index (§2.1, citing Orenstein & Merrett \[22\]); this reproduction also
//! uses it to assign node ids in the synthetic road map so that, as in
//! the paper, "the node-id values ... represent the Z-order of the
//! location of the nodes in space".

/// Spreads the bits of `v` so bit *i* lands at position *2i*
/// (`abcd` → `0a0b0c0d`).
#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: collects every second bit back into a `u32`.
#[inline]
fn compact(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Interleaves `x` and `y` into the Morton code `...y1x1y0x0`.
///
/// The full `u32 × u32 → u64` domain is supported and the mapping is a
/// bijection (see [`z_decode`]).
#[inline]
pub fn z_encode(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Recovers `(x, y)` from a Morton code produced by [`z_encode`].
#[inline]
pub fn z_decode(z: u64) -> (u32, u32) {
    (compact(z), compact(z >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(z_encode(0, 0), 0);
        assert_eq!(z_encode(1, 0), 0b01);
        assert_eq!(z_encode(0, 1), 0b10);
        assert_eq!(z_encode(1, 1), 0b11);
        assert_eq!(z_encode(2, 0), 0b0100);
        assert_eq!(z_encode(0, 2), 0b1000);
        assert_eq!(z_encode(3, 3), 0b1111);
        assert_eq!(z_encode(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn z_curve_visits_quadrants_in_order() {
        // Within a 4x4 grid the curve visits the four 2x2 quadrants in
        // Z order: (0..2)x(0..2), (2..4)x(0..2), (0..2)x(2..4), (2..4)x(2..4).
        let quadrant = |x: u32, y: u32| (y / 2) * 2 + x / 2;
        let mut seen = Vec::new();
        let mut codes: Vec<(u64, u32, u32)> = (0..4)
            .flat_map(|y| (0..4).map(move |x| (z_encode(x, y), x, y)))
            .collect();
        codes.sort();
        for (_, x, y) in codes {
            let q = quadrant(x, y);
            if seen.last() != Some(&q) {
                seen.push(q);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(x in any::<u32>(), y in any::<u32>()) {
            let z = z_encode(x, y);
            prop_assert_eq!(z_decode(z), (x, y));
        }

        #[test]
        fn decode_encode_roundtrip(z in any::<u64>()) {
            let (x, y) = z_decode(z);
            prop_assert_eq!(z_encode(x, y), z);
        }

        /// Monotone in each coordinate when the other is fixed.
        #[test]
        fn monotone_per_axis(x in any::<u32>(), y in any::<u32>()) {
            if x < u32::MAX {
                prop_assert!(z_encode(x, y) < z_encode(x + 1, y));
            }
            if y < u32::MAX {
                prop_assert!(z_encode(x, y) < z_encode(x, y + 1));
            }
        }
    }
}
