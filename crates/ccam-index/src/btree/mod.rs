//! A disk-page B⁺-tree mapping `u64` keys to `u64` values.
//!
//! This is CCAM's secondary index: one entry per node, keyed by node id
//! (which the road-map workloads assign in Z-order of the node's
//! coordinates, so key order is spatial order as in the paper §2.1). The
//! value packs the record's data-page address.
//!
//! The tree is built on the same [`PageStore`]/[`BufferPool`] substrate as
//! the data file, but with its **own** pool: the paper's cost model
//! "assume\[s\] that the index pages are buffered in main memory" (§3.2), so
//! index page traffic is deliberately kept out of the data-page access
//! counts. The index pool is sized generously and its stats are tracked
//! separately (available through [`BPlusTree::index_stats`] for anyone who
//! wants to model index cost, one of the paper's future-work items).
//!
//! Layout (little-endian):
//!
//! ```text
//! leaf:     [1u8 | count: u16 | next_leaf: u32 | (key: u64, val: u64)*]
//! internal: [2u8 | count: u16 | child0: u32   | (key: u64, child: u32)*]
//! ```
//!
//! An internal node with `count` keys has `count + 1` children; keys are
//! strict upper bounds for the subtree to their left (standard B⁺
//! separators).

mod node;

use std::sync::Arc;

use ccam_storage::{BufferPool, IoStats, MemPageStore, PageId, PageStore, StorageResult};

use node::{read_node, write_node, Node};

/// Result of a recursive insert: the replaced value (if the key existed)
/// plus the separator/new-page pair when the child split.
type InsertOutcome = (Option<u64>, Option<(u64, PageId)>);

/// Number of frames the dedicated index pool keeps resident. Large enough
/// that the whole index of the paper-scale networks stays in memory.
const INDEX_POOL_FRAMES: usize = 4096;

/// A B⁺-tree over `u64` keys and `u64` values.
///
/// ```
/// use ccam_index::BPlusTree;
///
/// let mut t = BPlusTree::new_mem(1024).unwrap();
/// for k in 0..100 {
///     t.insert(k, k * 10).unwrap();
/// }
/// assert_eq!(t.get(42).unwrap(), Some(420));
/// assert_eq!(t.range(10, 12).unwrap(), vec![(10, 100), (11, 110), (12, 120)]);
/// assert_eq!(t.remove(42).unwrap(), Some(420));
/// assert_eq!(t.get(42).unwrap(), None);
/// ```
pub struct BPlusTree<S: PageStore> {
    pool: BufferPool<S>,
    root: PageId,
    len: usize,
    leaf_cap: usize,
    internal_cap: usize,
}

impl BPlusTree<MemPageStore> {
    /// Creates an empty tree on a fresh in-memory store with pages of
    /// `page_size` bytes.
    pub fn new_mem(page_size: usize) -> StorageResult<Self> {
        Self::create(MemPageStore::new(page_size)?)
    }
}

impl<S: PageStore> BPlusTree<S> {
    /// Creates an empty tree on `store` (which must be empty).
    pub fn create(store: S) -> StorageResult<Self> {
        let page_size = store.page_size();
        let pool = BufferPool::new(store, INDEX_POOL_FRAMES);
        let root = pool.allocate()?;
        let (leaf_cap, internal_cap) = node::capacities(page_size);
        assert!(
            leaf_cap >= 3 && internal_cap >= 3,
            "page size {page_size} too small for a useful B+-tree"
        );
        let tree = BPlusTree {
            pool,
            root,
            len: 0,
            leaf_cap,
            internal_cap,
        };
        write_node(
            &tree.pool,
            root,
            &Node::Leaf {
                next: PageId::INVALID,
                entries: Vec::new(),
            },
        )?;
        Ok(tree)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// I/O counters of the dedicated index pool (not part of the data-page
    /// access counts the experiments report).
    pub fn index_stats(&self) -> Arc<IoStats> {
        self.pool.stats()
    }

    /// Restricts the index pool to `frames` buffered pages. The paper
    /// assumes the index fits in memory; shrinking the pool makes index
    /// I/O observable — the measurement its §5 lists as future work.
    pub fn set_buffer_capacity(&self, frames: usize) -> StorageResult<()> {
        self.pool.set_capacity(frames)
    }

    /// Number of pages the index currently occupies.
    pub fn num_pages(&self) -> usize {
        self.pool.with_store(|s| s.live_pages().len())
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> StorageResult<Option<u64>> {
        let mut page = self.root;
        loop {
            match read_node(&self.pool, page)? {
                Node::Internal { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|i| entries[i].1));
                }
            }
        }
    }

    /// Inserts `key → val`, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: u64, val: u64) -> StorageResult<Option<u64>> {
        let (old, split) = self.insert_rec(self.root, key, val)?;
        if let Some((sep, right)) = split {
            let new_root = self.pool.allocate()?;
            let old_root = self.root;
            write_node(
                &self.pool,
                new_root,
                &Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                },
            )?;
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    fn insert_rec(&mut self, page: PageId, key: u64, val: u64) -> StorageResult<InsertOutcome> {
        match read_node(&self.pool, page)? {
            Node::Leaf { next, mut entries } => {
                match entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        let old = entries[i].1;
                        entries[i].1 = val;
                        write_node(&self.pool, page, &Node::Leaf { next, entries })?;
                        Ok((Some(old), None))
                    }
                    Err(i) => {
                        entries.insert(i, (key, val));
                        if entries.len() <= self.leaf_cap {
                            write_node(&self.pool, page, &Node::Leaf { next, entries })?;
                            return Ok((None, None));
                        }
                        // Split: right half moves to a new leaf.
                        let mid = entries.len() / 2;
                        let right_entries = entries.split_off(mid);
                        let sep = right_entries[0].0;
                        let right_page = self.pool.allocate()?;
                        write_node(
                            &self.pool,
                            right_page,
                            &Node::Leaf {
                                next,
                                entries: right_entries,
                            },
                        )?;
                        write_node(
                            &self.pool,
                            page,
                            &Node::Leaf {
                                next: right_page,
                                entries,
                            },
                        )?;
                        Ok((None, Some((sep, right_page))))
                    }
                }
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                let (old, split) = self.insert_rec(children[idx], key, val)?;
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() <= self.internal_cap {
                        write_node(&self.pool, page, &Node::Internal { keys, children })?;
                        return Ok((old, None));
                    }
                    // Split the internal node; the middle key moves up.
                    let mid = keys.len() / 2;
                    let up_key = keys[mid];
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // remove up_key from the left node
                    let right_children = children.split_off(mid + 1);
                    let right_page = self.pool.allocate()?;
                    write_node(
                        &self.pool,
                        right_page,
                        &Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    )?;
                    write_node(&self.pool, page, &Node::Internal { keys, children })?;
                    Ok((old, Some((up_key, right_page))))
                } else {
                    Ok((old, None))
                }
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// Underflowing nodes borrow from or merge with a sibling, so the tree
    /// stays balanced under arbitrary delete sequences (the paper's
    /// `Delete()` removes index entries on every node deletion).
    pub fn remove(&mut self, key: u64) -> StorageResult<Option<u64>> {
        let removed = self.remove_rec(self.root, key)?;
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that lost all its keys.
        if let Node::Internal { keys, children } = read_node(&self.pool, self.root)? {
            if keys.is_empty() {
                let old_root = self.root;
                self.root = children[0];
                self.pool.free(old_root)?;
            }
        }
        Ok(removed)
    }

    fn remove_rec(&mut self, page: PageId, key: u64) -> StorageResult<Option<u64>> {
        match read_node(&self.pool, page)? {
            Node::Leaf { next, mut entries } => match entries.binary_search_by_key(&key, |e| e.0) {
                Ok(i) => {
                    let (_, v) = entries.remove(i);
                    write_node(&self.pool, page, &Node::Leaf { next, entries })?;
                    Ok(Some(v))
                }
                Err(_) => Ok(None),
            },
            Node::Internal { keys, children } => {
                let idx = child_index(&keys, key);
                let removed = self.remove_rec(children[idx], key)?;
                if removed.is_some() {
                    self.rebalance_child(page, idx)?;
                }
                Ok(removed)
            }
        }
    }

    /// After a deletion inside `children[idx]` of internal node `page`,
    /// restores the minimum-occupancy invariant by borrowing from or
    /// merging with an adjacent sibling.
    fn rebalance_child(&mut self, page: PageId, idx: usize) -> StorageResult<()> {
        let (keys, children) = match read_node(&self.pool, page)? {
            Node::Internal { keys, children } => (keys, children),
            Node::Leaf { .. } => unreachable!("rebalance_child on a leaf"),
        };
        let child = children[idx];
        let child_node = read_node(&self.pool, child)?;
        let (child_len, min) = match &child_node {
            Node::Leaf { entries, .. } => (entries.len(), self.leaf_cap / 2),
            Node::Internal { keys, .. } => (keys.len(), self.internal_cap / 2),
        };
        if child_len >= min {
            return Ok(());
        }
        // Prefer borrowing from the richer adjacent sibling.
        let left = idx.checked_sub(1).map(|i| children[i]);
        let right = children.get(idx + 1).copied();
        let mut keys = keys;
        let mut children = children;

        let sibling_len = |n: &Node| match n {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { keys, .. } => keys.len(),
        };

        let left_node = left.map(|p| read_node(&self.pool, p)).transpose()?;
        let right_node = right.map(|p| read_node(&self.pool, p)).transpose()?;
        let left_len = left_node.as_ref().map(&sibling_len).unwrap_or(0);
        let right_len = right_node.as_ref().map(sibling_len).unwrap_or(0);

        if left_len > min || right_len > min {
            // Borrow one entry/key from the richer sibling.
            if left_len >= right_len {
                let sep_idx = idx - 1;
                match (left_node.unwrap(), child_node) {
                    (
                        Node::Leaf {
                            next: lnext,
                            entries: mut lent,
                        },
                        Node::Leaf {
                            next: cnext,
                            entries: mut cent,
                        },
                    ) => {
                        let moved = lent.pop().expect("left sibling non-empty");
                        cent.insert(0, moved);
                        keys[sep_idx] = cent[0].0;
                        write_node(
                            &self.pool,
                            left.unwrap(),
                            &Node::Leaf {
                                next: lnext,
                                entries: lent,
                            },
                        )?;
                        write_node(
                            &self.pool,
                            child,
                            &Node::Leaf {
                                next: cnext,
                                entries: cent,
                            },
                        )?;
                    }
                    (
                        Node::Internal {
                            keys: mut lkeys,
                            children: mut lch,
                        },
                        Node::Internal {
                            keys: mut ckeys,
                            children: mut cch,
                        },
                    ) => {
                        // Rotate through the separator.
                        let moved_child = lch.pop().expect("left child");
                        let moved_key = lkeys.pop().expect("left key");
                        ckeys.insert(0, keys[sep_idx]);
                        cch.insert(0, moved_child);
                        keys[sep_idx] = moved_key;
                        write_node(
                            &self.pool,
                            left.unwrap(),
                            &Node::Internal {
                                keys: lkeys,
                                children: lch,
                            },
                        )?;
                        write_node(
                            &self.pool,
                            child,
                            &Node::Internal {
                                keys: ckeys,
                                children: cch,
                            },
                        )?;
                    }
                    _ => unreachable!("siblings at the same level share a kind"),
                }
            } else {
                let sep_idx = idx;
                match (child_node, right_node.unwrap()) {
                    (
                        Node::Leaf {
                            next: cnext,
                            entries: mut cent,
                        },
                        Node::Leaf {
                            next: rnext,
                            entries: mut rent,
                        },
                    ) => {
                        let moved = rent.remove(0);
                        cent.push(moved);
                        keys[sep_idx] = rent[0].0;
                        write_node(
                            &self.pool,
                            child,
                            &Node::Leaf {
                                next: cnext,
                                entries: cent,
                            },
                        )?;
                        write_node(
                            &self.pool,
                            right.unwrap(),
                            &Node::Leaf {
                                next: rnext,
                                entries: rent,
                            },
                        )?;
                    }
                    (
                        Node::Internal {
                            keys: mut ckeys,
                            children: mut cch,
                        },
                        Node::Internal {
                            keys: mut rkeys,
                            children: mut rch,
                        },
                    ) => {
                        let moved_child = rch.remove(0);
                        let moved_key = rkeys.remove(0);
                        ckeys.push(keys[sep_idx]);
                        cch.push(moved_child);
                        keys[sep_idx] = moved_key;
                        write_node(
                            &self.pool,
                            child,
                            &Node::Internal {
                                keys: ckeys,
                                children: cch,
                            },
                        )?;
                        write_node(
                            &self.pool,
                            right.unwrap(),
                            &Node::Internal {
                                keys: rkeys,
                                children: rch,
                            },
                        )?;
                    }
                    _ => unreachable!("siblings at the same level share a kind"),
                }
            }
        } else {
            // Merge with a sibling (prefer left so the leaf chain stays
            // easy to fix: survivor is always the left node).
            let (li, ri) = if left.is_some() {
                (idx - 1, idx)
            } else {
                (idx, idx + 1)
            };
            let lp = children[li];
            let rp = children[ri];
            let lnode = read_node(&self.pool, lp)?;
            let rnode = read_node(&self.pool, rp)?;
            match (lnode, rnode) {
                (
                    Node::Leaf {
                        entries: mut lent, ..
                    },
                    Node::Leaf {
                        next: rnext,
                        entries: rent,
                    },
                ) => {
                    lent.extend(rent);
                    write_node(
                        &self.pool,
                        lp,
                        &Node::Leaf {
                            next: rnext,
                            entries: lent,
                        },
                    )?;
                }
                (
                    Node::Internal {
                        keys: mut lkeys,
                        children: mut lch,
                    },
                    Node::Internal {
                        keys: rkeys,
                        children: rch,
                    },
                ) => {
                    lkeys.push(keys[li]);
                    lkeys.extend(rkeys);
                    lch.extend(rch);
                    write_node(
                        &self.pool,
                        lp,
                        &Node::Internal {
                            keys: lkeys,
                            children: lch,
                        },
                    )?;
                }
                _ => unreachable!("siblings at the same level share a kind"),
            }
            keys.remove(li);
            children.remove(ri);
            self.pool.free(rp)?;
        }
        write_node(&self.pool, page, &Node::Internal { keys, children })?;
        Ok(())
    }

    /// Returns all `(key, value)` pairs with `lo <= key <= hi`, in key
    /// order, walking the leaf chain.
    pub fn range(&self, lo: u64, hi: u64) -> StorageResult<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        // Descend to the leaf containing lo.
        let mut page = self.root;
        while let Node::Internal { keys, children } = read_node(&self.pool, page)? {
            page = children[child_index(&keys, lo)];
        }
        // Walk the chain.
        loop {
            let (next, entries) = match read_node(&self.pool, page)? {
                Node::Leaf { next, entries } => (next, entries),
                Node::Internal { .. } => unreachable!("leaf chain contains a leaf"),
            };
            for (k, v) in entries {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, v));
                }
            }
            if !next.is_valid() {
                return Ok(out);
            }
            page = next;
        }
    }

    /// All entries in key order.
    pub fn entries(&self) -> StorageResult<Vec<(u64, u64)>> {
        self.range(0, u64::MAX)
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn depth(&self) -> StorageResult<usize> {
        let mut d = 1;
        let mut page = self.root;
        loop {
            match read_node(&self.pool, page)? {
                Node::Internal { children, .. } => {
                    d += 1;
                    page = children[0];
                }
                Node::Leaf { .. } => return Ok(d),
            }
        }
    }

    /// Exhaustively verifies the B⁺-tree invariants; panics with a
    /// description on violation. Test-support API.
    pub fn check_invariants(&self) -> StorageResult<()> {
        let mut leaf_count = 0usize;
        let depth = self.depth()?;
        self.check_rec(self.root, None, None, 1, depth, &mut leaf_count)?;
        // The leaf chain visits every entry in order.
        let entries = self.entries()?;
        assert_eq!(entries.len(), self.len, "len() disagrees with leaf chain");
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "leaf chain out of order");
        }
        Ok(())
    }

    fn check_rec(
        &self,
        page: PageId,
        lo: Option<u64>,
        hi: Option<u64>,
        level: usize,
        depth: usize,
        leaves: &mut usize,
    ) -> StorageResult<()> {
        let in_bounds = |k: u64| {
            if let Some(l) = lo {
                assert!(k >= l, "key {k} below subtree bound {l}");
            }
            if let Some(h) = hi {
                assert!(k < h, "key {k} at/above subtree bound {h}");
            }
        };
        match read_node(&self.pool, page)? {
            Node::Leaf { entries, .. } => {
                assert_eq!(level, depth, "leaf at wrong depth");
                *leaves += 1;
                for w in entries.windows(2) {
                    assert!(w[0].0 < w[1].0, "unsorted leaf");
                }
                for (k, _) in &entries {
                    in_bounds(*k);
                }
                if page != self.root {
                    assert!(
                        entries.len() >= self.leaf_cap / 2,
                        "leaf underflow: {} < {}",
                        entries.len(),
                        self.leaf_cap / 2
                    );
                }
                assert!(entries.len() <= self.leaf_cap, "leaf overflow");
            }
            Node::Internal { keys, children } => {
                assert!(level < depth, "internal node at leaf depth");
                assert_eq!(children.len(), keys.len() + 1);
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "unsorted internal node");
                }
                for &k in &keys {
                    in_bounds(k);
                }
                if page != self.root {
                    assert!(keys.len() >= self.internal_cap / 2, "internal underflow");
                }
                assert!(keys.len() <= self.internal_cap, "internal overflow");
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.check_rec(child, clo, chi, level + 1, depth, leaves)?;
                }
            }
        }
        Ok(())
    }
}

/// Index of the child to descend into for `key` given separator `keys`.
#[inline]
fn child_index(keys: &[u64], key: u64) -> usize {
    // Separator keys[i] is the smallest key of children[i + 1].
    match keys.binary_search(&key) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests;
