//! On-page encoding of B⁺-tree nodes.

use ccam_storage::{BufferPool, PageId, PageStore, StorageResult};

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const HEADER: usize = 7; // tag u8 | count u16 | next_leaf-or-child0 u32
const LEAF_ENTRY: usize = 16; // key u64 | val u64
const INTERNAL_ENTRY: usize = 12; // key u64 | child u32

/// In-memory form of one tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted `(key, value)` entries plus the next-leaf link.
    Leaf {
        next: PageId,
        entries: Vec<(u64, u64)>,
    },
    /// Internal: `children.len() == keys.len() + 1`.
    Internal {
        keys: Vec<u64>,
        children: Vec<PageId>,
    },
}

/// `(leaf_capacity, internal_key_capacity)` for pages of `page_size` bytes.
pub fn capacities(page_size: usize) -> (usize, usize) {
    (
        (page_size - HEADER) / LEAF_ENTRY,
        (page_size - HEADER) / INTERNAL_ENTRY,
    )
}

/// Decodes the node stored in `page`.
pub fn read_node<S: PageStore>(pool: &BufferPool<S>, page: PageId) -> StorageResult<Node> {
    pool.with_page(page, |buf| {
        let tag = buf[0];
        let count = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        let head = u32::from_le_bytes(buf[3..7].try_into().unwrap());
        match tag {
            TAG_INTERNAL => {
                let mut keys = Vec::with_capacity(count);
                let mut children = Vec::with_capacity(count + 1);
                children.push(PageId(head));
                for i in 0..count {
                    let off = HEADER + i * INTERNAL_ENTRY;
                    keys.push(u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()));
                    children.push(PageId(u32::from_le_bytes(
                        buf[off + 8..off + 12].try_into().unwrap(),
                    )));
                }
                Node::Internal { keys, children }
            }
            // A freshly zeroed page (tag 0) decodes as an empty leaf; this
            // only happens for a brand-new root before its first write.
            _ => {
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let off = HEADER + i * LEAF_ENTRY;
                    let k = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    let v = u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
                    entries.push((k, v));
                }
                Node::Leaf {
                    next: if tag == TAG_LEAF {
                        PageId(head)
                    } else {
                        PageId::INVALID
                    },
                    entries,
                }
            }
        }
    })
}

/// Encodes `node` into `page`.
pub fn write_node<S: PageStore>(
    pool: &BufferPool<S>,
    page: PageId,
    node: &Node,
) -> StorageResult<()> {
    pool.with_page_mut(page, |buf| match node {
        Node::Leaf { next, entries } => {
            buf[0] = TAG_LEAF;
            buf[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            buf[3..7].copy_from_slice(&next.index().to_le_bytes());
            for (i, (k, v)) in entries.iter().enumerate() {
                let off = HEADER + i * LEAF_ENTRY;
                buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
            }
        }
        Node::Internal { keys, children } => {
            debug_assert_eq!(children.len(), keys.len() + 1);
            buf[0] = TAG_INTERNAL;
            buf[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            buf[3..7].copy_from_slice(&children[0].index().to_le_bytes());
            for (i, k) in keys.iter().enumerate() {
                let off = HEADER + i * INTERNAL_ENTRY;
                buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                buf[off + 8..off + 12].copy_from_slice(&children[i + 1].index().to_le_bytes());
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_storage::MemPageStore;

    fn pool() -> BufferPool<MemPageStore> {
        BufferPool::new(MemPageStore::new(256).unwrap(), 16)
    }

    #[test]
    fn leaf_roundtrip() {
        let p = pool();
        let page = p.allocate().unwrap();
        let node = Node::Leaf {
            next: PageId(9),
            entries: vec![(1, 10), (2, 20), (5, 50)],
        };
        write_node(&p, page, &node).unwrap();
        assert_eq!(read_node(&p, page).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip() {
        let p = pool();
        let page = p.allocate().unwrap();
        let node = Node::Internal {
            keys: vec![100, 200],
            children: vec![PageId(1), PageId(2), PageId(3)],
        };
        write_node(&p, page, &node).unwrap();
        assert_eq!(read_node(&p, page).unwrap(), node);
    }

    #[test]
    fn zeroed_page_reads_as_empty_leaf() {
        let p = pool();
        let page = p.allocate().unwrap();
        match read_node(&p, page).unwrap() {
            Node::Leaf { next, entries } => {
                assert!(!next.is_valid());
                assert!(entries.is_empty());
            }
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn capacities_scale_with_page_size() {
        let (l1, i1) = capacities(1024);
        let (l4, i4) = capacities(4096);
        assert!(l4 > l1 * 3);
        assert!(i4 > i1 * 3);
        assert_eq!(l1, (1024 - 7) / 16);
        assert_eq!(i1, (1024 - 7) / 12);
    }
}
