//! Unit tests for the B⁺-tree (the model-checking property tests live in
//! `tests/prop_index.rs`).

use super::*;

fn tree() -> BPlusTree<MemPageStore> {
    // Small pages force deep trees quickly (leaf cap 7, internal cap 9).
    BPlusTree::new_mem(128).unwrap()
}

#[test]
fn empty_tree_lookups() {
    let t = tree();
    assert!(t.is_empty());
    assert_eq!(t.get(42).unwrap(), None);
    assert_eq!(t.range(0, u64::MAX).unwrap(), vec![]);
    assert_eq!(t.depth().unwrap(), 1);
}

#[test]
fn insert_get_single() {
    let mut t = tree();
    assert_eq!(t.insert(5, 50).unwrap(), None);
    assert_eq!(t.get(5).unwrap(), Some(50));
    assert_eq!(t.len(), 1);
}

#[test]
fn insert_replaces_and_returns_old() {
    let mut t = tree();
    t.insert(5, 50).unwrap();
    assert_eq!(t.insert(5, 55).unwrap(), Some(50));
    assert_eq!(t.get(5).unwrap(), Some(55));
    assert_eq!(t.len(), 1);
}

#[test]
fn sequential_inserts_split_and_stay_sorted() {
    let mut t = tree();
    for k in 0..500u64 {
        t.insert(k, k * 10).unwrap();
    }
    assert_eq!(t.len(), 500);
    assert!(t.depth().unwrap() >= 3, "should have split repeatedly");
    t.check_invariants().unwrap();
    for k in 0..500u64 {
        assert_eq!(t.get(k).unwrap(), Some(k * 10), "key {k}");
    }
}

#[test]
fn reverse_inserts() {
    let mut t = tree();
    for k in (0..300u64).rev() {
        t.insert(k, k).unwrap();
    }
    t.check_invariants().unwrap();
    assert_eq!(t.entries().unwrap().len(), 300);
}

#[test]
fn interleaved_inserts() {
    let mut t = tree();
    // Strided pattern exercises splits at every position.
    for k in (0..400u64).step_by(2) {
        t.insert(k, k).unwrap();
    }
    for k in (1..400u64).step_by(2) {
        t.insert(k, k).unwrap();
    }
    t.check_invariants().unwrap();
    let entries = t.entries().unwrap();
    assert_eq!(entries.len(), 400);
    assert!(entries.windows(2).all(|w| w[0].0 + 1 == w[1].0));
}

#[test]
fn range_queries() {
    let mut t = tree();
    for k in (0..200u64).map(|k| k * 3) {
        t.insert(k, k).unwrap();
    }
    assert_eq!(
        t.range(10, 30).unwrap(),
        vec![
            (12, 12),
            (15, 15),
            (18, 18),
            (21, 21),
            (24, 24),
            (27, 27),
            (30, 30)
        ]
    );
    assert_eq!(t.range(598, u64::MAX).unwrap(), vec![]); // above max key 597
    assert_eq!(t.range(50, 40).unwrap(), vec![]); // inverted
    assert_eq!(t.range(0, 0).unwrap(), vec![(0, 0)]);
}

#[test]
fn remove_missing_key_is_none() {
    let mut t = tree();
    t.insert(1, 1).unwrap();
    assert_eq!(t.remove(2).unwrap(), None);
    assert_eq!(t.len(), 1);
}

#[test]
fn remove_all_ascending() {
    let mut t = tree();
    for k in 0..300u64 {
        t.insert(k, k).unwrap();
    }
    for k in 0..300u64 {
        assert_eq!(t.remove(k).unwrap(), Some(k), "removing {k}");
        t.check_invariants().unwrap();
    }
    assert!(t.is_empty());
    assert_eq!(t.depth().unwrap(), 1, "tree should collapse to a leaf root");
}

#[test]
fn remove_all_descending() {
    let mut t = tree();
    for k in 0..300u64 {
        t.insert(k, k).unwrap();
    }
    for k in (0..300u64).rev() {
        assert_eq!(t.remove(k).unwrap(), Some(k));
    }
    t.check_invariants().unwrap();
    assert!(t.is_empty());
}

#[test]
fn remove_middle_then_reinsert() {
    let mut t = tree();
    for k in 0..200u64 {
        t.insert(k, k).unwrap();
    }
    for k in 50..150u64 {
        t.remove(k).unwrap();
    }
    t.check_invariants().unwrap();
    assert_eq!(t.len(), 100);
    for k in 50..150u64 {
        assert_eq!(t.get(k).unwrap(), None);
        t.insert(k, k + 1000).unwrap();
    }
    t.check_invariants().unwrap();
    assert_eq!(t.get(99).unwrap(), Some(1099));
    assert_eq!(t.get(0).unwrap(), Some(0));
}

#[test]
fn mixed_workload_stays_consistent() {
    use std::collections::BTreeMap;
    let mut t = tree();
    let mut model = BTreeMap::new();
    // Deterministic pseudo-random mix without pulling in rand here.
    let mut x = 0x12345678u64;
    for _ in 0..3000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = (x >> 33) % 512;
        if (x >> 3).is_multiple_of(3) {
            assert_eq!(t.remove(key).unwrap(), model.remove(&key));
        } else {
            let val = x % 100_000;
            assert_eq!(t.insert(key, val).unwrap(), model.insert(key, val));
        }
    }
    t.check_invariants().unwrap();
    let got = t.entries().unwrap();
    let want: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(got, want);
}

#[test]
fn extreme_keys() {
    let mut t = tree();
    t.insert(0, 1).unwrap();
    t.insert(u64::MAX, 2).unwrap();
    t.insert(u64::MAX - 1, 3).unwrap();
    assert_eq!(t.get(u64::MAX).unwrap(), Some(2));
    assert_eq!(
        t.range(u64::MAX - 1, u64::MAX).unwrap(),
        vec![(u64::MAX - 1, 3), (u64::MAX, 2)]
    );
    assert_eq!(t.remove(u64::MAX).unwrap(), Some(2));
    t.check_invariants().unwrap();
}

#[test]
fn larger_pages_make_shallower_trees() {
    let mut small = BPlusTree::new_mem(128).unwrap();
    let mut big = BPlusTree::new_mem(4096).unwrap();
    for k in 0..1000u64 {
        small.insert(k, k).unwrap();
        big.insert(k, k).unwrap();
    }
    assert!(big.depth().unwrap() < small.depth().unwrap());
    small.check_invariants().unwrap();
    big.check_invariants().unwrap();
}
