#![warn(missing_docs)]

//! Index substrate for the CCAM reproduction.
//!
//! * [`zorder`] — Morton (Z-order) encoding of 2-D coordinates. The paper
//!   orders CCAM's secondary index by "a B⁺ tree with Z-ordering of the
//!   x, y coordinates" (§2.1); the road-map generator assigns node ids in
//!   Z-order so the id order *is* the spatial order, as in the paper.
//! * [`btree`] — a disk-page B⁺-tree mapping `u64` keys to `u64` values,
//!   used as CCAM's secondary index (node-id → data-page address).
//! * [`gridfile`] — the Grid File of Nievergelt et al. \[21\], both a
//!   spatial index and the clustering engine behind the Grid-File access
//!   method the paper compares against.
//! * [`rtree`] — Guttman's R-tree \[11\], the paper's other suggested
//!   alternative secondary index (§2.1).

pub mod btree;
pub mod gridfile;
pub mod rtree;
pub mod zorder;

pub use btree::BPlusTree;
pub use gridfile::{BucketId, GridFile};
pub use rtree::{RTree, Rect};
pub use zorder::{z_decode, z_encode};
