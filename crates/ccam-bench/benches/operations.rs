//! Criterion micro-benchmarks for the network operations (Find,
//! Get-successors, route evaluation, delete/insert) on CCAM-S vs
//! BFS-AM — the CPU-time complement to the page-access counts the paper
//! reports.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

use ccam_core::am::{AccessMethod, CcamBuilder, TopoAm, TraversalOrder};
use ccam_core::query::route::evaluate_route;
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::walks::random_walk_routes;
use ccam_graph::Network;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_network() -> Network {
    // A quarter-scale road map keeps bench wall time low.
    road_map(&RoadMapConfig {
        grid_w: 17,
        grid_h: 17,
        removed_nodes: 4,
        target_segments: 440,
        target_directed: 780,
        cell: 64,
        jitter: 24,
        seed: 7,
    })
}

fn ops(c: &mut Criterion) {
    let net = bench_network();
    let ccam: Box<dyn AccessMethod> =
        Box::new(CcamBuilder::new(1024).build_static(&net).expect("ccam"));
    let bfs: Box<dyn AccessMethod> = Box::new(
        TopoAm::create(
            &net,
            1024,
            TraversalOrder::BreadthFirst,
            None,
            &HashMap::new(),
        )
        .expect("bfs"),
    );
    let ids = net.node_ids();
    let routes = random_walk_routes(&net, 20, 20, 3);

    let mut group = c.benchmark_group("operations");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for (label, am) in [("ccam", &ccam), ("bfs", &bfs)] {
        group.bench_function(format!("find/{label}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 7) % ids.len();
                black_box(am.find(ids[i]).unwrap())
            })
        });
        group.bench_function(format!("get_successors/{label}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 7) % ids.len();
                black_box(am.get_successors(ids[i]).unwrap())
            })
        });
        group.bench_function(format!("route_eval_L20/{label}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % routes.len();
                am.file().pool().clear().unwrap();
                black_box(evaluate_route(am.as_ref(), &routes[i]).unwrap())
            })
        });
    }
    group.finish();
}

fn updates(c: &mut Criterion) {
    let net = bench_network();
    let ids = net.node_ids();
    let mut group = c.benchmark_group("updates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    group.bench_function("delete_insert_roundtrip/ccam", |b| {
        let mut am = CcamBuilder::new(1024).build_static(&net).expect("ccam");
        let mut i = 0;
        b.iter(|| {
            i = (i + 13) % ids.len();
            let del = am.delete_node(ids[i]).unwrap().unwrap();
            am.insert_node(&del.data, &del.incoming).unwrap();
        })
    });
    group.finish();
}

fn queries(c: &mut Criterion) {
    use ccam_core::query::search::a_star;
    use ccam_core::query::traversal::reachable_within;
    let net = bench_network();
    let am = CcamBuilder::new(1024).build_static(&net).expect("ccam");
    let ids = net.node_ids();
    let mut group = c.benchmark_group("queries");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group.bench_function("a_star/ccam", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 41) % ids.len();
            let goal = ids[(i * 13 + 7) % ids.len()];
            black_box(a_star(&am, ids[i], goal).unwrap())
        })
    });
    group.bench_function("reachable_within_60/ccam", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 29) % ids.len();
            black_box(reachable_within(&am, ids[i], 60).unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(benches, ops, updates, queries);
criterion_main!(benches);
