//! Criterion benchmarks for the storage/index substrates: slotted-page
//! record churn, B⁺-tree point ops, grid-file inserts and Z-order
//! encoding.

use std::hint::black_box;
use std::time::Duration;

use ccam_index::gridfile::GridFile;
use ccam_index::zorder::{z_decode, z_encode};
use ccam_index::BPlusTree;
use ccam_storage::SlottedPage;
use criterion::{criterion_group, criterion_main, Criterion};

fn slotted(c: &mut Criterion) {
    let mut group = c.benchmark_group("slotted_page");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("insert_delete_cycle", |b| {
        let mut buf = vec![0u8; 1024];
        let mut page = SlottedPage::init(&mut buf);
        let rec = [0xabu8; 64];
        b.iter(|| {
            let mut slots = [0u16; 8];
            for s in &mut slots {
                *s = page.insert(&rec).unwrap();
            }
            for s in slots {
                page.delete(s).unwrap();
            }
        })
    });
    group.finish();
}

fn btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("bptree");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new_mem(1024).unwrap();
            for k in 0..10_000u64 {
                t.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k).unwrap();
            }
            black_box(t.len())
        })
    });
    group.bench_function("get_hot", |b| {
        let mut t = BPlusTree::new_mem(1024).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k).unwrap();
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 4999) % 10_000;
            black_box(t.get(k).unwrap())
        })
    });
    group.finish();
}

fn grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("gridfile");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("insert_2k_points", |b| {
        b.iter(|| {
            let mut g: GridFile<u64> = GridFile::new(512);
            let mut x = 1u64;
            for i in 0..2000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                g.insert((x >> 40) as u32, (x >> 16) as u32 & 0xFFFFFF, 80, i);
            }
            black_box(g.num_buckets())
        })
    });
    group.finish();
}

fn zorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("zorder");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    group.bench_function("encode_decode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9E3779B9);
            let z = z_encode(x, !x);
            black_box(z_decode(z))
        })
    });
    group.finish();
}

fn rtree(c: &mut Criterion) {
    use ccam_index::rtree::{RTree, Rect};
    let mut group = c.benchmark_group("rtree");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("insert_2k_points", |b| {
        b.iter(|| {
            let mut t: RTree<u64> = RTree::new(16);
            let mut x = 1u64;
            for i in 0..2000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t.insert(Rect::point((x >> 40) as u32, (x >> 16) as u32 & 0xFFFFF), i);
            }
            black_box(t.len())
        })
    });
    group.bench_function("window_query", |b| {
        let mut t: RTree<u64> = RTree::new(16);
        let mut x = 1u64;
        for i in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert(
                Rect::point((x >> 40) as u32 % 10_000, (x >> 16) as u32 % 10_000),
                i,
            );
        }
        let mut q = 0u32;
        b.iter(|| {
            q = q.wrapping_add(977) % 9000;
            black_box(t.window_query(Rect::new(q, q, q + 1000, q + 1000)).len())
        })
    });
    group.finish();
}

criterion_group!(benches, slotted, btree, grid, zorder, rtree);
criterion_main!(benches);
