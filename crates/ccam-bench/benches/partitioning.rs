//! Criterion benchmarks for the graph-partitioning substrate: the CPU
//! cost of `cluster-nodes-into-pages()` under each heuristic (the
//! paper's §5 flags reorganization CPU cost as future work — this is the
//! number that conversation would start from).

use std::hint::black_box;
use std::time::Duration;

use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_partition::{cluster_nodes_into_pages, PartGraph, Partitioner};
use criterion::{criterion_group, criterion_main, Criterion};

/// The benchmark road map as a partitioning graph with record-byte node
/// sizes.
fn part_graph() -> PartGraph {
    let net = road_map(&RoadMapConfig {
        grid_w: 17,
        grid_h: 17,
        removed_nodes: 4,
        target_segments: 440,
        target_directed: 780,
        cell: 64,
        jitter: 24,
        seed: 7,
    });
    let nodes: Vec<_> = net.nodes().collect();
    let idx: std::collections::HashMap<_, _> =
        nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let sizes: Vec<usize> = nodes
        .iter()
        .map(|n| ccam_core::file::clustering_weight(n))
        .collect();
    let mut edges = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        for e in &n.successors {
            if let Some(&j) = idx.get(&e.to) {
                edges.push((i, j, 1u64));
            }
        }
    }
    PartGraph::new(sizes, &edges)
}

fn clustering(c: &mut Criterion) {
    let g = part_graph();
    let mut group = c.benchmark_group("cluster_nodes_into_pages");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, p) in [
        ("ratio_cut", Partitioner::RatioCut),
        ("fm", Partitioner::FiducciaMattheyses),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(cluster_nodes_into_pages(&g, 1018, p)))
        });
    }
    group.finish();
}

fn bipartition(c: &mut Criterion) {
    let g = part_graph();
    let mut group = c.benchmark_group("two_way_partition");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, p) in [
        ("ratio_cut", Partitioner::RatioCut),
        ("fm", Partitioner::FiducciaMattheyses),
        ("kl", Partitioner::KernighanLin),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(p.bipartition(&g, g.total_size() / 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, clustering, bipartition);
criterion_main!(benches);
