//! Ablation — network-size scaling.
//!
//! The paper motivates CCAM with large road databases ("road-maps are
//! really large databases \[16, 1\], and thus may not fit inside main
//! memory", §1.2) but evaluates one fixed map. This experiment sweeps
//! the network size across a factor of ~16 and verifies the headline
//! properties are scale-stable: CCAM-S's CRR advantage over DFS-AM /
//! BFS-AM, and the per-route I/O gap. It also reports create() wall
//! time, the practical cost of static clustering (why CCAM-D exists).

use std::collections::HashMap;
use std::time::Instant;

use ccam_bench::{avg_route_io, render_table};
use ccam_core::am::{AccessMethod, CcamBuilder, TopoAm, TraversalOrder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::walks::random_walk_routes;

fn config(grid: u32, seed: u64) -> RoadMapConfig {
    RoadMapConfig::scaled(grid, seed)
}

fn main() {
    println!("Scaling: CRR and route I/O vs network size  (block = 1024 B)\n");
    let header: Vec<String> = [
        "nodes",
        "edges",
        "CCAM CRR",
        "DFS CRR",
        "BFS CRR",
        "CCAM rt-I/O",
        "DFS rt-I/O",
        "create",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for grid in [9u32, 17, 33, 47] {
        let net = road_map(&config(grid, 1995));
        let w = HashMap::new();
        let t0 = Instant::now();
        let ccam = CcamBuilder::new(1024).build_static(&net).expect("ccam");
        let dt = t0.elapsed();
        let dfs = TopoAm::create(&net, 1024, TraversalOrder::DepthFirst, None, &w).expect("dfs");
        let bfs = TopoAm::create(&net, 1024, TraversalOrder::BreadthFirst, None, &w).expect("bfs");
        let routes = random_walk_routes(&net, 60, 20, 7);
        let ccam_io = avg_route_io(&ccam, &routes);
        let dfs_io = avg_route_io(&dfs, &routes);
        let (c, d, b) = (
            ccam.crr().expect("crr"),
            dfs.crr().expect("crr"),
            bfs.crr().expect("crr"),
        );
        ratios.push((c / d.max(1e-9), dfs_io / ccam_io.max(1e-9)));
        rows.push(vec![
            format!("{}", net.len()),
            format!("{}", net.num_edges()),
            format!("{c:.4}"),
            format!("{d:.4}"),
            format!("{b:.4}"),
            format!("{ccam_io:.2}"),
            format!("{dfs_io:.2}"),
            format!("{dt:.0?}"),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!("shape checks:");
    println!(
        "  [{}] CCAM CRR advantage over DFS-AM holds at every scale",
        if ratios.iter().all(|(r, _)| *r > 1.0) {
            "ok"
        } else {
            "MISS"
        }
    );
    println!(
        "  [{}] CCAM route I/O advantage holds at every scale",
        if ratios.iter().all(|(_, r)| *r > 1.0) {
            "ok"
        } else {
            "MISS"
        }
    );
}
