//! Ablation — secondary-index access cost.
//!
//! The paper's cost model "assume\[s\] that the index pages are buffered in
//! main memory" (§3.2) and flags modelling index cost as future work
//! (§5: "access cost for secondary indexes should be modeled and
//! evaluated"). This experiment does that evaluation: it shrinks the
//! B⁺-tree's buffer and counts index page accesses alongside the data
//! page accesses for the Figure 6 route workload.
//!
//! Expected shape: with a generous index buffer the index cost vanishes
//! (validating the paper's assumption); with a 1-frame buffer every
//! `Find()` pays the full root-to-leaf path, and — because route
//! evaluation resolves most successors from the *data* buffer without
//! touching the index — CCAM's high CRR shields it from index cost too.

use ccam_bench::{benchmark_network, render_table, EXPERIMENT_SEED};
use ccam_core::am::{AccessMethod, CcamBuilder, TopoAm, TraversalOrder};
use ccam_core::query::route::evaluate_route;
use ccam_graph::walks::random_walk_routes;
use std::collections::HashMap;

fn main() {
    let net = benchmark_network();
    let block = 2048;
    let routes = random_walk_routes(&net, 100, 20, EXPERIMENT_SEED + 60);
    println!("Ablation: secondary-index access cost  (block = {block} B, routes of 20 nodes)\n");

    let w = HashMap::new();
    let methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(CcamBuilder::new(block).build_static(&net).expect("ccam")),
        Box::new(TopoAm::create(&net, block, TraversalOrder::BreadthFirst, None, &w).expect("bfs")),
    ];
    let index_buffers = [1usize, 2, 4, 16, 64];

    let header: Vec<String> = std::iter::once("method / idx frames".to_string())
        .chain(index_buffers.iter().map(|b| format!("{b}")))
        .chain(["data I/O".to_string(), "idx pages".to_string()])
        .collect();
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = Vec::new();
    for am in &methods {
        let mut idx_io = Vec::new();
        let mut data_io = 0f64;
        for &frames in &index_buffers {
            am.file().pool().set_capacity(1).expect("data buffer");
            am.file()
                .set_index_buffer_capacity(frames)
                .expect("index buffer");
            let (mut d_total, mut i_total) = (0u64, 0u64);
            for r in &routes {
                am.file().pool().clear().expect("clear");
                let before_d = am.stats().snapshot();
                let before_i = am.file().index_stats().snapshot();
                let eval = evaluate_route(am.as_ref(), r).expect("route");
                debug_assert!(eval.complete);
                d_total += am.stats().snapshot().since(&before_d).physical_reads;
                i_total += am
                    .file()
                    .index_stats()
                    .snapshot()
                    .since(&before_i)
                    .physical_reads;
            }
            idx_io.push(i_total as f64 / routes.len() as f64);
            data_io = d_total as f64 / routes.len() as f64;
        }
        rows.push(
            std::iter::once(am.name().to_string())
                .chain(idx_io.iter().map(|v| format!("{v:.2}")))
                .chain([
                    format!("{data_io:.2}"),
                    format!("{}", am.file().index_pages()),
                ])
                .collect(),
        );
        series.push(idx_io);
        // Restore the in-memory-index assumption.
        am.file().set_index_buffer_capacity(4096).expect("restore");
    }
    println!("(cells: avg index page accesses per route at each index-buffer size)\n");
    println!("{}", render_table(&header, &rows));

    println!("shape checks:");
    for (m, s) in methods.iter().zip(&series) {
        println!(
            "  [{}] {}: index cost falls monotonically with index buffer",
            if s.windows(2).all(|w| w[1] <= w[0] + 1e-9) {
                "ok"
            } else {
                "MISS"
            },
            m.name()
        );
        println!(
            "  [{}] {}: index cost ~0 with a large buffer (paper's assumption)",
            if *s.last().expect("nonempty") < 0.5 {
                "ok"
            } else {
                "MISS"
            },
            m.name()
        );
    }
    println!(
        "  [{}] CCAM pays less index I/O than BFS-AM at 1 frame (high CRR avoids Find())",
        if series[0][0] < series[1][0] {
            "ok"
        } else {
            "MISS"
        }
    );
}
