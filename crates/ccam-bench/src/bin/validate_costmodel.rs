//! Cost-model validation — predicted vs. observed page accesses per
//! operation class, for every access method on the benchmark road map.
//!
//! Where `table5_operation_costs` reproduces the paper's Table 5 layout,
//! this binary drives the reusable [`ccam_core::validate`] harness: each
//! method runs the same deterministic workload (find / get-a-successor /
//! get-successors / route / delete + re-insert) under the buffering
//! assumptions of §3.2, and the per-class relative error of the
//! algebraic model is reported. Large errors flag either a regression in
//! the I/O accounting or a placement drift — the numbers, not the
//! prose, are the spec.

use std::collections::HashMap;

use ccam_bench::{benchmark_network, render_table};
use ccam_core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam_core::reorg::ReorgPolicy;
use ccam_core::validate::{validate, ValidationConfig};

fn main() {
    let net = benchmark_network();
    let block = 1024;
    println!("Cost-model validation  (block = {block} B)\n");

    let w = HashMap::new();
    let methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(
            CcamBuilder::new(block)
                .policy(ReorgPolicy::FirstOrder)
                .build_static(&net)
                .expect("CCAM"),
        ),
        Box::new(TopoAm::create(&net, block, TraversalOrder::DepthFirst, None, &w).expect("DFS")),
        Box::new(GridAm::create(&net, block).expect("Grid")),
        Box::new(TopoAm::create(&net, block, TraversalOrder::BreadthFirst, None, &w).expect("BFS")),
    ];

    let cfg = ValidationConfig {
        sample: 128,
        routes: 32,
        route_len: 20,
        policy: ReorgPolicy::FirstOrder,
        ..ValidationConfig::default()
    };

    let header: Vec<String> = [
        "method",
        "class",
        "trials",
        "predicted",
        "observed",
        "rel.err",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for mut am in methods {
        let name = am.name().to_string();
        let report = validate(am.as_mut(), &cfg).expect("validate");
        for c in &report.classes {
            rows.push(vec![
                name.clone(),
                c.class.clone(),
                c.trials.to_string(),
                format!("{:.3}", c.predicted),
                format!("{:.3}", c.observed),
                format!("{:.1}%", c.rel_error() * 100.0),
            ]);
        }
        rows.push(vec![
            name,
            "(mean/max)".into(),
            String::new(),
            String::new(),
            String::new(),
            format!(
                "{:.1}% / {:.1}%",
                report.mean_rel_error() * 100.0,
                report.max_rel_error() * 100.0
            ),
        ]);
    }
    println!("{}", render_table(&header, &rows));
}
