//! Ablation — buffer size vs route-evaluation I/O.
//!
//! The paper's Figure 6 fixes "one buffer with the size of one data
//! page". This ablation sweeps the buffer capacity: with more frames a
//! route that revisits a neighborhood stops re-faulting its pages, so
//! I/O falls — and the *relative* advantage of connectivity clustering
//! shrinks as buffering hides placement quality.

use ccam_bench::{benchmark_network, build_all_methods, render_table, EXPERIMENT_SEED};
use ccam_core::query::route::evaluate_route;
use ccam_graph::walks::random_walk_routes;

fn main() {
    let net = benchmark_network();
    let block = 2048;
    let buffers = [1usize, 2, 4, 8, 16];
    let routes = random_walk_routes(&net, 100, 30, EXPERIMENT_SEED + 30);
    println!(
        "Ablation: buffer frames vs route-evaluation I/O  (block = {block} B, L = 30, 100 routes)\n"
    );

    let methods = build_all_methods(&net, block, None, false);
    let header: Vec<String> = std::iter::once("method".to_string())
        .chain(buffers.iter().map(|b| format!("{b} frames")))
        .collect();
    let mut rows = Vec::new();
    let mut series_by_method = Vec::new();
    for am in &methods {
        let mut series = Vec::new();
        for &frames in &buffers {
            am.file().pool().set_capacity(frames).expect("capacity");
            let mut total = 0u64;
            for r in &routes {
                am.file().pool().clear().expect("clear");
                let before = am.stats().snapshot();
                evaluate_route(am.as_ref(), r).expect("route");
                total += am.stats().snapshot().since(&before).physical_reads;
            }
            series.push(total as f64 / routes.len() as f64);
        }
        rows.push(
            std::iter::once(am.name().to_string())
                .chain(series.iter().map(|v| format!("{v:.2}")))
                .collect(),
        );
        series_by_method.push((am.name().to_string(), series));
    }
    println!("{}", render_table(&header, &rows));

    println!("shape checks:");
    for (name, series) in &series_by_method {
        let ok = series.windows(2).all(|w| w[1] <= w[0] + 1e-9);
        println!(
            "  [{}] {name}: I/O non-increasing in buffer size",
            if ok { "ok" } else { "MISS" }
        );
    }
    let gap = |i: usize| {
        let ccam = &series_by_method[0].1;
        let bfs = &series_by_method.last().expect("bfs").1;
        bfs[i] / ccam[i]
    };
    println!(
        "  [{}] clustering advantage shrinks with buffering (BFS/CCAM ratio falls)",
        if gap(buffers.len() - 1) <= gap(0) {
            "ok"
        } else {
            "MISS"
        }
    );
}
