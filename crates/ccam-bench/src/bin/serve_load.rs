//! Closed-loop load generator for `ccam serve` — the serving-layer
//! counterpart of `perf_hotpaths`, writing `BENCH_PR6.json`.
//!
//! ```text
//! serve_load --addr HOST:PORT --net FILE
//!            [--connections N] [--batch N] [--seconds S] [--seed N]
//!            [--mix find:succ:route:agg] [--out FILE]
//!            [--check-baseline FILE]
//! ```
//!
//! Each connection is closed-loop: it sends one batch frame, blocks for
//! the response, then sends the next — so offered load self-regulates
//! to server capacity and the reported latencies are honest round-trip
//! times, not coordinated-omission artifacts. The workload is
//! deterministic per seed: connection *i* draws from
//! `StdRng::seed_from_u64(seed + i)` over the node ids and 4-hop walks
//! of the `--net` file (which must be the file the served database was
//! built from). Batches the server sheds wholesale as `Overloaded` are
//! retried through the client's seeded jittered backoff
//! (`Client::call_with_retry`) — the behavior of a production caller,
//! so reported QPS reflects goodput under backpressure, not raw
//! rejection throughput.
//!
//! Reported: sustained QPS (completed, non-rejected requests/sec),
//! batch round-trip latency p50/p95/p99 in microseconds, overload
//! rejections, and — via a final `Stats` op — the server-side request
//! counters and physical-I/O gauges. `--check-baseline FILE` exits 1
//! when a previous run's QPS is more than 2x the fresh one (the same
//! regression gate `perf_hotpaths` uses).

use std::io::Write as _;
use std::time::{Duration, Instant};

use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::{load_network, Network, NodeId};
use ccam_server::client::{Backoff, Client};
use ccam_server::protocol::{Request, Response, Status};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Config {
    addr: String,
    net: Option<String>,
    connections: usize,
    batch: usize,
    seconds: u64,
    seed: u64,
    /// find : get_successors : route : range_aggregate weights.
    mix: [u32; 4],
    out: String,
    check_baseline: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: "127.0.0.1:4791".to_string(),
        net: None,
        connections: 4,
        batch: 16,
        seconds: 5,
        seed: 42,
        mix: [60, 25, 10, 5],
        out: "BENCH_PR6.json".to_string(),
        check_baseline: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| die("missing value")).clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = value(&mut i),
            "--net" => cfg.net = Some(value(&mut i)),
            "--connections" => cfg.connections = value(&mut i).parse().unwrap_or(4),
            "--batch" => cfg.batch = value(&mut i).parse().unwrap_or(16),
            "--seconds" => cfg.seconds = value(&mut i).parse().unwrap_or(5),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or(42),
            "--mix" => {
                let v = value(&mut i);
                let parts: Vec<u32> = v.split(':').filter_map(|p| p.parse().ok()).collect();
                if parts.len() == 4 {
                    cfg.mix = [parts[0], parts[1], parts[2], parts[3]];
                } else {
                    die("--mix wants find:succ:route:agg");
                }
            }
            "--out" => cfg.out = value(&mut i),
            "--check-baseline" => cfg.check_baseline = Some(value(&mut i)),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("serve_load: {msg}");
    std::process::exit(2);
}

/// The node ids and a pool of short walks drawn from the network file —
/// the same id universe the served database holds.
struct Workload {
    ids: Vec<NodeId>,
    walks: Vec<Vec<NodeId>>,
}

fn workload_from(net: &Network, seed: u64) -> Workload {
    let ids = net.node_ids();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut walks = Vec::with_capacity(256);
    for _ in 0..256 {
        let mut walk = vec![ids[rng.random_range(0..ids.len())]];
        for _ in 0..4 {
            let cur = *walk.last().unwrap();
            let Some(node) = net.nodes().find(|n| n.id == cur) else {
                break;
            };
            if node.successors.is_empty() {
                break;
            }
            let e = &node.successors[rng.random_range(0..node.successors.len())];
            walk.push(e.to);
        }
        walks.push(walk);
    }
    Workload { ids, walks }
}

fn sample_request(rng: &mut StdRng, w: &Workload, mix: &[u32; 4]) -> Request {
    let total: u32 = mix.iter().sum();
    let mut pick = rng.random_range(0..total.max(1));
    let id = w.ids[rng.random_range(0..w.ids.len())];
    if pick < mix[0] {
        return Request::Find(id);
    }
    pick -= mix[0];
    if pick < mix[1] {
        return Request::GetSuccessors(id);
    }
    pick -= mix[1];
    let walk = &w.walks[rng.random_range(0..w.walks.len())];
    if pick < mix[2] {
        return Request::Route(walk.clone());
    }
    Request::RangeAggregate(walk.windows(2).map(|p| (p[0], p[1])).collect())
}

#[derive(Default)]
struct ConnResult {
    ok_requests: u64,
    overloaded: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

fn run_connection(
    cfg: &Config,
    w: &Workload,
    conn_index: usize,
    deadline: Instant,
) -> std::io::Result<ConnResult> {
    let mut client = Client::connect(&*cfg.addr)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed + conn_index as u64);
    // Shed batches (all-Overloaded rejections) are resent after a
    // short jittered backoff — seeded per connection, so rejected
    // connections desynchronize deterministically.
    let mut backoff = Backoff::new(
        3,
        Duration::from_micros(200),
        Duration::from_millis(5),
        cfg.seed ^ conn_index as u64,
    );
    let mut res = ConnResult::default();
    while Instant::now() < deadline {
        let batch: Vec<Request> = (0..cfg.batch)
            .map(|_| sample_request(&mut rng, w, &cfg.mix))
            .collect();
        let start = Instant::now();
        let resps = client.call_with_retry(&batch, &mut backoff)?;
        res.latencies_us.push(start.elapsed().as_micros() as u64);
        for r in &resps {
            match r {
                Response::Error(Status::Overloaded, _) => res.overloaded += 1,
                Response::Error(Status::NotFound, _) => res.ok_requests += 1,
                Response::Error(..) => res.errors += 1,
                _ => res.ok_requests += 1,
            }
        }
    }
    Ok(res)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let cfg = parse_args();
    // Without --net, fall back to the default paper-scale road map the
    // repo's harnesses generate (seed 5 lattice) — only valid when the
    // server was built from the same generator defaults.
    let net = match &cfg.net {
        Some(path) => load_network(std::path::Path::new(path))
            .unwrap_or_else(|e| die(&format!("--net {path}: {e}"))),
        None => road_map(&RoadMapConfig {
            grid_w: 40,
            grid_h: 40,
            removed_nodes: 32,
            target_segments: 2800,
            target_directed: 5000,
            cell: 64,
            jitter: 24,
            seed: 5,
        }),
    };
    let w = workload_from(&net, cfg.seed);
    eprintln!(
        "serve_load: {} connections x batch {} against {} for {}s over {} nodes",
        cfg.connections,
        cfg.batch,
        cfg.addr,
        cfg.seconds,
        w.ids.len()
    );

    let wall = Instant::now();
    let deadline = wall + Duration::from_secs(cfg.seconds);
    let results: Vec<ConnResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|i| {
                let cfg = &cfg;
                let w = &w;
                s.spawn(move || run_connection(cfg, w, i, deadline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| die("connection thread panicked"))
                    .unwrap_or_else(|e| die(&format!("connection failed: {e}")))
            })
            .collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut overloaded, mut errors) = (0u64, 0u64, 0u64);
    for r in &results {
        ok += r.ok_requests;
        overloaded += r.overloaded;
        errors += r.errors;
        latencies.extend_from_slice(&r.latencies_us);
    }
    latencies.sort_unstable();
    let qps = ok as f64 / elapsed;
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    // Server-side view, via the protocol itself.
    let stats_json = Client::connect(&*cfg.addr)
        .and_then(|mut c| c.call(&[Request::Stats]))
        .ok()
        .and_then(|resps| match resps.into_iter().next() {
            Some(Response::StatsJson(json)) => Some(json),
            _ => None,
        });
    let (srv_requests, srv_reads, srv_hits) = match &stats_json {
        Some(json) => (
            extract_number(json, "serve.requests").unwrap_or(0.0),
            extract_number(json, "io.physical_reads").unwrap_or(0.0),
            extract_number(json, "io.buffer_hits").unwrap_or(0.0),
        ),
        None => (0.0, 0.0, 0.0),
    };

    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"config\": {{\n    \"addr\": \"{}\",\n    \"connections\": {},\n    \"batch\": {},\n    \"seconds\": {},\n    \"seed\": {},\n    \"mix\": \"{}:{}:{}:{}\",\n    \"nodes\": {}\n  }},\n  \"results\": {{\n    \"qps\": {:.1},\n    \"ok_requests\": {},\n    \"overloaded\": {},\n    \"errors\": {},\n    \"batches\": {},\n    \"p50_us\": {},\n    \"p95_us\": {},\n    \"p99_us\": {},\n    \"server_requests_total\": {},\n    \"server_physical_reads\": {},\n    \"server_buffer_hits\": {}\n  }}\n}}\n",
        cfg.addr,
        cfg.connections,
        cfg.batch,
        cfg.seconds,
        cfg.seed,
        cfg.mix[0],
        cfg.mix[1],
        cfg.mix[2],
        cfg.mix[3],
        w.ids.len(),
        qps,
        ok,
        overloaded,
        errors,
        latencies.len(),
        p50,
        p95,
        p99,
        srv_requests,
        srv_reads,
        srv_hits,
    );
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("--out {}: {e}", cfg.out)));
    println!(
        "qps {qps:.0}  p50 {p50}us  p95 {p95}us  p99 {p99}us  ok {ok}  overloaded {overloaded}  errors {errors}"
    );
    let _ = std::io::stdout().flush();

    if errors > 0 {
        eprintln!("serve_load: {errors} requests failed server-side");
        std::process::exit(1);
    }
    if let Some(path) = &cfg.check_baseline {
        let base = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("--check-baseline {path}: {e}")));
        let base_qps = extract_number(&base, "qps")
            .unwrap_or_else(|| die(&format!("--check-baseline {path}: no qps")));
        let ratio = base_qps / qps.max(1.0);
        eprintln!("serve_load: baseline qps {base_qps:.0}, current {qps:.0}, ratio {ratio:.2}");
        if ratio > 2.0 {
            eprintln!("serve_load: REGRESSION — current throughput under half of baseline");
            std::process::exit(1);
        }
    }
}
