//! Ablation — workload model: random walks vs commuter shortest paths.
//!
//! The paper generates its Figure 6 routes "by performing random walks on
//! the network" (§4.3), but its motivating workload is commuters
//! "evaluating a set of familiar routes" between fixed origins and
//! destinations (§1.1) — which are shortest paths, not walks. This
//! ablation checks that CCAM's advantage is not an artifact of the walk
//! model: both workloads are evaluated per nominal route hop so the
//! numbers are comparable across their different lengths.

use ccam_bench::{benchmark_network, build_all_methods, render_table, EXPERIMENT_SEED};
use ccam_core::query::route::evaluate_route;
use ccam_graph::walks::{commuter_routes, random_walk_routes, Route};

fn main() {
    let net = benchmark_network();
    let block = 2048;
    println!(
        "Ablation: workload model — random walks vs commuter shortest paths  (block = {block} B)\n"
    );

    let walks = random_walk_routes(&net, 100, 20, EXPERIMENT_SEED + 70);
    let commutes = commuter_routes(&net, 100, EXPERIMENT_SEED + 71);
    let avg_len = |rs: &[Route]| rs.iter().map(|r| r.len()).sum::<usize>() as f64 / rs.len() as f64;
    println!(
        "workloads: 100 walks of L=20; 100 commutes of avg L={:.1}\n",
        avg_len(&commutes)
    );

    let methods = build_all_methods(&net, block, None, false);
    let header: Vec<String> = ["method", "walk I/O per hop", "commute I/O per hop"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut per_hop: Vec<(String, f64, f64)> = Vec::new();
    for am in &methods {
        am.file().pool().set_capacity(1).expect("buffer");
        let cost = |routes: &[Route]| -> f64 {
            let mut io = 0u64;
            let mut hops = 0usize;
            for r in routes {
                am.file().pool().clear().expect("clear");
                let before = am.stats().snapshot();
                let eval = evaluate_route(am.as_ref(), r).expect("route");
                debug_assert!(eval.complete);
                io += am.stats().snapshot().since(&before).physical_reads;
                hops += r.len();
            }
            io as f64 / hops as f64
        };
        let w = cost(&walks);
        let c = cost(&commutes);
        rows.push(vec![
            am.name().to_string(),
            format!("{w:.3}"),
            format!("{c:.3}"),
        ]);
        per_hop.push((am.name().to_string(), w, c));
    }
    println!("{}", render_table(&header, &rows));

    println!("shape checks:");
    let ccam = per_hop
        .iter()
        .find(|(n, _, _)| n == "CCAM-S")
        .expect("ccam");
    for (name, w, c) in &per_hop {
        if name == "CCAM-S" {
            continue;
        }
        println!(
            "  [{}] CCAM-S beats {name} under BOTH workload models",
            if ccam.1 < *w && ccam.2 < *c {
                "ok"
            } else {
                "MISS"
            }
        );
    }
}
