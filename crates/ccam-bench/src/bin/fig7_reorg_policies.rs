//! Figure 7 — "Effect of the Reorganization Policies".
//!
//! The paper inserts 20% of the Minneapolis road map's nodes into a CCAM
//! file built from the remaining 80% and tracks, per policy (first /
//! second / higher order), (a) the average I/O cost per insertion and
//! (b) the CRR trajectory (§4.4).
//!
//! Expected shape (paper): higher-order I/O far above first/second
//! (which are nearly equal and flat); first-order ends with the lowest
//! CRR; higher-order CRR only slightly above second-order; CRR drifts
//! down for every policy as the file densifies.

use std::collections::HashSet;

use ccam_bench::{benchmark_network, measure_io, render_table, sample_nodes, EXPERIMENT_SEED};
use ccam_core::am::{AccessMethod, CcamBuilder};
use ccam_core::reorg::ReorgPolicy;
use ccam_graph::{Network, NodeData, NodeId};

/// Report a sample every this many insertions.
const REPORT_EVERY: usize = 27;

fn main() {
    let net = benchmark_network();
    let block = 1024;
    println!(
        "Figure 7: reorganization policies during insertion of 20% of the road map  (block = {block} B)\n"
    );

    // Hold out 20% of the nodes; the base file stores the rest.
    let held_out: Vec<NodeId> = sample_nodes(&net, 0.2, EXPERIMENT_SEED + 2);
    let held_set: HashSet<NodeId> = held_out.iter().copied().collect();
    let mut base = net.clone();
    for &id in &held_out {
        base.remove_node(id);
    }
    println!(
        "base network: {} nodes; inserting {} held-out nodes\n",
        base.len(),
        held_out.len()
    );

    let policies = [
        ReorgPolicy::FirstOrder,
        ReorgPolicy::SecondOrder,
        ReorgPolicy::HigherOrder,
    ];
    let mut io_rows: Vec<Vec<String>> = Vec::new();
    let mut crr_rows: Vec<Vec<String>> = Vec::new();
    let mut avg_io_final = Vec::new();
    let mut crr_final = Vec::new();
    let mut steps_header: Vec<String> = Vec::new();

    for policy in policies {
        let mut am = CcamBuilder::new(block)
            .policy(policy)
            .build_static(&base)
            .expect("base CCAM");
        let mut present: HashSet<NodeId> = base.node_ids().into_iter().collect();

        let mut total_io = 0u64;
        let mut io_series: Vec<f64> = Vec::new();
        let mut crr_series: Vec<f64> = Vec::new();
        let mut steps: Vec<usize> = Vec::new();
        for (i, &id) in held_out.iter().enumerate() {
            let (data, incoming) = restricted_node(&net, id, &present, &held_set);
            let (r, io) = measure_io(&mut am as &mut dyn AccessMethod, |am| {
                am.insert_node(&data, &incoming)
            });
            r.expect("insert");
            present.insert(id);
            total_io += io;
            if (i + 1) % REPORT_EVERY == 0 || i + 1 == held_out.len() {
                steps.push(i + 1);
                io_series.push(total_io as f64 / (i + 1) as f64);
                crr_series.push(am.crr().expect("crr"));
            }
        }
        if steps_header.is_empty() {
            steps_header = std::iter::once("policy".to_string())
                .chain(steps.iter().map(|s| format!("n={s}")))
                .collect();
        }
        io_rows.push(
            std::iter::once(policy.name().to_string())
                .chain(io_series.iter().map(|v| format!("{v:.2}")))
                .collect(),
        );
        crr_rows.push(
            std::iter::once(policy.name().to_string())
                .chain(crr_series.iter().map(|v| format!("{v:.4}")))
                .collect(),
        );
        avg_io_final.push(*io_series.last().expect("series"));
        crr_final.push(*crr_series.last().expect("series"));
    }

    println!("(a) average I/O cost per insertion (cumulative):");
    println!("{}", render_table(&steps_header, &io_rows));
    println!("(b) CRR after n insertions:");
    println!("{}", render_table(&steps_header, &crr_rows));

    let checks = [
        (
            "higher-order I/O well above first/second".to_string(),
            avg_io_final[2] > 1.25 * avg_io_final[0] && avg_io_final[2] > 1.5 * avg_io_final[1],
        ),
        (
            "first and second order I/O close".to_string(),
            (avg_io_final[0] - avg_io_final[1]).abs() <= 0.5 * avg_io_final[0],
        ),
        (
            "first-order ends with the lowest CRR".to_string(),
            crr_final[0] <= crr_final[1] && crr_final[0] <= crr_final[2],
        ),
        (
            "higher-order CRR >= second-order - epsilon".to_string(),
            crr_final[2] >= crr_final[1] - 0.02,
        ),
    ];
    println!("shape checks:");
    for (label, ok) in checks {
        println!("  [{}] {label}", if ok { "ok" } else { "MISS" });
    }
}

/// The held-out node's record restricted to currently-present neighbors,
/// plus the incoming-edge costs (edges to still-absent nodes material-
/// ise later, when their other endpoint is inserted).
fn restricted_node(
    net: &Network,
    id: NodeId,
    present: &HashSet<NodeId>,
    _held: &HashSet<NodeId>,
) -> (NodeData, Vec<(NodeId, u32)>) {
    let full = net.node(id).expect("held-out node in original network");
    let data = NodeData {
        id: full.id,
        x: full.x,
        y: full.y,
        payload: full.payload.clone(),
        successors: full
            .successors
            .iter()
            .filter(|e| present.contains(&e.to))
            .copied()
            .collect(),
        predecessors: full
            .predecessors
            .iter()
            .filter(|p| present.contains(p))
            .copied()
            .collect(),
    };
    let incoming = data
        .predecessors
        .iter()
        .map(|&p| {
            let cost = net
                .node(p)
                .expect("pred exists")
                .successors
                .iter()
                .find(|e| e.to == id)
                .expect("edge exists")
                .cost;
            (p, cost)
        })
        .collect();
    (data, incoming)
}
