//! Reader-stall probe for MVCC-lite snapshot reads, writing
//! `BENCH_PR8.json`.
//!
//! ```text
//! reorg_stall [--seconds S] [--readers N] [--seed N] [--out FILE]
//!             [--max-ratio R] [--floor-us N]
//! ```
//!
//! The claim under test is the PR-8 tentpole: the read path must not
//! stall (or tear) while the writer commits and reorganizes. The probe
//! runs the same closed-loop read workload twice over one WAL-backed,
//! snapshot-enabled `EpochCell`:
//!
//! 1. **Quiescent** — no writer at all.
//! 2. **Churn** — a writer loops `reorganize_full()` + commit as fast
//!    as it can, rewriting the entire file layout over and over.
//!
//! Every read iteration pins a snapshot and runs `find` +
//! `get_successors` over a few probe nodes, timing the whole
//! pin-to-answer span. Before this PR the reader shared one `RwLock`
//! with the writer, so the churn p99 was the duration of a full
//! reorganization (tens of milliseconds). The gate passes when either
//!
//! * churn p99 is within `--max-ratio` (default 2x) of the quiescent
//!   p99, modulo an absolute noise floor (`--floor-us`, default 300) —
//!   the expected outcome on a multi-core host; or
//! * churn p99 is under a quarter of the *average reorganization
//!   duration* — the machine-independent form of "no reader ever waited
//!   out a writer critical section". On a single-core host a saturated
//!   writer steals whole scheduler timeslices from the readers (a
//!   millisecond-scale tail no locking design can avoid), but a reader
//!   actually blocked on the writer would show the full reorganization
//!   time, tens of milliseconds, and still fail.
//!
//! Exit is non-zero when the gate fails, when any reader hits an
//! error, or when the writer fails to commit — so CI can hold the line
//! with a single invocation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccam_core::epoch::EpochCell;
use ccam_core::{AccessMethod, Ccam, CcamBuilder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::NodeId;
use ccam_storage::{MemPageStore, PageStore, WalStore};

struct Config {
    seconds: u64,
    readers: usize,
    seed: u64,
    out: String,
    max_ratio: f64,
    floor_us: u64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seconds: 6,
        readers: 2,
        seed: 42,
        out: "BENCH_PR8.json".to_string(),
        max_ratio: 2.0,
        floor_us: 300,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| die("missing value")).clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seconds" => cfg.seconds = value(&mut i).parse().unwrap_or(6),
            "--readers" => cfg.readers = value(&mut i).parse().unwrap_or(2),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or(42),
            "--out" => cfg.out = value(&mut i),
            "--max-ratio" => cfg.max_ratio = value(&mut i).parse().unwrap_or(2.0),
            "--floor-us" => cfg.floor_us = value(&mut i).parse().unwrap_or(300),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("reorg_stall: {msg}");
    std::process::exit(2);
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One measurement phase: `readers` closed-loop reader threads for
/// `secs`, each iteration = pin a snapshot + probe reads, returning
/// the merged, sorted per-iteration latencies in nanoseconds.
fn measure<S: PageStore>(
    db: &EpochCell<Ccam<S>>,
    probes: &[NodeId],
    readers: usize,
    secs: Duration,
) -> Vec<u64> {
    let deadline = Instant::now() + secs;
    let mut all: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(1 << 16);
                    while Instant::now() < deadline {
                        let start = Instant::now();
                        let snap = db.read().unwrap_or_else(|e| die(&format!("pin: {e}")));
                        for &id in probes {
                            let found =
                                snap.find(id).unwrap_or_else(|e| die(&format!("find: {e}")));
                            if found.is_none() {
                                die("probe node vanished from a committed snapshot");
                            }
                            let succ = snap
                                .get_successors(id)
                                .unwrap_or_else(|e| die(&format!("successors: {e}")));
                            std::hint::black_box(succ);
                        }
                        lat.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|_| die("reader panicked")))
            .collect()
    });
    all.sort_unstable();
    all
}

fn main() {
    let cfg = parse_args();
    let net = road_map(&RoadMapConfig {
        grid_w: 20,
        grid_h: 20,
        removed_nodes: 8,
        target_segments: 650,
        target_directed: 1150,
        cell: 64,
        jitter: 24,
        seed: cfg.seed,
    });
    let ids = net.node_ids();
    let probes: Vec<NodeId> = (0..8).map(|k| ids[k * ids.len() / 8]).collect();

    // The serving deployment stack: WAL-backed, so commits publish
    // copy-on-write page versions instead of deep-copying the file.
    let wal_path =
        std::env::temp_dir().join(format!("ccam-reorg-stall-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let mem = MemPageStore::new(1024).unwrap_or_else(|e| die(&format!("store: {e}")));
    let wal = WalStore::create(mem, &wal_path).unwrap_or_else(|e| die(&format!("wal: {e}")));
    let mut am = CcamBuilder::new(1024)
        .build_static_on(wal, &net)
        .unwrap_or_else(|e| die(&format!("build: {e}")));
    let native = am
        .enable_snapshots()
        .unwrap_or_else(|e| die(&format!("enable snapshots: {e}")));
    if !native {
        die("WAL stack must expose native page versioning");
    }
    let db = Arc::new(EpochCell::new(am).unwrap_or_else(|e| die(&format!("publish: {e}"))));

    let half = Duration::from_secs(cfg.seconds) / 2;

    // Phase 1 — quiescent baseline.
    let quiescent = measure(&db, &probes, cfg.readers, half);

    // Phase 2 — same workload while the writer reorganizes in a loop.
    let stop = AtomicBool::new(false);
    let reorgs = AtomicU64::new(0);
    let epoch_before = db.epoch();
    let busy_ns = AtomicU64::new(0);
    let churn = std::thread::scope(|s| {
        let db_ref = &db;
        let (stop_ref, reorgs_ref, busy_ref) = (&stop, &reorgs, &busy_ns);
        s.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                let started = Instant::now();
                let mut w = db_ref
                    .write()
                    .unwrap_or_else(|e| die(&format!("writer: {e}")));
                w.reorganize_full()
                    .unwrap_or_else(|e| die(&format!("reorganize: {e}")));
                w.commit().unwrap_or_else(|e| die(&format!("commit: {e}")));
                busy_ref.fetch_add(
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                reorgs_ref.fetch_add(1, Ordering::Relaxed);
            }
        });
        let churn = measure(&db, &probes, cfg.readers, half);
        stop.store(true, Ordering::Relaxed);
        churn
    });
    let reorgs = reorgs.load(Ordering::Relaxed);
    if reorgs == 0 {
        die("writer completed no reorganizations — churn phase measured nothing");
    }
    if db.epoch() != epoch_before + reorgs {
        die("epoch must advance once per committed reorganization");
    }

    let q_p50 = percentile(&quiescent, 0.50);
    let q_p99 = percentile(&quiescent, 0.99);
    let c_p50 = percentile(&churn, 0.50);
    let c_p99 = percentile(&churn, 0.99);
    let ratio = c_p99 as f64 / q_p99.max(1) as f64;
    let floor_ns = cfg.floor_us * 1_000;
    let avg_reorg_ns = busy_ns.load(Ordering::Relaxed) / reorgs.max(1);
    // Two ways to pass: the tight multi-core gate, or the
    // machine-independent "no reader waited out a writer critical
    // section" bound (see module docs).
    let pass = c_p99 as f64 <= (q_p99 as f64 * cfg.max_ratio).max(floor_ns as f64)
        || c_p99.saturating_mul(4) <= avg_reorg_ns;

    let json = format!(
        "{{\n  \"bench\": \"reorg_stall\",\n  \"config\": {{\n    \"seed\": {},\n    \"seconds\": {},\n    \"readers\": {},\n    \"max_ratio\": {},\n    \"floor_us\": {}\n  }},\n  \"results\": {{\n    \"quiescent_reads\": {},\n    \"churn_reads\": {},\n    \"reorganizations\": {},\n    \"quiescent_p50_us\": {:.1},\n    \"quiescent_p99_us\": {:.1},\n    \"churn_p50_us\": {:.1},\n    \"churn_p99_us\": {:.1},\n    \"p99_ratio\": {:.2},\n    \"avg_reorg_ms\": {:.1},\n    \"pass\": {}\n  }}\n}}\n",
        cfg.seed,
        cfg.seconds,
        cfg.readers,
        cfg.max_ratio,
        cfg.floor_us,
        quiescent.len(),
        churn.len(),
        reorgs,
        q_p50 as f64 / 1_000.0,
        q_p99 as f64 / 1_000.0,
        c_p50 as f64 / 1_000.0,
        c_p99 as f64 / 1_000.0,
        ratio,
        avg_reorg_ns as f64 / 1_000_000.0,
        pass,
    );
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("--out {}: {e}", cfg.out)));
    let _ = std::fs::remove_file(&wal_path);
    println!(
        "quiescent p99 {:.1}us  churn p99 {:.1}us  ratio {:.2}  ({} reorganizations, avg {:.1}ms each)",
        q_p99 as f64 / 1_000.0,
        c_p99 as f64 / 1_000.0,
        ratio,
        reorgs,
        avg_reorg_ns as f64 / 1_000_000.0,
    );
    if !pass {
        eprintln!(
            "reorg_stall: churn p99 {:.1}us exceeds {}x quiescent p99 {:.1}us (floor {}us) \
             and a quarter of the avg reorganization ({:.1}ms) — readers are stalling on the writer",
            c_p99 as f64 / 1_000.0,
            cfg.max_ratio,
            q_p99 as f64 / 1_000.0,
            cfg.floor_us,
            avg_reorg_ns as f64 / 1_000_000.0,
        );
        std::process::exit(1);
    }
    eprintln!("reorg_stall: readers unaffected by reorganization churn");
}
