//! Ablation — Table 1 beyond Figure 7: edge-argument maintenance costs
//! per policy, and the paper's suggested *lazy* policy ("a lazy or
//! delayed reorganization policy may reorganize NbrPages(P) after a
//! certain number of updates to page P", §2.4) at several thresholds.

use std::collections::HashSet;

use ccam_bench::{benchmark_network, measure_io, render_table, sample_nodes, EXPERIMENT_SEED};
use ccam_core::am::{AccessMethod, CcamBuilder};
use ccam_core::reorg::ReorgPolicy;
use ccam_graph::{NodeData, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let net = benchmark_network();
    let block = 1024;
    edge_update_costs(&net, block);
    lazy_thresholds(&net, block);
}

/// Part 1 — edge Insert()/Delete() I/O per policy (Table 1, edge column).
fn edge_update_costs(net: &ccam_graph::Network, block: usize) {
    println!("Ablation A: edge-argument maintenance cost per policy  (block = {block} B)\n");
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED + 40);
    let ids = net.node_ids();
    // 150 random non-edges to insert and then delete.
    let mut pairs = Vec::new();
    while pairs.len() < 150 {
        let a = ids[rng.random_range(0..ids.len())];
        let b = ids[rng.random_range(0..ids.len())];
        if a != b
            && !net.node(a).unwrap().successors.iter().any(|e| e.to == b)
            && !pairs.contains(&(a, b))
        {
            pairs.push((a, b));
        }
    }

    let header: Vec<String> = ["policy", "insert-edge I/O", "delete-edge I/O", "CRR after"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for policy in [
        ReorgPolicy::FirstOrder,
        ReorgPolicy::SecondOrder,
        ReorgPolicy::HigherOrder,
        ReorgPolicy::Lazy { every: 8 },
    ] {
        let mut am = CcamBuilder::new(block)
            .policy(policy)
            .build_static(net)
            .expect("create");
        let (mut ins_io, mut del_io) = (0u64, 0u64);
        for &(a, b) in &pairs {
            let (ok, io) = measure_io(&mut am as &mut dyn AccessMethod, |am| {
                am.insert_edge(a, b, 10).expect("insert edge")
            });
            assert!(ok);
            ins_io += io;
        }
        for &(a, b) in &pairs {
            let (cost, io) = measure_io(&mut am as &mut dyn AccessMethod, |am| {
                am.delete_edge(a, b).expect("delete edge")
            });
            assert!(cost.is_some());
            del_io += io;
        }
        rows.push(vec![
            policy.name().to_string(),
            format!("{:.2}", ins_io as f64 / pairs.len() as f64),
            format!("{:.2}", del_io as f64 / pairs.len() as f64),
            format!("{:.4}", am.crr().expect("crr")),
        ]);
    }
    println!("{}", render_table(&header, &rows));
}

/// Part 2 — lazy-policy threshold sweep on the Figure 7 insertion
/// workload: amortized I/O vs final CRR.
fn lazy_thresholds(net: &ccam_graph::Network, block: usize) {
    println!(
        "Ablation B: lazy-policy thresholds on the 20%-insertion workload  (block = {block} B)\n"
    );
    let held: Vec<NodeId> = sample_nodes(net, 0.2, EXPERIMENT_SEED + 2);
    let mut base = net.clone();
    for &id in &held {
        base.remove_node(id);
    }

    let policies = vec![
        ReorgPolicy::FirstOrder,
        ReorgPolicy::Lazy { every: 16 },
        ReorgPolicy::Lazy { every: 8 },
        ReorgPolicy::Lazy { every: 4 },
        ReorgPolicy::SecondOrder,
    ];
    let header: Vec<String> = ["policy", "avg insert I/O", "final CRR"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for policy in policies {
        let mut am = CcamBuilder::new(block)
            .policy(policy)
            .build_static(&base)
            .expect("create");
        let mut present: HashSet<NodeId> = base.node_ids().into_iter().collect();
        let mut io = 0u64;
        for &id in &held {
            let full = net.node(id).expect("held node");
            let data = NodeData {
                successors: full
                    .successors
                    .iter()
                    .filter(|e| present.contains(&e.to))
                    .copied()
                    .collect(),
                predecessors: full
                    .predecessors
                    .iter()
                    .filter(|p| present.contains(p))
                    .copied()
                    .collect(),
                ..full.clone()
            };
            let incoming: Vec<(NodeId, u32)> = data
                .predecessors
                .iter()
                .map(|&p| {
                    (
                        p,
                        net.node(p)
                            .unwrap()
                            .successors
                            .iter()
                            .find(|e| e.to == id)
                            .unwrap()
                            .cost,
                    )
                })
                .collect();
            let (r, cost) = measure_io(&mut am as &mut dyn AccessMethod, |am| {
                am.insert_node(&data, &incoming)
            });
            r.expect("insert");
            io += cost;
            present.insert(id);
        }
        let label = match policy {
            ReorgPolicy::Lazy { every } => format!("lazy(every {every})"),
            p => p.name().to_string(),
        };
        rows.push(vec![
            label,
            format!("{:.2}", io as f64 / held.len() as f64),
            format!("{:.4}", am.crr().expect("crr")),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!("expected shape: lazy sits between first-order (cheap, decaying CRR) and");
    println!("second-order (pricier, stable CRR); smaller thresholds buy CRR with I/O.");
}
