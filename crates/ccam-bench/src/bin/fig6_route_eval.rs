//! Figure 6 — "Effect of Route Length" on route-evaluation I/O.
//!
//! Block size 2048; route sets of lengths 10/20/30/40 (100 random-walk
//! routes each); edge weights derived from the routes' traversal counts;
//! one single-page buffer; queries processed as `Find` +
//! `Get-A-successor` chains (paper §4.3). WDFS-AM joins the comparison
//! here because edge weights exist to order its traversal; CCAM clusters
//! to maximise WCRR under the same weights.
//!
//! Expected shape (paper): page accesses grow linearly with route
//! length; CCAM-S and CCAM-D below every other method at every length.

use ccam_bench::{
    avg_route_io, benchmark_network, build_all_methods, render_table, EXPERIMENT_SEED,
};
use ccam_graph::walks::{edge_weights_from_routes, random_walk_routes};

fn main() {
    let net = benchmark_network();
    let block = 2048;
    let lengths = [10usize, 20, 30, 40];
    println!(
        "Figure 6: route evaluation I/O vs route length  (block = {block} B, 100 routes/set, 1-page buffer)\n"
    );

    // Route sets and the derived edge weights (all sets contribute).
    let route_sets: Vec<_> = lengths
        .iter()
        .enumerate()
        .map(|(i, &l)| random_walk_routes(&net, 100, l, EXPERIMENT_SEED + 10 + i as u64))
        .collect();
    let all_routes: Vec<_> = route_sets.iter().flatten().cloned().collect();
    let weights = edge_weights_from_routes(&all_routes);

    let methods = build_all_methods(&net, block, Some(&weights), true);

    let header: Vec<String> = std::iter::once("method".to_string())
        .chain(lengths.iter().map(|l| format!("L={l}")))
        .chain(["WCRR".to_string()])
        .collect();
    let mut rows = Vec::new();
    let mut table: Vec<(String, Vec<f64>)> = Vec::new();
    for am in &methods {
        let mut series = Vec::new();
        for routes in &route_sets {
            series.push(avg_route_io(am.as_ref(), routes));
        }
        let wcrr = am.wcrr(&weights).expect("wcrr");
        rows.push(
            std::iter::once(am.name().to_string())
                .chain(series.iter().map(|v| format!("{v:.2}")))
                .chain([format!("{wcrr:.4}")])
                .collect(),
        );
        table.push((am.name().to_string(), series));
    }
    println!("{}", render_table(&header, &rows));

    // Shape checks.
    let get = |n: &str| &table.iter().find(|(m, _)| m == n).expect("method").1;
    let (s, d) = (get("CCAM-S"), get("CCAM-D"));
    let mut checks = vec![];
    for (li, &l) in lengths.iter().enumerate() {
        let others_min = table
            .iter()
            .filter(|(m, _)| m != "CCAM-S" && m != "CCAM-D")
            .map(|(_, v)| v[li])
            .fold(f64::INFINITY, f64::min);
        checks.push((
            format!("CCAM-S & CCAM-D cheapest at L={l}"),
            s[li] <= others_min && d[li] <= others_min,
        ));
    }
    for (name, series) in &table {
        checks.push((
            format!("{name}: I/O grows with route length"),
            series.windows(2).all(|w| w[1] >= w[0]),
        ));
    }
    println!("shape checks:");
    for (label, ok) in checks {
        println!("  [{}] {label}", if ok { "ok" } else { "MISS" });
    }
}
