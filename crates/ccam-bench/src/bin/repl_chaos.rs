//! Seeded chaos harness for WAL-shipping replication — `chaos_serve`'s
//! replication twin, writing `BENCH_PR9.json`.
//!
//! ```text
//! repl_chaos [--seed N] [--phase-ms MS] [--out FILE]
//!            [--max-catchup-ms MS] [--read-error-budget-per-1024 N]
//!            [--write-error-budget N]
//! ```
//!
//! The harness owns a full primary/follower pair on real loopback
//! sockets, with the replication link routed through an in-process
//! proxy so faults can be injected mid-stream:
//!
//! * **Link chaos** — the proxy stalls (bytes queue, no progress — the
//!   follower's read deadline fires and it reconnects with seeded
//!   backoff) and cuts (both sockets dropped mid-segment). Re-shipped
//!   segments must apply idempotently: digest parity is asserted after
//!   every fault window.
//! * **Primary crash** — the primary is torn down without a checkpoint
//!   and reopened from its page file + WAL sidecar (real recovery),
//!   restarting on fresh ports. The follower must keep serving reads
//!   while the primary is dead, then catch up within the bound; writes
//!   must fail over back to the restarted primary via the `NotPrimary`
//!   address learned in the new handshake.
//! * **Follower restart from a stale LSN** — the follower is stopped,
//!   its position sidecar rewound to LSN 1, and the primary's WAL
//!   checkpointed past it. On restart the primary must answer
//!   `NotRetained` and hand off a checkpoint image; parity is asserted
//!   after the handoff catch-up.
//!
//! Exit is non-zero unless every SLO holds: zero digest divergence at
//! every sync point, follower reads observed during primary downtime,
//! catch-up after each disruption within `--max-catchup-ms`, an image
//! handoff observed, and read/write error budgets respected.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ccam_core::epoch::EpochCell;
use ccam_core::{AccessMethod, Ccam, CcamBuilder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::{Network, NodeId};
use ccam_server::client::{Backoff, MultiClient};
use ccam_server::protocol::{Request, Response, Status};
use ccam_server::{ReplRole, Server, ServerConfig, ServerHandle};
use ccam_storage::{FilePageStore, PageStore, WalStore};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

type Db = WalStore<FilePageStore>;

struct Config {
    seed: u64,
    phase_ms: u64,
    out: String,
    max_catchup_ms: u64,
    read_error_budget_per_1024: u64,
    write_error_budget: u64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seed: 42,
        phase_ms: 1_000,
        out: "BENCH_PR9.json".to_string(),
        max_catchup_ms: 10_000,
        read_error_budget_per_1024: 16,
        write_error_budget: 2,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| die("missing value")).clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or(42),
            "--phase-ms" => cfg.phase_ms = value(&mut i).parse().unwrap_or(1_000),
            "--out" => cfg.out = value(&mut i),
            "--max-catchup-ms" => cfg.max_catchup_ms = value(&mut i).parse().unwrap_or(10_000),
            "--read-error-budget-per-1024" => {
                cfg.read_error_budget_per_1024 = value(&mut i).parse().unwrap_or(16)
            }
            "--write-error-budget" => cfg.write_error_budget = value(&mut i).parse().unwrap_or(2),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("repl_chaos: {msg}");
    std::process::exit(2);
}

// ---------------------------------------------------------------------------
// Replication-link proxy: the follower subscribes through this, so the
// harness can stall or cut the link mid-segment without touching either
// endpoint's code.
// ---------------------------------------------------------------------------

struct Proxy {
    addr: String,
    stall: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<Arc<AtomicBool>>>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream: Arc<Mutex<String>>) -> Proxy {
        let listener =
            TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| die(&format!("proxy: {e}")));
        let addr = listener.local_addr().unwrap().to_string();
        let stall = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<Arc<AtomicBool>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let (stall, stop, conns, upstream) = (
                Arc::clone(&stall),
                Arc::clone(&stop),
                Arc::clone(&conns),
                Arc::clone(&upstream),
            );
            std::thread::spawn(move || {
                for inbound in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(inbound) = inbound else { continue };
                    let target = upstream.lock().unwrap().clone();
                    let Ok(outbound) = TcpStream::connect(&target) else {
                        // Primary is down: drop the subscription attempt;
                        // the follower's backoff retries.
                        continue;
                    };
                    let kill = Arc::new(AtomicBool::new(false));
                    conns.lock().unwrap().push(Arc::clone(&kill));
                    spawn_pump(
                        inbound.try_clone().unwrap(),
                        outbound.try_clone().unwrap(),
                        &stall,
                        &kill,
                    );
                    spawn_pump(outbound, inbound, &stall, &kill);
                }
            })
        };
        Proxy {
            addr,
            stall,
            stop,
            conns,
            acceptor: Some(acceptor),
        }
    }

    /// Freeze both directions: bytes queue in the kernel, no progress.
    /// The follower's read deadline treats this as primary death.
    fn set_stall(&self, on: bool) {
        self.stall.store(on, Ordering::SeqCst);
    }

    /// Drop every live proxied connection mid-stream.
    fn cut(&self) {
        for kill in self.conns.lock().unwrap().drain(..) {
            kill.store(true, Ordering::SeqCst);
        }
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.cut();
        // Wake the blocking accept.
        let _ = TcpStream::connect(&self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// One direction of a proxied connection. Uses a short read timeout as
/// the poll tick so stall/kill flags are honored mid-stream.
fn spawn_pump(from: TcpStream, to: TcpStream, stall: &Arc<AtomicBool>, kill: &Arc<AtomicBool>) {
    let (stall, kill) = (Arc::clone(stall), Arc::clone(kill));
    std::thread::spawn(move || {
        let mut from = from;
        let mut to = to;
        let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
        let mut buf = [0u8; 16 * 1024];
        loop {
            if kill.load(Ordering::SeqCst) {
                break;
            }
            if stall.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            match from.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break,
            }
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    });
}

// ---------------------------------------------------------------------------
// Address board: restarted servers come back on fresh ports; clients
// and the proxy re-resolve through this.
// ---------------------------------------------------------------------------

struct Board {
    primary_client: Mutex<String>,
    follower_client: Mutex<String>,
    generation: AtomicU64,
}

impl Board {
    fn endpoints(&self) -> Vec<String> {
        vec![
            self.primary_client.lock().unwrap().clone(),
            self.follower_client.lock().unwrap().clone(),
        ]
    }
}

// ---------------------------------------------------------------------------
// Primary / follower lifecycle
// ---------------------------------------------------------------------------

fn start_primary(
    db_path: &Path,
    wal_path: &Path,
    net: Option<&Network>,
) -> (ServerHandle<Db>, u64) {
    let (store, replayed) = match net {
        Some(_) => (
            WalStore::create(
                FilePageStore::create(db_path, 1024)
                    .unwrap_or_else(|e| die(&format!("create: {e}"))),
                wal_path,
            )
            .unwrap_or_else(|e| die(&format!("wal create: {e}"))),
            0,
        ),
        None => {
            // Restart after a crash: reopen page file + WAL, replaying
            // committed batches the crash left unapplied.
            let inner =
                FilePageStore::open(db_path).unwrap_or_else(|e| die(&format!("reopen: {e}")));
            let (ws, report) =
                WalStore::open(inner, wal_path).unwrap_or_else(|e| die(&format!("recover: {e}")));
            (ws, report.replayed_batches)
        }
    };
    let builder = CcamBuilder::new(1024);
    let mut am = match net {
        Some(net) => builder
            .build_static_on(store, net)
            .unwrap_or_else(|e| die(&format!("build: {e}"))),
        None => builder
            .open_on(store)
            .unwrap_or_else(|e| die(&format!("open: {e}"))),
    };
    am.file_mut().set_auto_commit(true);
    am.file()
        .pool()
        .with_store_mut(|s| s.set_max_wal_bytes(Some(256 << 10)));
    am.enable_snapshots()
        .unwrap_or_else(|e| die(&format!("snapshots: {e}")));
    let cell = Arc::new(EpochCell::new(am).unwrap_or_else(|e| die(&format!("publish: {e}"))));
    let handle = Server::start(
        cell,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            role: ReplRole::Primary {
                repl_addr: Some("127.0.0.1:0".to_string()),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| die(&format!("primary start: {e}")));
    (handle, replayed)
}

fn start_follower(
    db_path: &Path,
    wal_path: &Path,
    lsn_path: &Path,
    proxy_addr: &str,
    seed: u64,
    fresh: bool,
) -> ServerHandle<Db> {
    let builder = CcamBuilder::new(1024);
    let mut am = if fresh {
        let store = WalStore::create(
            FilePageStore::create(db_path, 1024).unwrap_or_else(|e| die(&format!("f create: {e}"))),
            wal_path,
        )
        .unwrap_or_else(|e| die(&format!("f wal: {e}")));
        // A follower starts empty and catches up entirely over the wire.
        builder
            .build_static_on(store, &Network::new())
            .unwrap_or_else(|e| die(&format!("f build: {e}")))
    } else {
        let inner = FilePageStore::open(db_path).unwrap_or_else(|e| die(&format!("f reopen: {e}")));
        let (ws, _report) =
            WalStore::open(inner, wal_path).unwrap_or_else(|e| die(&format!("f recover: {e}")));
        builder
            .open_on(ws)
            .unwrap_or_else(|e| die(&format!("f open: {e}")))
    };
    am.file_mut().set_auto_commit(true);
    am.enable_snapshots()
        .unwrap_or_else(|e| die(&format!("f snapshots: {e}")));
    let cell = Arc::new(EpochCell::new(am).unwrap_or_else(|e| die(&format!("f publish: {e}"))));
    Server::start(
        cell,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            role: ReplRole::Replica {
                primary: proxy_addr.to_string(),
                seed,
                lsn_path: Some(lsn_path.to_path_buf()),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| die(&format!("follower start: {e}")))
}

// ---------------------------------------------------------------------------
// Divergence detection: the generation-digest ledger
// ---------------------------------------------------------------------------

/// Layout-independent digest of every record reachable in a pinned
/// view — two stores digest equal iff they hold the same logical nodes.
fn digest<S: PageStore>(am: &Ccam<S>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut nodes = std::collections::BTreeMap::new();
    for (_page, records) in am.file().scan_uncounted().unwrap_or_default() {
        for node in records {
            nodes.insert(node.id.0, node);
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (id, node) in &nodes {
        id.hash(&mut h);
        node.x.hash(&mut h);
        node.y.hash(&mut h);
        node.payload.hash(&mut h);
        for e in &node.successors {
            e.to.0.hash(&mut h);
            e.cost.hash(&mut h);
        }
        for p in &node.predecessors {
            p.0.hash(&mut h);
        }
    }
    h.finish()
}

fn primary_next_lsn(primary: &ServerHandle<Db>) -> u64 {
    primary
        .db()
        .with_writer(|am| am.file().pool().with_store(|s| s.wal_info()))
        .ok()
        .flatten()
        .map_or(0, |i| i.next_lsn)
}

/// Waits until the follower has applied everything the primary has
/// committed; returns the wait in ms, or `None` on timeout.
fn await_catch_up(
    primary: &ServerHandle<Db>,
    follower: &ServerHandle<Db>,
    bound: Duration,
) -> Option<u64> {
    let start = Instant::now();
    loop {
        let target = primary_next_lsn(primary).saturating_sub(1);
        if follower.applied_lsn() >= target {
            return Some(start.elapsed().as_millis() as u64);
        }
        if start.elapsed() > bound {
            eprintln!(
                "repl_chaos: catch-up stuck at {} of {}",
                follower.applied_lsn(),
                target
            );
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------------
// Workload threads
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ReadTally {
    ok: u64,
    failed: u64,
    downtime_ok: u64,
}

#[derive(Default)]
struct WriteTally {
    ok: u64,
    failed_in_downtime: u64,
    failed_outside: u64,
}

struct Flags {
    stop: AtomicBool,
    pause_writer: AtomicBool,
    writer_idle: AtomicBool,
    primary_down: AtomicBool,
}

fn run_reader(board: &Board, flags: &Flags, ids: &[NodeId], seed: u64) -> ReadTally {
    let mut t = ReadTally::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut backoff = Backoff::new(
        8,
        Duration::from_millis(10),
        Duration::from_millis(80),
        seed,
    );
    let mut mc = MultiClient::new(board.endpoints());
    let _ = mc.set_io_timeout(Some(Duration::from_secs(5)));
    let mut gen = board.generation.load(Ordering::Acquire);
    while !flags.stop.load(Ordering::Acquire) {
        let now_gen = board.generation.load(Ordering::Acquire);
        if now_gen != gen {
            gen = now_gen;
            mc.set_endpoints(board.endpoints());
        }
        let id = ids[rng.random_range(0..ids.len())];
        let req = if rng.random_range(0..2u32) == 0 {
            Request::Find(id)
        } else {
            Request::GetSuccessors(id)
        };
        let down = flags.primary_down.load(Ordering::Acquire);
        match mc.call_with_retry(&[req], &mut backoff) {
            Ok(resps) => match &resps[0] {
                Response::Error(Status::NotFound, _)
                | Response::Record(_)
                | Response::Records(_) => {
                    t.ok += 1;
                    if down {
                        t.downtime_ok += 1;
                    }
                }
                Response::RecordsDegraded { .. } => t.ok += 1,
                _ => t.failed += 1,
            },
            Err(_) => t.failed += 1,
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    t
}

fn run_writer(board: &Board, flags: &Flags, ids: &[NodeId], seed: u64) -> WriteTally {
    let mut t = WriteTally::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let mut backoff = Backoff::new(
        6,
        Duration::from_millis(10),
        Duration::from_millis(80),
        seed,
    );
    let mut mc = MultiClient::new(board.endpoints());
    let _ = mc.set_io_timeout(Some(Duration::from_secs(5)));
    let mut gen = board.generation.load(Ordering::Acquire);
    while !flags.stop.load(Ordering::Acquire) {
        if flags.pause_writer.load(Ordering::Acquire) {
            flags.writer_idle.store(true, Ordering::Release);
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        flags.writer_idle.store(false, Ordering::Release);
        let now_gen = board.generation.load(Ordering::Acquire);
        if now_gen != gen {
            gen = now_gen;
            mc.set_endpoints(board.endpoints());
        }
        let id = ids[rng.random_range(0..ids.len())];
        let payload: Vec<u8> = (0..rng.random_range(4..24usize))
            .map(|_| rng.random_range(0..=255u32) as u8)
            .collect();
        let down = flags.primary_down.load(Ordering::Acquire);
        match mc.call_with_retry(&[Request::Upsert { id, payload }], &mut backoff) {
            Ok(resps) if matches!(resps[0], Response::Upserted { .. }) => t.ok += 1,
            Ok(resps) if matches!(resps[0], Response::Error(Status::NotFound, _)) => t.ok += 1,
            _ if down => t.failed_in_downtime += 1,
            _ => t.failed_outside += 1,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    flags.writer_idle.store(true, Ordering::Release);
    t
}

// ---------------------------------------------------------------------------

struct Harness<'a> {
    flags: &'a Flags,
    violations: Mutex<Vec<String>>,
    parity_checks: AtomicU64,
    parity_failures: AtomicU64,
}

impl Harness<'_> {
    fn violation(&self, msg: String) {
        eprintln!("repl_chaos: SLO VIOLATION — {msg}");
        self.violations.lock().unwrap().push(msg);
    }

    /// Quiesce the writer, wait for full catch-up, then compare the
    /// generation digests. Any mismatch is divergence — an SLO failure.
    fn parity_check(
        &self,
        primary: &ServerHandle<Db>,
        follower: &ServerHandle<Db>,
        bound: Duration,
        what: &str,
    ) {
        self.flags.pause_writer.store(true, Ordering::Release);
        while !self.flags.writer_idle.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.parity_checks.fetch_add(1, Ordering::Relaxed);
        if await_catch_up(primary, follower, bound).is_none() {
            self.parity_failures.fetch_add(1, Ordering::Relaxed);
            self.violation(format!("{what}: catch-up timed out before parity check"));
        } else {
            let p = primary.db().read().map(|g| digest(&g)).unwrap_or(0);
            let f = follower.db().read().map(|g| digest(&g)).unwrap_or(1);
            if p != f {
                self.parity_failures.fetch_add(1, Ordering::Relaxed);
                self.violation(format!("{what}: digest divergence ({p:#x} != {f:#x})"));
            }
        }
        self.flags.pause_writer.store(false, Ordering::Release);
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let cfg = parse_args();
    let phase = Duration::from_millis(cfg.phase_ms);
    let catchup_bound = Duration::from_millis(cfg.max_catchup_ms);
    let net = road_map(&RoadMapConfig {
        grid_w: 16,
        grid_h: 16,
        removed_nodes: 6,
        target_segments: 420,
        target_directed: 740,
        cell: 64,
        jitter: 24,
        seed: 5,
    });
    let ids = net.node_ids();

    let dir = std::env::temp_dir().join(format!("ccam-repl-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die(&format!("tempdir: {e}")));
    let p_db = dir.join("p.db");
    let p_wal = dir.join("p.db.wal");
    let f_db = dir.join("f.db");
    let f_wal = dir.join("f.db.wal");
    let f_lsn: PathBuf = dir.join("f.db.repllsn");

    // Primary first: the proxy needs its replication address.
    let (primary, _) = start_primary(&p_db, &p_wal, Some(&net));
    let upstream = Arc::new(Mutex::new(primary.repl_addr().unwrap().to_string()));
    let proxy = Proxy::start(Arc::clone(&upstream));
    let follower = start_follower(&f_db, &f_wal, &f_lsn, &proxy.addr, cfg.seed, true);

    let board = Board {
        primary_client: Mutex::new(primary.local_addr().to_string()),
        follower_client: Mutex::new(follower.local_addr().to_string()),
        generation: AtomicU64::new(0),
    };
    let flags = Flags {
        stop: AtomicBool::new(false),
        pause_writer: AtomicBool::new(false),
        writer_idle: AtomicBool::new(false),
        primary_down: AtomicBool::new(false),
    };
    let harness = Harness {
        flags: &flags,
        violations: Mutex::new(Vec::new()),
        parity_checks: AtomicU64::new(0),
        parity_failures: AtomicU64::new(0),
    };
    eprintln!(
        "repl_chaos: seed {} — primary {} / follower {} via proxy {}",
        cfg.seed,
        primary.local_addr(),
        follower.local_addr(),
        proxy.addr
    );

    let wall = Instant::now();
    let mut crash_catchup_ms = 0u64;
    let mut stale_catchup_ms = 0u64;
    let mut recovery_replayed = 0u64;
    let mut downtime_ms = 0u64;
    let mut early_disconnects = 0u64;
    let mut early_segments = 0u64;

    let (reads, writes, primary, follower) = std::thread::scope(|s| {
        let mut primary = primary;
        let mut follower = follower;
        let readers: Vec<_> = (0..2)
            .map(|i| {
                let (board, flags, ids) = (&board, &flags, &ids[..]);
                s.spawn(move || run_reader(board, flags, ids, cfg.seed + 100 + i))
            })
            .collect();
        let writer = {
            let (board, flags, ids) = (&board, &flags, &ids[..]);
            s.spawn(move || run_writer(board, flags, ids, cfg.seed))
        };

        // Phase 1 — warmup: cold catch-up from empty, then parity.
        std::thread::sleep(phase);
        harness.parity_check(&primary, &follower, catchup_bound, "warmup");

        // Phase 2 — link stall mid-segment: the follower's read
        // deadline declares the primary dead; on unstall it reconnects
        // and re-ships. Then a hard cut mid-stream. Both must converge
        // with zero divergence (idempotent re-apply).
        proxy.set_stall(true);
        std::thread::sleep(phase);
        proxy.set_stall(false);
        std::thread::sleep(phase / 2);
        proxy.cut();
        std::thread::sleep(phase / 2);
        harness.parity_check(&primary, &follower, catchup_bound, "link faults");

        // Phase 3 — primary crash + WAL recovery restart. No
        // checkpoint before teardown: the reopen must replay the WAL.
        flags.primary_down.store(true, Ordering::Release);
        let down_at = Instant::now();
        if primary.shutdown().is_err() {
            harness.violation("primary teardown did not drain".to_string());
        }
        proxy.cut();
        std::thread::sleep(phase);
        let (p2, replayed) = start_primary(&p_db, &p_wal, None);
        recovery_replayed = replayed;
        primary = p2;
        *upstream.lock().unwrap() = primary.repl_addr().unwrap().to_string();
        *board.primary_client.lock().unwrap() = primary.local_addr().to_string();
        board.generation.fetch_add(1, Ordering::Release);
        // Grace: let clients observe the new address before failures
        // start counting against the write budget.
        std::thread::sleep(Duration::from_millis(300));
        flags.primary_down.store(false, Ordering::Release);
        downtime_ms = down_at.elapsed().as_millis() as u64;
        match await_catch_up(&primary, &follower, catchup_bound) {
            Some(ms) => crash_catchup_ms = ms,
            None => harness.violation("crash recovery: follower never caught up".to_string()),
        }
        std::thread::sleep(phase / 2);
        harness.parity_check(&primary, &follower, catchup_bound, "primary crash");

        // Phase 4 — follower restart from a stale LSN, against a
        // checkpointed primary: the retained tail no longer covers the
        // stale position, so the primary must hand off an image.
        // (The restart wipes the follower's registry — carry the link
        // fault counters forward first.)
        early_disconnects = follower.metrics().counter("serve.repl.disconnects");
        early_segments = follower.metrics().counter("serve.repl.segments");
        if follower.shutdown().is_err() {
            harness.violation("follower teardown did not drain".to_string());
        }
        std::fs::write(&f_lsn, "1").unwrap_or_else(|e| die(&format!("rewind sidecar: {e}")));
        // Fresh follower state: the image handoff path must rebuild it.
        let _ = std::fs::remove_file(&f_db);
        let _ = std::fs::remove_file(&f_wal);
        std::thread::sleep(phase / 2);
        // With the subscriber gone, checkpoint until the WAL tail
        // starts past the stale position.
        let ckpt_deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let truncated = primary
                .db()
                .write()
                .ok()
                .and_then(|w| {
                    w.file().pool().with_store_mut(|st| {
                        let _ = st.checkpoint();
                        st.wal_info()
                    })
                })
                .is_some_and(|i| i.tail_start_lsn > 2);
            if truncated {
                break;
            }
            if Instant::now() > ckpt_deadline {
                harness.violation("could not checkpoint past the stale LSN".to_string());
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        follower = start_follower(&f_db, &f_wal, &f_lsn, &proxy.addr, cfg.seed + 1, true);
        *board.follower_client.lock().unwrap() = follower.local_addr().to_string();
        board.generation.fetch_add(1, Ordering::Release);
        match await_catch_up(&primary, &follower, catchup_bound) {
            Some(ms) => stale_catchup_ms = ms,
            None => harness.violation("stale restart: follower never caught up".to_string()),
        }
        std::thread::sleep(phase / 2);
        harness.parity_check(&primary, &follower, catchup_bound, "stale-LSN restart");

        flags.stop.store(true, Ordering::Release);
        let mut reads = ReadTally::default();
        for r in readers {
            let t = r.join().unwrap_or_else(|_| die("reader panicked"));
            reads.ok += t.ok;
            reads.failed += t.failed;
            reads.downtime_ok += t.downtime_ok;
        }
        let writes = writer.join().unwrap_or_else(|_| die("writer panicked"));
        (reads, writes, primary, follower)
    });
    let elapsed = wall.elapsed().as_secs_f64();

    let image_handoffs = follower.metrics().counter("serve.repl.image_handoffs");
    let follower_disconnects =
        early_disconnects + follower.metrics().counter("serve.repl.disconnects");
    let segments_applied = early_segments + follower.metrics().counter("serve.repl.segments");
    let graceful = follower.shutdown().is_ok() & primary.shutdown().is_ok();
    proxy.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // ----- SLO gates ------------------------------------------------------
    if writes.ok == 0 {
        harness.violation("no successful writes".to_string());
    }
    if reads.ok == 0 {
        harness.violation("no successful reads".to_string());
    }
    if reads.downtime_ok == 0 {
        harness.violation("follower served no reads during primary downtime".to_string());
    }
    if image_handoffs == 0 {
        harness.violation("stale-LSN restart produced no image handoff".to_string());
    }
    if crash_catchup_ms > cfg.max_catchup_ms {
        harness.violation(format!(
            "crash catch-up {crash_catchup_ms}ms over bound {}ms",
            cfg.max_catchup_ms
        ));
    }
    if stale_catchup_ms > cfg.max_catchup_ms {
        harness.violation(format!(
            "stale-restart catch-up {stale_catchup_ms}ms over bound {}ms",
            cfg.max_catchup_ms
        ));
    }
    let total_reads = reads.ok + reads.failed;
    let read_budget = (total_reads.max(1) * cfg.read_error_budget_per_1024) / 1024;
    if reads.failed > read_budget {
        harness.violation(format!(
            "{} read failures exceed budget {read_budget}",
            reads.failed
        ));
    }
    if writes.failed_outside > cfg.write_error_budget {
        harness.violation(format!(
            "{} write failures outside downtime exceed budget {}",
            writes.failed_outside, cfg.write_error_budget
        ));
    }
    if !graceful {
        harness.violation("final shutdown did not drain cleanly".to_string());
    }
    let violations = harness.violations.into_inner().unwrap();

    let json = format!(
        "{{\n  \"bench\": \"repl_chaos\",\n  \"config\": {{\n    \"seed\": {},\n    \"phase_ms\": {},\n    \"max_catchup_ms\": {}\n  }},\n  \"results\": {{\n    \"elapsed_s\": {:.1},\n    \"writes_ok\": {},\n    \"writes_failed_in_downtime\": {},\n    \"writes_failed_outside\": {},\n    \"reads_ok\": {},\n    \"reads_failed\": {},\n    \"reads_during_downtime\": {},\n    \"parity_checks\": {},\n    \"parity_failures\": {},\n    \"primary_downtime_ms\": {},\n    \"crash_catchup_ms\": {},\n    \"stale_restart_catchup_ms\": {},\n    \"recovery_replayed_batches\": {},\n    \"image_handoffs\": {},\n    \"segments_applied\": {},\n    \"follower_disconnects\": {},\n    \"graceful_drain\": {},\n    \"slo_violations\": {}\n  }}\n}}\n",
        cfg.seed,
        cfg.phase_ms,
        cfg.max_catchup_ms,
        elapsed,
        writes.ok,
        writes.failed_in_downtime,
        writes.failed_outside,
        reads.ok,
        reads.failed,
        reads.downtime_ok,
        harness.parity_checks.load(Ordering::Relaxed),
        harness.parity_failures.load(Ordering::Relaxed),
        downtime_ms,
        crash_catchup_ms,
        stale_catchup_ms,
        recovery_replayed,
        image_handoffs,
        segments_applied,
        follower_disconnects,
        graceful,
        violations.len(),
    );
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("--out {}: {e}", cfg.out)));
    println!(
        "writes {} reads {} (downtime {})  parity {}/{}  catch-up crash {}ms stale {}ms  handoffs {}  replayed {}",
        writes.ok,
        reads.ok,
        reads.downtime_ok,
        harness.parity_checks.load(Ordering::Relaxed)
            - harness.parity_failures.load(Ordering::Relaxed),
        harness.parity_checks.load(Ordering::Relaxed),
        crash_catchup_ms,
        stale_catchup_ms,
        image_handoffs,
        recovery_replayed,
    );
    let _ = std::io::stdout().flush();

    if violations.is_empty() {
        eprintln!("repl_chaos: all SLOs held");
    } else {
        for v in &violations {
            eprintln!("repl_chaos: SLO VIOLATION — {v}");
        }
        std::process::exit(1);
    }
}
