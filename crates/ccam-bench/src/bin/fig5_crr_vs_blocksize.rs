//! Figure 5 — "The effect of disk block size on CRR".
//!
//! CRR of the five access methods on the benchmark road map at disk
//! block sizes 512 / 1024 / 2048 / 4096 bytes, uniform edge weights
//! (paper §4.1).
//!
//! Expected shape (paper): CRR grows with block size for every method;
//! CCAM-S highest everywhere, CCAM-D close behind, then DFS-AM, with the
//! Grid File overtaking DFS-AM at 4k; BFS-AM far below everything.

use ccam_bench::{benchmark_network, build_all_methods, render_table};

fn main() {
    let net = benchmark_network();
    println!(
        "Figure 5: CRR vs disk block size  (road map: {} nodes, {} edges)\n",
        net.len(),
        net.num_edges()
    );
    let block_sizes = [512usize, 1024, 2048, 4096];

    // Build per block size, collect CRR per method.
    let mut names: Vec<String> = Vec::new();
    let mut crr: Vec<Vec<f64>> = Vec::new();
    for (bi, &bs) in block_sizes.iter().enumerate() {
        let methods = build_all_methods(&net, bs, None, false);
        for (mi, m) in methods.iter().enumerate() {
            if bi == 0 {
                names.push(m.name().to_string());
                crr.push(Vec::new());
            }
            crr[mi].push(m.crr().expect("crr"));
        }
    }

    let header: Vec<String> = std::iter::once("method".to_string())
        .chain(block_sizes.iter().map(|b| format!("{b}B")))
        .collect();
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            std::iter::once(name.clone())
                .chain(crr[mi].iter().map(|c| format!("{c:.4}")))
                .collect()
        })
        .collect();
    println!("{}", render_table(&header, &rows));

    // Shape assertions from the paper, reported rather than enforced.
    let idx = |n: &str| names.iter().position(|x| x == n).expect("method");
    let (s, d, dfs, grid, bfs) = (
        idx("CCAM-S"),
        idx("CCAM-D"),
        idx("DFS-AM"),
        idx("Grid File"),
        idx("BFS-AM"),
    );
    let mut checks = vec![];
    for (bi, &bs) in block_sizes.iter().enumerate() {
        checks.push((
            format!("CCAM-S best at {bs}"),
            (0..names.len()).all(|m| m == s || crr[s][bi] >= crr[m][bi]),
        ));
        checks.push((
            format!("CCAM-D > DFS-AM at {bs}"),
            crr[d][bi] > crr[dfs][bi],
        ));
        checks.push((
            format!("DFS-AM > BFS-AM at {bs}"),
            crr[dfs][bi] > crr[bfs][bi],
        ));
    }
    checks.push((
        "CRR grows with block size (CCAM-S)".into(),
        crr[s].windows(2).all(|w| w[1] >= w[0]),
    ));
    checks.push((
        "Grid File competitive with DFS-AM at 4k (paper: overtakes)".into(),
        crr[grid][3] >= crr[dfs][3] * 0.85,
    ));
    println!("shape checks:");
    for (label, ok) in checks {
        println!("  [{}] {label}", if ok { "ok" } else { "MISS" });
    }
}
