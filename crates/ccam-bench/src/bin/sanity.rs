//! Quick sanity: CRR of all methods at 1k on the benchmark map + timing.
use ccam_bench::*;
use std::time::Instant;
fn main() {
    let t0 = Instant::now();
    let net = benchmark_network();
    println!(
        "network: {} nodes {} edges ({:?})",
        net.len(),
        net.num_edges(),
        t0.elapsed()
    );
    for bs in [1024usize] {
        let t = Instant::now();
        let methods = build_all_methods(&net, bs, None, false);
        println!("built in {:?}", t.elapsed());
        for m in &methods {
            println!(
                "{:10} bs={} crr={:.4} pages={} gamma={:.2}",
                m.name(),
                bs,
                m.crr().unwrap(),
                m.file().num_pages(),
                m.file().blocking_factor()
            );
        }
    }
}
