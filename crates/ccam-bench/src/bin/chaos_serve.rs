//! Seeded chaos harness for the serving layer — `serve_load`'s hostile
//! twin, writing `BENCH_PR7.json`.
//!
//! ```text
//! chaos_serve [--seconds S] [--seed N] [--connections N] [--batch N]
//!             [--workers N] [--queue-depth N] [--out FILE]
//!             [--max-p99-us N] [--error-budget-per-1024 N]
//! ```
//!
//! The harness owns the whole stack, so every fault is injected, seeded
//! and accounted for:
//!
//! * **Storage chaos** — the database is built on `RetryStore` (jittered
//!   backoff) over `ChaosStore` (seeded transient I/O glitches, latency
//!   stalls, per-page corruption, ENOSPC pulses) over `MemPageStore`.
//!   The store is armed only after a clean build. Mid-run, one data
//!   page is corrupted and the damage *republished* through the writer
//!   path — served reads come from pinned snapshots, so store faults
//!   only reach clients via a commit — forcing degraded reads until a
//!   later heal+republish; a disk-full pulse proves reads don't depend
//!   on writability.
//! * **Writer chaos** — a writer transaction panics mid-flight, which
//!   poisons the `EpochCell`: the whole poisoned window must answer
//!   typed `Internal` errors (charged as injected, never against the
//!   budget) until `recover()` republishes the committed generation.
//!   A second, benign abort (guard dropped without commit) must be
//!   completely invisible to clients.
//! * **Network chaos** — alongside closed-loop good clients: a
//!   *staller* that writes half a frame and freezes (must be reaped by
//!   the idle timeout), a *half-closer* that sends a valid frame and
//!   shuts down its write side (must still be answered), and a
//!   *vanisher* that pipelines frames and drops the socket with
//!   responses unread (server writes must fail fast, not wedge).
//!
//! Exit is non-zero unless every SLO holds: zero worker panics, clean
//! graceful drain, the staller reaped, degraded reads observed, p99
//! batch latency under the bound, and non-injected errors within the
//! budget (`Internal` responses are charged against the store's own
//! injected-fault count first — an injected fault surfacing as a typed
//! error is the system working).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccam_core::epoch::EpochCell;
use ccam_core::{AccessMethod, Ccam, CcamBuilder};
use ccam_graph::roadmap::{road_map, RoadMapConfig};
use ccam_graph::{Network, NodeId};
use ccam_server::client::{Backoff, Client};
use ccam_server::protocol::{Request, Response, Status};
use ccam_server::{Server, ServerConfig};
use ccam_storage::{ChaosConfig, ChaosStore, MemPageStore, PageStore, RetryPolicy, RetryStore};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Config {
    seconds: u64,
    seed: u64,
    connections: usize,
    batch: usize,
    workers: usize,
    queue_depth: usize,
    out: String,
    max_p99_us: u64,
    /// Non-injected errors allowed per 1024 good-client requests.
    error_budget_per_1024: u64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seconds: 5,
        seed: 42,
        connections: 4,
        batch: 8,
        workers: 2,
        queue_depth: 8,
        out: "BENCH_PR7.json".to_string(),
        max_p99_us: 500_000,
        error_budget_per_1024: 10,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| die("missing value")).clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seconds" => cfg.seconds = value(&mut i).parse().unwrap_or(5),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or(42),
            "--connections" => cfg.connections = value(&mut i).parse().unwrap_or(4),
            "--batch" => cfg.batch = value(&mut i).parse().unwrap_or(8),
            "--workers" => cfg.workers = value(&mut i).parse().unwrap_or(2),
            "--queue-depth" => cfg.queue_depth = value(&mut i).parse().unwrap_or(8),
            "--out" => cfg.out = value(&mut i),
            "--max-p99-us" => cfg.max_p99_us = value(&mut i).parse().unwrap_or(500_000),
            "--error-budget-per-1024" => {
                cfg.error_budget_per_1024 = value(&mut i).parse().unwrap_or(10)
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("chaos_serve: {msg}");
    std::process::exit(2);
}

struct Workload {
    ids: Vec<NodeId>,
    walks: Vec<Vec<NodeId>>,
}

fn workload_from(net: &Network, seed: u64) -> Workload {
    let ids = net.node_ids();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut walks = Vec::with_capacity(128);
    for _ in 0..128 {
        let mut walk = vec![ids[rng.random_range(0..ids.len())]];
        for _ in 0..4 {
            let cur = *walk.last().unwrap();
            let Some(node) = net.nodes().find(|n| n.id == cur) else {
                break;
            };
            if node.successors.is_empty() {
                break;
            }
            let e = &node.successors[rng.random_range(0..node.successors.len())];
            walk.push(e.to);
        }
        walks.push(walk);
    }
    Workload { ids, walks }
}

fn sample_request(rng: &mut StdRng, w: &Workload) -> Request {
    let pick = rng.random_range(0..100u32);
    let id = w.ids[rng.random_range(0..w.ids.len())];
    if pick < 55 {
        Request::Find(id)
    } else if pick < 80 {
        Request::GetSuccessors(id)
    } else if pick < 92 {
        Request::Route(w.walks[rng.random_range(0..w.walks.len())].clone())
    } else {
        let walk = &w.walks[rng.random_range(0..w.walks.len())];
        Request::RangeAggregate(walk.windows(2).map(|p| (p[0], p[1])).collect())
    }
}

/// Good-client response tallies, by outcome class.
#[derive(Default)]
struct Tally {
    ok: u64,
    overloaded: u64,
    deadline: u64,
    degraded: u64,
    internal: u64,
    unexpected: u64,
    reconnects: u64,
    latencies_us: Vec<u64>,
}

fn run_good_client(
    addr: std::net::SocketAddr,
    w: &Workload,
    seed: u64,
    deadline: Instant,
) -> Tally {
    let mut tally = Tally::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut backoff = Backoff::new(
        3,
        Duration::from_micros(500),
        Duration::from_millis(10),
        seed,
    );
    let mut client: Option<Client> = None;
    while Instant::now() < deadline {
        let c = match &mut client {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(mut c) => {
                    let _ = c.set_io_timeout(Some(Duration::from_secs(10)));
                    c.set_deadline_ms(0); // server default budget
                    client.insert(c)
                }
                Err(_) => {
                    tally.reconnects += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        let batch: Vec<Request> = (0..8).map(|_| sample_request(&mut rng, w)).collect();
        let start = Instant::now();
        match c.call_with_retry(&batch, &mut backoff) {
            Ok(resps) => {
                tally.latencies_us.push(start.elapsed().as_micros() as u64);
                for r in &resps {
                    match r {
                        Response::Error(Status::Overloaded, _) => tally.overloaded += 1,
                        Response::Error(Status::DeadlineExceeded, _) => tally.deadline += 1,
                        Response::Error(Status::Degraded, _) | Response::RecordsDegraded { .. } => {
                            tally.degraded += 1
                        }
                        Response::Error(Status::Internal, _) => tally.internal += 1,
                        Response::Error(..)
                            if !matches!(r, Response::Error(Status::NotFound, _)) =>
                        {
                            tally.unexpected += 1
                        }
                        _ => tally.ok += 1,
                    }
                }
            }
            Err(_) => {
                // Transport failure (e.g. our connection was severed
                // while a fault client thrashed the server, or an io
                // timeout): the framing is unusable — reconnect.
                tally.reconnects += 1;
                client = None;
            }
        }
    }
    tally
}

/// Writes half a frame and freezes. Returns true when the server
/// severs the connection (EOF/reset) within five idle-timeout periods.
fn run_staller(addr: std::net::SocketAddr, idle_timeout: Duration) -> bool {
    let Ok(mut sock) = TcpStream::connect(addr) else {
        return false;
    };
    if sock.write_all(&64u32.to_le_bytes()).is_err() || sock.write_all(&[0u8; 8]).is_err() {
        return false;
    }
    let _ = sock.flush();
    let _ = sock.set_read_timeout(Some(idle_timeout * 5));
    let mut sink = [0u8; 16];
    matches!(sock.read(&mut sink), Ok(0) | Err(_))
}

/// Sends one valid frame, half-closes its write side, and expects the
/// full response followed by EOF. Returns true on that exact shape.
fn run_half_closer(addr: std::net::SocketAddr, w: &Workload) -> bool {
    let Ok(mut client) = Client::connect(addr) else {
        return false;
    };
    let _ = client.set_io_timeout(Some(Duration::from_secs(10)));
    let reqs = vec![Request::Find(w.ids[0]), Request::GetSuccessors(w.ids[1])];
    let payload = ccam_server::protocol::encode_request_batch(7, 0, &reqs);
    if client.send_raw(&payload).is_err() || client.close_write().is_err() {
        return false;
    }
    match client.recv_raw() {
        Ok(Some(frame)) => {
            ccam_server::protocol::decode_response_batch(&frame)
                .map(|(_, resps)| resps.len() == reqs.len())
                .unwrap_or(false)
                && client.drain().is_ok()
        }
        _ => false,
    }
}

/// Pipelines frames and vanishes with responses unread (close with
/// unread data resets the connection under the server's writes).
fn run_vanisher(addr: std::net::SocketAddr, w: &Workload) {
    let Ok(mut client) = Client::connect(addr) else {
        return;
    };
    let heavy: Vec<Request> = w
        .ids
        .iter()
        .take(64)
        .map(|&id| Request::GetSuccessors(id))
        .collect();
    for tag in 0..6u32 {
        let payload = ccam_server::protocol::encode_request_batch(tag, 0, &heavy);
        if client.send_raw(&payload).is_err() {
            return;
        }
    }
    std::thread::sleep(Duration::from_millis(25));
    // Drop: responses unread in the socket buffer → RST on close.
}

/// Push the store's current (possibly faulted or healed) state into a
/// fresh published snapshot. Served reads are pinned to the last
/// committed generation, so a storage fault never reaches clients until
/// a writer commits past it — which is exactly what this does. Retries:
/// the capture itself reads through the armed chaos store.
fn republish<S: PageStore>(db: &EpochCell<Ccam<S>>) -> bool {
    for _ in 0..10 {
        if let Ok(w) = db.write() {
            w.file().pool().clear().ok();
            if w.commit().is_ok() {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let cfg = parse_args();
    let net = road_map(&RoadMapConfig {
        grid_w: 20,
        grid_h: 20,
        removed_nodes: 8,
        target_segments: 650,
        target_directed: 1150,
        cell: 64,
        jitter: 24,
        seed: 5,
    });
    let w = workload_from(&net, cfg.seed);

    // Production-shaped stack: retries (jittered, really sleeping)
    // absorb short glitch bursts; only over-budget faults reach the
    // access method — where the server degrades or answers Internal.
    let (chaos, controller) = ChaosStore::new(
        MemPageStore::new(1024).unwrap_or_else(|e| die(&format!("store: {e}"))),
        ChaosConfig {
            seed: cfg.seed,
            ..ChaosConfig::default()
        },
    );
    let retry = RetryStore::with_sleeper(
        chaos,
        RetryPolicy {
            max_attempts: 4,
            base_delay_ticks: 1,
            max_delay_ticks: 8,
            jitter_seed: None,
        }
        .with_jitter(cfg.seed),
        |ticks| std::thread::sleep(Duration::from_micros(ticks * 100)),
    );
    let am = CcamBuilder::new(1024)
        .build_static_on(retry, &net)
        .unwrap_or_else(|e| die(&format!("build: {e}")));
    let target = net.node_ids()[17];
    let target_page = am
        .file()
        .page_of(target)
        .ok()
        .flatten()
        .unwrap_or_else(|| die("target node has no page"));
    let db = Arc::new(
        EpochCell::new(am).unwrap_or_else(|e| die(&format!("publish initial snapshot: {e}"))),
    );

    let idle_timeout = Duration::from_millis(700);
    let handle = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
            idle_timeout_ms: idle_timeout.as_millis() as u64,
            write_timeout_ms: 500,
            deadline_ms: 200,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| die(&format!("server: {e}")));
    let addr = handle.local_addr();
    eprintln!(
        "chaos_serve: seed {} — {} good clients + 3 fault clients against {addr} for {}s",
        cfg.seed, cfg.connections, cfg.seconds
    );

    // Open the chaos valve only now: the build above ran clean.
    controller.arm();

    let wall = Instant::now();
    let run_deadline = wall + Duration::from_secs(cfg.seconds);
    let stop = AtomicBool::new(false);
    let half_close_ok = AtomicU64::new(0);
    let half_close_runs = AtomicU64::new(0);
    let writer_recovered = AtomicBool::new(false);

    let (tallies, staller_reaped) = std::thread::scope(|s| {
        let good: Vec<_> = (0..cfg.connections)
            .map(|i| {
                let w = &w;
                s.spawn(move || run_good_client(addr, w, cfg.seed + i as u64, run_deadline))
            })
            .collect();
        let staller = s.spawn(|| run_staller(addr, idle_timeout));
        let stop_ref = &stop;
        let (hc_ok, hc_runs) = (&half_close_ok, &half_close_runs);
        let w_ref = &w;
        s.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) && Instant::now() < run_deadline {
                hc_runs.fetch_add(1, Ordering::Relaxed);
                if run_half_closer(addr, w_ref) {
                    hc_ok.fetch_add(1, Ordering::Relaxed);
                }
                run_vanisher(addr, w_ref);
                std::thread::sleep(Duration::from_millis(100));
            }
        });

        // Mid-run targeted faults, healed before the run ends. Served
        // reads come from pinned snapshots now, so mutating the store
        // is invisible to clients until the damage is committed into a
        // new published generation — each phase republishes explicitly.
        let controller = &controller;
        let db = &db;
        let writer_recovered = &writer_recovered;
        s.spawn(move || {
            let phase = Duration::from_secs(cfg.seconds) / 5;
            std::thread::sleep(phase);
            // Phase 1 — corrupt one data page and republish: reads of
            // it must degrade, not 500. The capture re-reads the page
            // from the store (cache evicted first) and pins it as
            // unreadable in the new generation; no eviction race with
            // the workers is possible because they never touch the
            // store, only the snapshot.
            controller.corruption.mark_corrupt(target_page);
            if !republish(db) {
                eprintln!("chaos_serve: could not republish corrupted view");
            }
            std::thread::sleep(phase);
            // Phase 2 — ENOSPC pulse: the snapshot read path owes
            // nothing to writability.
            controller.disk.fill_after(0, false);
            std::thread::sleep(phase);
            controller.disk.drain();
            // Phase 3 — writer panic mid-transaction: the cell is
            // poisoned, the whole window answers typed Internal
            // errors (charged as injected), and recover() reopens
            // serving on the committed generation.
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _w = db.write().expect("writer lock before injected panic");
                panic!("chaos_serve: injected writer panic");
            }))
            .is_err();
            std::thread::sleep(Duration::from_millis(100));
            if panicked && db.recover().is_ok() {
                writer_recovered.store(true, Ordering::Relaxed);
            }
            // Phase 4 — benign abort: a guard dropped without commit
            // must not bump the epoch or disturb a single client.
            let epoch_before = db.epoch();
            if let Ok(w) = db.write() {
                drop(w);
            }
            assert_eq!(db.epoch(), epoch_before, "benign abort bumped the epoch");
            // Heal: clear the corruption and republish a clean view.
            controller.corruption.clear_corrupt(target_page);
            if let Ok(w) = db.write() {
                w.file().clear_quarantined();
                w.file().pool().clear().ok();
                if w.commit().is_err() {
                    eprintln!("chaos_serve: could not republish healed view");
                }
            }
        });

        let tallies: Vec<Tally> = good
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| die("good client panicked")))
            .collect();
        stop.store(true, Ordering::Relaxed);
        let reaped = staller.join().unwrap_or(false);
        (tallies, reaped)
    });
    let elapsed = wall.elapsed().as_secs_f64();

    controller.disarm();
    let injected = controller.injected_faults();
    let metrics = Arc::clone(handle.metrics());
    let graceful_drain = handle.shutdown().is_ok();

    let mut t = Tally::default();
    for mut x in tallies {
        t.ok += x.ok;
        t.overloaded += x.overloaded;
        t.deadline += x.deadline;
        t.degraded += x.degraded;
        t.internal += x.internal;
        t.unexpected += x.unexpected;
        t.reconnects += x.reconnects;
        t.latencies_us.append(&mut x.latencies_us);
    }
    t.latencies_us.sort_unstable();
    let total = t.ok + t.overloaded + t.deadline + t.degraded + t.internal + t.unexpected;
    let p99 = percentile(&t.latencies_us, 0.99);
    let worker_panics = metrics.counter("serve.worker_panics");
    let degraded_reads = metrics.counter("serve.degraded_reads");
    let idle_reaped = metrics.counter("serve.idle_reaped");
    let snapshot_pins = metrics.counter("serve.snapshot_pins");
    let poisoned_internals = metrics.counter("serve.internal_errors.poisoned");
    let recovered = writer_recovered.load(Ordering::Relaxed);
    // Internal responses are charged against the store's own injected
    // faults and the injected writer-panic (poisoned) window first;
    // only the excess (plus protocol-level surprises) counts against
    // the error budget.
    let non_injected = t.internal.saturating_sub(injected + poisoned_internals) + t.unexpected;
    let budget = (total.max(1) * cfg.error_budget_per_1024) / 1024;

    let mut violations: Vec<String> = Vec::new();
    if worker_panics > 0 {
        violations.push(format!("{worker_panics} worker panics (want 0)"));
    }
    if !graceful_drain {
        violations.push("shutdown did not drain cleanly".to_string());
    }
    if !staller_reaped {
        violations.push("stalled half-frame client was not reaped".to_string());
    }
    if degraded_reads == 0 {
        violations.push("no degraded reads despite page corruption".to_string());
    }
    if !recovered {
        violations.push("writer panic was not recovered".to_string());
    }
    if poisoned_internals == 0 {
        violations.push("poisoned window produced no typed Internal responses".to_string());
    }
    if non_injected > budget {
        violations.push(format!(
            "{non_injected} non-injected errors exceed budget {budget} ({}/1024 of {total})",
            cfg.error_budget_per_1024
        ));
    }
    if cfg.max_p99_us > 0 && p99 > cfg.max_p99_us {
        violations.push(format!("p99 {p99}us over bound {}us", cfg.max_p99_us));
    }

    let json = format!(
        "{{\n  \"bench\": \"chaos_serve\",\n  \"config\": {{\n    \"seed\": {},\n    \"seconds\": {},\n    \"connections\": {},\n    \"workers\": {},\n    \"queue_depth\": {}\n  }},\n  \"results\": {{\n    \"qps\": {:.1},\n    \"ok\": {},\n    \"overloaded\": {},\n    \"deadline_exceeded\": {},\n    \"degraded\": {},\n    \"internal\": {},\n    \"unexpected\": {},\n    \"reconnects\": {},\n    \"p50_us\": {},\n    \"p99_us\": {},\n    \"injected_faults\": {},\n    \"injected_stalls\": {},\n    \"non_injected_errors\": {},\n    \"worker_panics\": {},\n    \"degraded_reads\": {},\n    \"idle_reaped\": {},\n    \"snapshot_pins\": {},\n    \"poisoned_internals\": {},\n    \"writer_recovered\": {},\n    \"half_close_answered\": {},\n    \"half_close_runs\": {},\n    \"staller_reaped\": {},\n    \"graceful_drain\": {},\n    \"slo_violations\": {}\n  }}\n}}\n",
        cfg.seed,
        cfg.seconds,
        cfg.connections,
        cfg.workers,
        cfg.queue_depth,
        t.ok as f64 / elapsed,
        t.ok,
        t.overloaded,
        t.deadline,
        t.degraded,
        t.internal,
        t.unexpected,
        t.reconnects,
        percentile(&t.latencies_us, 0.50),
        p99,
        injected,
        controller.injected_stalls(),
        non_injected,
        worker_panics,
        degraded_reads,
        idle_reaped,
        snapshot_pins,
        poisoned_internals,
        recovered,
        half_close_ok.load(Ordering::Relaxed),
        half_close_runs.load(Ordering::Relaxed),
        staller_reaped,
        graceful_drain,
        violations.len(),
    );
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("--out {}: {e}", cfg.out)));
    println!(
        "ok {}  degraded {}  deadline {}  internal {} (injected {})  unexpected {}  p99 {}us  panics {}  drain {}",
        t.ok, t.degraded, t.deadline, t.internal, injected, t.unexpected, p99, worker_panics, graceful_drain
    );
    let _ = std::io::stdout().flush();

    if violations.is_empty() {
        eprintln!("chaos_serve: all SLOs held");
    } else {
        for v in &violations {
            eprintln!("chaos_serve: SLO VIOLATION — {v}");
        }
        std::process::exit(1);
    }
}
