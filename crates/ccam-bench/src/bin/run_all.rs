//! Runs every experiment binary in sequence and writes a combined
//! report — the one-command regeneration of EXPERIMENTS.md's data.
//!
//! ```sh
//! cargo run --release -p ccam-bench --bin run_all [report.txt]
//! ```

use std::io::Write;
use std::process::Command;

const BINARIES: &[&str] = &[
    "fig5_crr_vs_blocksize",
    "table5_operation_costs",
    "fig6_route_eval",
    "fig7_reorg_policies",
    "ablation_partitioners",
    "ablation_buffer",
    "ablation_policies_extended",
    "ablation_index_cost",
    "ablation_workloads",
    "scaling",
];

fn main() {
    let out_path = std::env::args().nth(1);
    let mut combined = String::new();
    let mut failures = Vec::new();

    for bin in BINARIES {
        eprintln!("== running {bin} ...");
        // Experiment binaries live next to this one in the target dir.
        let exe = std::env::current_exe().expect("own path");
        let exe = exe.parent().expect("bin dir").join(bin);
        let output = Command::new(&exe).output().unwrap_or_else(|e| {
            panic!("spawn {bin}: {e} (run `cargo build --release -p ccam-bench` first)")
        });
        let text = String::from_utf8_lossy(&output.stdout);
        combined.push_str(&format!("{:=^78}\n", format!(" {bin} ")));
        combined.push_str(&text);
        combined.push('\n');
        if !output.status.success() {
            failures.push(*bin);
        }
        let misses = text.lines().filter(|l| l.contains("[MISS]")).count();
        if misses > 0 {
            failures.push(*bin);
            eprintln!("   {misses} shape check(s) MISSED");
        }
    }

    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create report");
            f.write_all(combined.as_bytes()).expect("write report");
            eprintln!("report written to {path}");
        }
        None => print!("{combined}"),
    }

    if failures.is_empty() {
        eprintln!(
            "all {} experiments completed; every shape check passed",
            BINARIES.len()
        );
    } else {
        eprintln!("FAILURES: {failures:?}");
        std::process::exit(1);
    }
}
