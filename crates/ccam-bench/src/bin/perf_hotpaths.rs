//! Wall-clock benchmark for the PR-5 hot paths: parallel bulk
//! `Create()` and the O(1) sharded buffer pool.
//!
//! Unlike the paper-figure binaries (which count page accesses, the
//! machine-independent currency), this harness measures *time* — the
//! thing the parallel clustering and the pool rewrite actually improve.
//! It emits a machine-readable JSON report (`BENCH_PR5.json` by
//! default) with before/after numbers:
//!
//! * **clustering** — `cluster-nodes-into-pages()` on a synthetic grid
//!   well past the paper's 1079 nodes (default 50 176 nodes), swept
//!   over thread counts for **both** the flat and multilevel strategies
//!   (JSON blocks `clustering` and `clustering_multilevel`, each run
//!   with its speedup over the strategy's own 1-thread row), with a
//!   byte-identity check across all of them;
//! * **create** — full `Static-Create()` (clustering + bulk load) at
//!   1 thread vs all cores;
//! * **pool** — the new sharded pool vs an inline replica of the old
//!   `Vec<Frame>` linear-scan pool, on hit-heavy, miss-heavy and
//!   4-thread concurrent workloads.
//!
//! ```text
//! perf_hotpaths [--grid N] [--block N] [--out FILE]
//!               [--quick] [--check-baseline FILE]
//! ```
//!
//! `--quick` shrinks the grid and op counts for CI smoke runs.
//! `--check-baseline FILE` compares the fresh clustering throughput
//! against a previously committed report and exits non-zero when it
//! regressed more than 2x (the CI guard against accidental
//! de-parallelization or an O(n²) slip).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use ccam_core::am::{AccessMethod, CcamBuilder};
use ccam_graph::generators::grid_network;
use ccam_partition::{
    cluster_nodes_into_pages_with, ClusterOptions, PartGraph, PartitionStrategy, Partitioner,
};
use ccam_storage::{BufferPool, MemPageStore, PageId, PageStore};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid: u32 = 224; // 224 × 224 = 50 176 nodes
    let mut block: usize = 1024;
    let mut out = String::from("BENCH_PR5.json");
    let mut quick = false;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--grid" => {
                grid = args[i + 1].parse().expect("--grid N");
                i += 2;
            }
            "--block" => {
                block = args[i + 1].parse().expect("--block N");
                i += 2;
            }
            "--out" => {
                out = args[i + 1].clone();
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--check-baseline" => {
                baseline = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if quick {
        grid = grid.min(64); // 4096 nodes: seconds, not minutes
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // On a 1-core box a thread sweep measures scheduler overhead, not
    // parallel speedup — every ratio comes out ~1.0x and a baseline
    // recorded on real hardware would flag it as a regression. Run the
    // single-threaded row only and mark the sweep as skipped.
    let sweep_skipped = cores == 1;
    let mut thread_counts = if sweep_skipped {
        vec![1usize]
    } else {
        vec![1usize, 2, 4]
    };
    if cores > 4 {
        thread_counts.push(cores);
    }
    thread_counts.retain(|&t| t <= cores.max(4));
    thread_counts.dedup();

    println!("perf_hotpaths: grid {grid}x{grid}, block {block} B, {cores} cores\n");
    let net = grid_network(grid, grid, 1.0);
    let nodes = net.len();
    let edges = net.num_edges();
    println!("network: {nodes} nodes, {edges} directed edges");

    // ---- Phase 1: clustering, swept over thread counts --------------
    // The same PartGraph `Static-Create()` builds internally: node
    // clustering weights against the real page budget, uniform edge
    // weights (the CRR experiments' setting).
    let budget = CcamBuilder::new(block)
        .build_empty()
        .expect("empty file")
        .file()
        .clustering_budget();
    let all: Vec<&ccam_graph::NodeData> = net.nodes().collect();
    let idx_of: HashMap<ccam_graph::NodeId, usize> =
        all.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let sizes: Vec<usize> = all
        .iter()
        .map(|n| ccam_core::file::clustering_weight(n))
        .collect();
    let mut part_edges = Vec::new();
    for (i, n) in all.iter().enumerate() {
        for e in &n.successors {
            if let Some(&j) = idx_of.get(&e.to) {
                part_edges.push((i, j, 1u64));
            }
        }
    }
    let graph = PartGraph::new(sizes, &part_edges);

    // Both strategies sweep the same thread counts; each row records its
    // speedup over the same strategy's 1-thread run so the parallel
    // fan-out is finally measured per thread count (ISSUE 10 satellite).
    let strategies = [
        ("flat", PartitionStrategy::Flat),
        ("multilevel", PartitionStrategy::Multilevel),
    ];
    // (thread count, seconds, nodes/sec, page count) per sweep point.
    type SweepRow = (usize, f64, f64, usize);
    let mut sweeps: Vec<(&str, Vec<SweepRow>, bool)> = Vec::new();
    for &(sname, strategy) in &strategies {
        let mut rows = Vec::new();
        let mut reference: Option<Vec<Vec<usize>>> = None;
        let mut identical = true;
        for &t in &thread_counts {
            let opts = ClusterOptions::new(Partitioner::RatioCut)
                .threads(t)
                .strategy(strategy);
            let t0 = Instant::now();
            let groups = cluster_nodes_into_pages_with(&graph, budget, opts);
            let secs = t0.elapsed().as_secs_f64();
            let nps = nodes as f64 / secs;
            println!(
                "clustering[{sname}]  threads={t:<2}  {secs:8.3}s  {nps:10.0} nodes/s  {} pages",
                groups.len()
            );
            rows.push((t, secs, nps, groups.len()));
            match &reference {
                None => reference = Some(groups),
                Some(r) => identical &= *r == groups,
            }
        }
        sweeps.push((sname, rows, identical));
    }
    let (_, ref cluster_rows, _) = sweeps[0];
    let secs_at = |rows: &[SweepRow], want: usize| {
        rows.iter().find(|(t, ..)| *t == want).map(|&(_, s, ..)| s)
    };
    if sweep_skipped {
        println!(
            "clustering: thread sweep skipped (1 core available — no parallelism to measure)\n"
        );
    } else {
        for (sname, rows, ident) in &sweeps {
            let s = match (secs_at(rows, 1), secs_at(rows, 4)) {
                (Some(s1), Some(s4)) => format!("{:.2}x", s1 / s4),
                _ => "n/a".to_string(),
            };
            println!(
                "clustering[{sname}]: identical across thread counts = {ident}, \
                 speedup @4 threads = {s}"
            );
        }
        println!();
    }

    // ---- Phase 2: full Static-Create(), 1 thread vs all cores -------
    let t0 = Instant::now();
    let am1 = CcamBuilder::new(block)
        .threads(1)
        .build_static(&net)
        .expect("create 1t");
    let create_1t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let am_n = CcamBuilder::new(block)
        .threads(0)
        .build_static(&net)
        .expect("create nt");
    let create_nt = t0.elapsed().as_secs_f64();
    let same_layout = am1.file().num_pages() == am_n.file().num_pages()
        && am1.crr().expect("crr") == am_n.crr().expect("crr");
    println!(
        "create      threads=1   {create_1t:8.3}s\ncreate      threads={cores:<3} {create_nt:8.3}s  ({:.2}x, layout identical = {same_layout})\n",
        create_1t / create_nt
    );
    drop(am1);
    drop(am_n);

    // ---- Phase 3: buffer pool, old linear replica vs new ------------
    // Two regimes, both reported honestly: at a small capacity the old
    // pool's linear scan is cache-resident and hard to beat; the O(1)
    // structure is for large pools, where the old scan cost grows with
    // every frame while the new path stays flat.
    let ops: u64 = if quick { 200_000 } else { 2_000_000 };
    // (capacity, hit-heavy working set, miss-heavy working set)
    let regimes = [(256usize, 128usize, 4096usize), (4096, 2048, 65536)];
    let mut pool_rows = Vec::new();
    for &(cap, hot, cold) in &regimes {
        let hit_heavy = bench_pool_pair(block, cap, hot, ops);
        println!(
            "pool cap={cap:<5} hit-heavy    old {:>10.0} ops/s   new {:>10.0} ops/s   ({:.2}x)",
            hit_heavy.0,
            hit_heavy.1,
            hit_heavy.1 / hit_heavy.0
        );
        let miss_heavy = bench_pool_pair(block, cap, cold, ops / 4);
        println!(
            "pool cap={cap:<5} miss-heavy   old {:>10.0} ops/s   new {:>10.0} ops/s   ({:.2}x)",
            miss_heavy.0,
            miss_heavy.1,
            miss_heavy.1 / miss_heavy.0
        );
        pool_rows.push((cap, hit_heavy, miss_heavy));
    }
    let conc_cap = regimes[regimes.len() - 1].0;
    let conc = bench_pool_concurrent(block, conc_cap, ops / 2);
    println!(
        "pool cap={conc_cap:<5} 4-thread     old {:>10.0} ops/s   new {:>10.0} ops/s   ({:.2}x)\n",
        conc.0,
        conc.1,
        conc.1 / conc.0
    );

    // ---- Report -----------------------------------------------------
    let mut j = String::new();
    let _ = write!(
        j,
        "{{\n  \"config\": {{\"grid\": {grid}, \"nodes\": {nodes}, \"edges\": {edges}, \
         \"block\": {block}, \"available_threads\": {cores}, \"quick\": {quick}}},\n"
    );
    // One block per strategy: "clustering" (flat — the key the baseline
    // gate reads, unchanged for compatibility) and
    // "clustering_multilevel". Every run row carries its speedup over
    // the same strategy's 1-thread run.
    for (sname, rows, ident) in &sweeps {
        let key = if *sname == "flat" {
            "clustering".to_string()
        } else {
            format!("clustering_{sname}")
        };
        let _ = write!(
            j,
            "  \"{key}\": {{\n    \"identical_across_threads\": {ident},\n    \
             \"thread_sweep_skipped\": {sweep_skipped},\n    \"runs\": [\n"
        );
        let s1 = secs_at(rows, 1);
        for (k, (t, secs, nps, pages)) in rows.iter().enumerate() {
            // `null` rather than a fabricated 1.0 — consumers must not
            // mistake "could not measure" for "did not speed up".
            let sp = s1.map_or("null".to_string(), |s| format!("{:.3}", s / secs));
            let _ = writeln!(
                j,
                "      {{\"threads\": {t}, \"secs\": {secs:.4}, \"nodes_per_sec\": {nps:.0}, \
                 \"pages\": {pages}, \"speedup_vs_1_thread\": {sp}}}{}",
                if k + 1 < rows.len() { "," } else { "" }
            );
        }
        let best: f64 = rows.iter().map(|&(_, _, n, _)| n).fold(0.0, f64::max);
        let sp4 = match (secs_at(rows, 1), secs_at(rows, 4)) {
            (Some(a), Some(b)) => format!("{:.3}", a / b),
            _ => "null".to_string(),
        };
        let _ = write!(
            j,
            "    ],\n    \"speedup_at_4_threads\": {sp4},\n    \
             \"best_nodes_per_sec\": {best:.0}\n  }},\n"
        );
    }
    let best_nps = cluster_rows
        .iter()
        .map(|&(_, _, n, _)| n)
        .fold(0.0, f64::max);
    let _ = writeln!(
        j,
        "  \"create\": {{\"secs_1_thread\": {create_1t:.4}, \"secs_all_cores\": {create_nt:.4}, \
         \"speedup\": {:.3}, \"layout_identical\": {same_layout}}},",
        create_1t / create_nt
    );
    let pool_obj = |(old, new): (f64, f64)| {
        format!(
            "{{\"old_ops_per_sec\": {old:.0}, \"new_ops_per_sec\": {new:.0}, \"speedup\": {:.3}}}",
            new / old
        )
    };
    let _ = write!(j, "  \"pool\": {{\n    \"regimes\": [\n");
    for (k, &(cap, hit, miss)) in pool_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"capacity\": {cap}, \"hit_heavy\": {}, \"miss_heavy\": {}}}{}",
            pool_obj(hit),
            pool_obj(miss),
            if k + 1 < pool_rows.len() { "," } else { "" }
        );
    }
    let _ = write!(
        j,
        "    ],\n    \"concurrent_4_threads\": {{\"capacity\": {conc_cap}, \"result\": {}}}\n  }}\n}}\n",
        pool_obj(conc)
    );
    std::fs::write(&out, &j).expect("write report");
    println!("wrote {out}");

    // ---- Optional CI regression gate --------------------------------
    if let Some(path) = baseline {
        let base = std::fs::read_to_string(&path).expect("read baseline");
        let base_nps = extract_number(&base, "best_nodes_per_sec")
            .expect("baseline missing best_nodes_per_sec");
        let ratio = base_nps / best_nps;
        // A baseline recorded on a different core count is a different
        // machine: its absolute throughput says nothing about this run,
        // so comparing would either mask a real regression or fail a
        // healthy run. Warn loudly and report the ratio without gating.
        let base_cores = extract_number(&base, "available_threads");
        let cores_match = base_cores.is_none_or(|b| b as usize == cores);
        if !cores_match {
            eprintln!(
                "WARNING: baseline {path} was recorded on {:.0} cores, this run has {cores} — \
                 cross-machine throughput is not comparable; regression gate skipped \
                 (informational: {best_nps:.0} nodes/s vs baseline {base_nps:.0}, {ratio:.2}x)",
                base_cores.unwrap_or(0.0)
            );
        } else if ratio > 2.0 {
            eprintln!(
                "FAIL: clustering throughput regressed {ratio:.2}x \
                 (baseline {base_nps:.0} nodes/s, now {best_nps:.0} nodes/s)"
            );
            std::process::exit(1);
        } else {
            println!(
                "baseline check ok: {best_nps:.0} nodes/s vs baseline {base_nps:.0} nodes/s \
                 ({ratio:.2}x, threshold 2x)"
            );
        }
    }
    for (sname, _, ident) in &sweeps {
        if !ident {
            eprintln!("FAIL: {sname} clustering output differed across thread counts");
            std::process::exit(1);
        }
    }
}

/// Pulls `"key": <number>` out of a report written by this binary.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The pre-PR-5 buffer pool, replicated inline for an honest
/// before/after: a flat `Vec` of frames, page lookup *and* LRU victim
/// selection both by linear scan over every frame, recency via a
/// monotone `last_used` tick. Single-threaded by construction (the old
/// pool serialized everything behind one mutex).
struct OldPool {
    store: MemPageStore,
    frames: Vec<OldFrame>,
    cap: usize,
    tick: u64,
}

struct OldFrame {
    id: PageId,
    data: Box<[u8]>,
    dirty: bool,
    last_used: u64,
}

impl OldPool {
    fn new(store: MemPageStore, cap: usize) -> Self {
        OldPool {
            store,
            frames: Vec::new(),
            cap,
            tick: 0,
        }
    }

    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.tick += 1;
        // Linear lookup — the O(frames) access path this PR removes.
        if let Some(i) = self.frames.iter().position(|fr| fr.id == id) {
            self.frames[i].last_used = self.tick;
            return f(&self.frames[i].data);
        }
        if self.frames.len() >= self.cap {
            // Linear LRU victim scan.
            let (v, _) = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, fr)| fr.last_used)
                .expect("non-empty");
            let victim = self.frames.swap_remove(v);
            if victim.dirty {
                self.store.write(victim.id, &victim.data).expect("write");
            }
        }
        let mut data = vec![0u8; self.store.page_size()].into_boxed_slice();
        self.store.read(id, &mut data).expect("read");
        self.frames.push(OldFrame {
            id,
            data,
            dirty: false,
            last_used: self.tick,
        });
        f(&self.frames.last().expect("just pushed").data)
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Allocates `n` zeroed pages directly in a store.
fn alloc_pages(store: &mut MemPageStore, n: usize) -> Vec<PageId> {
    (0..n).map(|_| store.allocate().expect("alloc")).collect()
}

/// Single-threaded ops/sec over a uniform working set of `set` pages:
/// `(old, new)`.
fn bench_pool_pair(block: usize, cap: usize, set: usize, ops: u64) -> (f64, f64) {
    let mut store = MemPageStore::new(block).expect("store");
    let ids = alloc_pages(&mut store, set);
    let mut old = OldPool::new(store, cap);
    let mut seed = 0x5EED_u64;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        let id = ids[(xorshift(&mut seed) % set as u64) as usize];
        acc = acc.wrapping_add(old.with_page(id, |b| b[0] as u64));
    }
    let old_rate = ops as f64 / t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let mut store = MemPageStore::new(block).expect("store");
    let ids = alloc_pages(&mut store, set);
    let pool = BufferPool::new(store, cap);
    let mut seed = 0x5EED_u64;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        let id = ids[(xorshift(&mut seed) % set as u64) as usize];
        acc = acc.wrapping_add(pool.with_page(id, |b| b[0] as u64).expect("read"));
    }
    let new_rate = ops as f64 / t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    (old_rate, new_rate)
}

/// 4 threads, each hammering its own quarter of a pool-resident working
/// set (pure hit path): `(old-behind-a-mutex, new-sharded)` ops/sec.
/// This is the reader-concurrency case the sharded page table exists
/// for — the old design serializes every access on one lock.
fn bench_pool_concurrent(block: usize, cap: usize, ops_per_thread: u64) -> (f64, f64) {
    const THREADS: usize = 4;
    let per = cap / THREADS;

    let mut store = MemPageStore::new(block).expect("store");
    let ids = alloc_pages(&mut store, cap);
    let old = Arc::new(Mutex::new(OldPool::new(store, cap)));
    let barrier = Arc::new(Barrier::new(THREADS));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let old = Arc::clone(&old);
            let barrier = Arc::clone(&barrier);
            let mine: Vec<PageId> = ids[t * per..(t + 1) * per].to_vec();
            std::thread::spawn(move || {
                let mut seed = 0xBEEF_u64 + t as u64;
                barrier.wait();
                let mut acc = 0u64;
                for _ in 0..ops_per_thread {
                    let id = mine[(xorshift(&mut seed) % per as u64) as usize];
                    acc =
                        acc.wrapping_add(old.lock().expect("lock").with_page(id, |b| b[0] as u64));
                }
                std::hint::black_box(acc);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("join");
    }
    let old_rate = (THREADS as u64 * ops_per_thread) as f64 / t0.elapsed().as_secs_f64();

    let mut store = MemPageStore::new(block).expect("store");
    let ids = alloc_pages(&mut store, cap);
    let pool = Arc::new(BufferPool::new(store, cap));
    let barrier = Arc::new(Barrier::new(THREADS));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            let mine: Vec<PageId> = ids[t * per..(t + 1) * per].to_vec();
            std::thread::spawn(move || {
                let mut seed = 0xBEEF_u64 + t as u64;
                barrier.wait();
                let mut acc = 0u64;
                for _ in 0..ops_per_thread {
                    let id = mine[(xorshift(&mut seed) % per as u64) as usize];
                    acc = acc.wrapping_add(pool.with_page(id, |b| b[0] as u64).expect("read"));
                }
                std::hint::black_box(acc);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("join");
    }
    let new_rate = (THREADS as u64 * ops_per_thread) as f64 / t0.elapsed().as_secs_f64();
    (old_rate, new_rate)
}
