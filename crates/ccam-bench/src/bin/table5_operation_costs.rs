//! Table 5 — "I/O cost for Network Operations".
//!
//! Average data-page accesses per operation on the benchmark road map at
//! block size 1 KiB, measured on a random 50% of the nodes (paper §4.2),
//! with the cost-model predictions of Tables 3/4 alongside.
//!
//! Conventions taken from the paper:
//! * search operations assume the page of the source node is already
//!   buffered (the harness primes the buffer with an unmeasured `Find`),
//! * update costs count reads + writes, with writes ≈ reads (§3.2),
//! * page under/overflows are side-stepped (first-order policy, each
//!   deleted node is immediately re-inserted) "to filter out the effect
//!   of reorganization policies".

use ccam_bench::{benchmark_network, measure_io, render_table, sample_nodes, EXPERIMENT_SEED};
use ccam_core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam_core::costmodel::CostParams;
use ccam_core::reorg::ReorgPolicy;
use std::collections::HashMap;

fn main() {
    let net = benchmark_network();
    let block = 1024;
    println!("Table 5: I/O cost for network operations  (block = {block} B, 50% node sample)\n");

    let w = HashMap::new();
    // First-order policy: reorganization filtered out, as in the paper.
    let methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(
            CcamBuilder::new(block)
                .policy(ReorgPolicy::FirstOrder)
                .build_static(&net)
                .expect("CCAM"),
        ),
        Box::new(TopoAm::create(&net, block, TraversalOrder::DepthFirst, None, &w).expect("DFS")),
        Box::new(GridAm::create(&net, block).expect("Grid")),
        Box::new(TopoAm::create(&net, block, TraversalOrder::BreadthFirst, None, &w).expect("BFS")),
    ];

    let sample = sample_nodes(&net, 0.5, EXPERIMENT_SEED + 1);
    let header: Vec<String> = [
        "method",
        "GetSuccs",
        "(pred)",
        "GetASucc",
        "(pred)",
        "Delete",
        "(pred)",
        "Insert",
        "alpha=CRR",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut params_line = String::new();

    for mut am in methods {
        let params = CostParams::measure(am.file()).expect("measure");
        // -- Get-successors / Get-A-successor: prime with Find, measure the op.
        let (mut gs_total, mut gs_n) = (0u64, 0u64);
        let (mut ga_total, mut ga_n) = (0u64, 0u64);
        for &x in &sample {
            let rec = am.find(x).expect("io").expect("sampled node exists");
            if rec.successors.is_empty() {
                continue;
            }
            // Get-successors, cold except for x's own page.
            am.file().pool().clear().expect("clear");
            am.find(x).expect("prime");
            let before = am.stats().snapshot();
            am.get_successors(x).expect("get_successors");
            gs_total += am.stats().snapshot().since(&before).physical_reads;
            gs_n += 1;
            // Get-A-successor of the first successor, same priming.
            am.file().pool().clear().expect("clear");
            am.find(x).expect("prime");
            let before = am.stats().snapshot();
            am.get_a_successor(x, rec.successors[0].to)
                .expect("get_a_successor");
            ga_total += am.stats().snapshot().since(&before).physical_reads;
            ga_n += 1;
        }

        // -- Delete (measured) then Insert back (measured): both columns
        // from one sweep, file restored after each pair.
        let (mut del_total, mut ins_total, mut upd_n) = (0u64, 0u64, 0u64);
        for &x in &sample {
            let (deleted, del_io) =
                measure_io(am.as_mut(), |am| am.delete_node(x).expect("delete"));
            let Some(deleted) = deleted else { continue };
            let (_, ins_io) = measure_io(am.as_mut(), |am| {
                am.insert_node(&deleted.data, &deleted.incoming)
                    .expect("insert")
            });
            del_total += del_io;
            ins_total += ins_io;
            upd_n += 1;
        }

        let gs = gs_total as f64 / gs_n as f64;
        let ga = ga_total as f64 / ga_n as f64;
        let del = del_total as f64 / upd_n as f64;
        let ins = ins_total as f64 / upd_n as f64;
        rows.push(vec![
            am.name().to_string(),
            format!("{gs:.3}"),
            format!("{:.3}", params.get_successors_cost()),
            format!("{ga:.3}"),
            format!("{:.3}", params.get_a_successor_cost()),
            format!("{del:.3}"),
            format!("{:.3}", params.delete_cost_rw(ReorgPolicy::FirstOrder)),
            format!("{ins:.3}"),
            format!("{:.4}", params.alpha),
        ]);
        if am.name() == "CCAM-S" {
            params_line = format!(
                "|A| = {:.3}   lambda = {:.2}   gamma = {:.2}",
                params.avg_successors, params.avg_neighbors, params.blocking_factor
            );
        }
    }
    println!("{}", render_table(&header, &rows));
    println!("{params_line}");
    println!(
        "\nshape expectation (paper): CCAM lowest on GetSuccs/GetASucc/Delete; Grid File lowest on Insert."
    );
}
