//! Ablation — partitioning heuristic choice.
//!
//! The paper builds CCAM on Cheng & Wei's ratio cut but notes that
//! "other graph partitioning methods can also be used as the basis of
//! our scheme" and that "M-way partitioning may be used to further
//! improve the result" (§2, §2.2). This ablation builds CCAM-S on the
//! benchmark road map with each heuristic and reports CRR, page count,
//! blocking factor and build time.

use std::time::Instant;

use ccam_bench::{benchmark_network, render_table};
use ccam_core::am::{AccessMethod, CcamBuilder};
use ccam_partition::Partitioner;

fn main() {
    let net = benchmark_network();
    let block = 1024;
    println!(
        "Ablation: partitioner choice for CCAM-S  (block = {block} B, {} nodes)\n",
        net.len()
    );

    let configs: Vec<(&str, CcamBuilder)> = vec![
        (
            "ratio-cut (paper)",
            CcamBuilder::new(block).partitioner(Partitioner::RatioCut),
        ),
        (
            "fiduccia-mattheyses",
            CcamBuilder::new(block).partitioner(Partitioner::FiducciaMattheyses),
        ),
        (
            "kernighan-lin",
            CcamBuilder::new(block).partitioner(Partitioner::KernighanLin),
        ),
        (
            "ratio-cut + m-way refine",
            CcamBuilder::new(block)
                .partitioner(Partitioner::RatioCut)
                .multiway(8),
        ),
    ];

    let header: Vec<String> = ["partitioner", "CRR", "pages", "gamma", "build"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut crrs = Vec::new();
    for (name, builder) in configs {
        let t0 = Instant::now();
        let am = builder.build_static(&net).expect("create");
        let dt = t0.elapsed();
        let crr = am.crr().expect("crr");
        crrs.push((name, crr));
        rows.push(vec![
            name.to_string(),
            format!("{crr:.4}"),
            format!("{}", am.file().num_pages()),
            format!("{:.2}", am.file().blocking_factor()),
            format!("{:.0?}", dt),
        ]);
    }
    println!("{}", render_table(&header, &rows));

    let base = crrs
        .iter()
        .find(|(n, _)| n.starts_with("ratio-cut ("))
        .expect("base")
        .1;
    let mway = crrs
        .iter()
        .find(|(n, _)| n.contains("m-way"))
        .expect("mway")
        .1;
    println!("shape checks:");
    println!(
        "  [{}] every heuristic lands within 15% of ratio-cut CRR",
        if crrs.iter().all(|(_, c)| *c > base * 0.85) {
            "ok"
        } else {
            "MISS"
        }
    );
    println!(
        "  [{}] m-way refinement does not hurt CRR",
        if mway >= base - 1e-9 { "ok" } else { "MISS" }
    );
}
