//! `Static-Create()` at scale: flat vs multilevel clustering
//! (ISSUE 10's tentpole gate), plus the connectivity-aware prefetcher's
//! demonstrated win, written to `BENCH_PR10.json`.
//!
//! Three phases:
//!
//! * **paper scale** — the Minneapolis-like benchmark network
//!   (1079 nodes): full CCAM-S builds with both strategies, comparing
//!   CRR and per-route page accesses. This is where the 5% CRR-parity
//!   gate lives — quality must not be traded for speed where the paper's
//!   experiments run.
//! * **scale** — a synthetic road grid (default 1 000 000 nodes): both
//!   partitioners timed on the same `PartGraph` (the speedup gate), the
//!   multilevel strategy additionally taken through a full end-to-end
//!   build (wall-clock, nodes/sec, CRR, per-route page accesses — the
//!   capability the flat path cannot reach in reasonable time at this
//!   size).
//! * **prefetch** — the route workload on the scale build with the
//!   connectivity-aware prefetcher off vs on, recording demand-miss and
//!   wall-clock deltas. Prefetch reads are synchronous on the in-memory
//!   store, so the honest headline is the demand-miss reduction; the
//!   wall-clock delta is recorded as measured either way.
//!
//! ```text
//! build_scale [--nodes N] [--block N] [--routes N] [--out FILE]
//!             [--min-speedup X] [--quick]
//! ```
//!
//! `--quick` caps the grid at ~200k nodes for CI smoke runs. The binary
//! exits non-zero when a gate fails (speedup below `--min-speedup`,
//! default 5.0, or paper-scale CRR parity below 0.95), which is the CI
//! regression gate for BENCH_PR10.json.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use ccam_bench::{avg_route_io, benchmark_network, EXPERIMENT_SEED};
use ccam_core::am::{AccessMethod, Ccam, CcamBuilder};
use ccam_core::query::route::evaluate_route;
use ccam_graph::generators::grid_network;
use ccam_graph::walks::{random_walk_routes, Route};
use ccam_graph::Network;
use ccam_partition::{
    cluster_nodes_into_pages_with, residue_ratio, ClusterOptions, PartGraph, PartitionStrategy,
    Partitioner,
};
use ccam_storage::PageId;

/// Paper-scale CRR may drop at most 5% (relative) under multilevel.
const CRR_PARITY_MIN: f64 = 0.95;
/// Buffer frames for the prefetch phase: small enough to miss, large
/// enough that prefetched pages survive until the route reaches them.
const PREFETCH_FRAMES: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes_target: usize = 1_000_000;
    let mut block: usize = 1024;
    let mut routes_n: usize = 100;
    let mut out = String::from("BENCH_PR10.json");
    let mut min_speedup: f64 = 5.0;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                nodes_target = args[i + 1].parse().expect("--nodes N");
                i += 2;
            }
            "--block" => {
                block = args[i + 1].parse().expect("--block N");
                i += 2;
            }
            "--routes" => {
                routes_n = args[i + 1].parse().expect("--routes N");
                i += 2;
            }
            "--out" => {
                out = args[i + 1].clone();
                i += 2;
            }
            "--min-speedup" => {
                min_speedup = args[i + 1].parse().expect("--min-speedup X");
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if quick {
        nodes_target = nodes_target.min(200_000);
        routes_n = routes_n.min(40);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- Phase 1: paper scale — CRR parity ---------------------------
    let paper_net = benchmark_network();
    println!("paper scale: {} nodes, block {block} B", paper_net.len());
    let paper_routes = random_walk_routes(&paper_net, 100, 20, EXPERIMENT_SEED + 400);
    let paper_flat = build_timed(&paper_net, block, PartitionStrategy::Flat);
    let paper_ml = build_timed(&paper_net, block, PartitionStrategy::Multilevel);
    let paper = [
        report_build("flat", &paper_flat, &paper_routes),
        report_build("multilevel", &paper_ml, &paper_routes),
    ];
    let crr_parity = paper[1].crr / paper[0].crr;
    let route_ratio = paper[1].route_io / paper[0].route_io;
    println!(
        "paper scale: CRR parity {crr_parity:.4} (multilevel/flat), \
         route-access ratio {route_ratio:.3}\n"
    );
    drop(paper_flat);

    // ---- Phase 2: scale — the 1M-node road grid ----------------------
    let side = (nodes_target as f64).sqrt().round() as u32;
    let net = grid_network(side, side, 1.0);
    let nodes = net.len();
    let edges = net.num_edges();
    println!("scale: grid {side}x{side} = {nodes} nodes, {edges} directed edges");

    // Both partitioners on the same PartGraph — the speedup gate. The
    // graph is exactly what Static-Create() builds internally.
    let graph = part_graph(&net);
    let budget = CcamBuilder::new(block)
        .build_empty()
        .expect("empty file")
        .file()
        .clustering_budget();
    let cluster = |strategy: PartitionStrategy| {
        let t0 = Instant::now();
        let groups = cluster_nodes_into_pages_with(
            &graph,
            budget,
            ClusterOptions::new(Partitioner::RatioCut)
                .threads(0)
                .strategy(strategy),
        );
        let secs = t0.elapsed().as_secs_f64();
        let mut part = vec![0usize; graph.len()];
        for (gi, grp) in groups.iter().enumerate() {
            for &v in grp {
                part[v] = gi;
            }
        }
        (secs, groups.len(), residue_ratio(&graph, &part))
    };
    let (ml_secs, ml_pages, ml_rr) = cluster(PartitionStrategy::Multilevel);
    println!(
        "cluster[multilevel]  {ml_secs:9.3}s  {:10.0} nodes/s  {ml_pages} pages  residue {ml_rr:.4}",
        nodes as f64 / ml_secs
    );
    let (flat_secs, flat_pages, flat_rr) = cluster(PartitionStrategy::Flat);
    println!(
        "cluster[flat]        {flat_secs:9.3}s  {:10.0} nodes/s  {flat_pages} pages  residue {flat_rr:.4}",
        nodes as f64 / flat_secs
    );
    let speedup = flat_secs / ml_secs;
    println!("scale: multilevel speedup {speedup:.2}x over flat (gate: >= {min_speedup:.1}x)\n");
    drop(graph);

    // End-to-end multilevel build — the capability row.
    let scale_routes = random_walk_routes(&net, routes_n, 40, EXPERIMENT_SEED + 410);
    let scale_build = build_timed(&net, block, PartitionStrategy::Multilevel);
    let scale_row = report_build("multilevel", &scale_build, &scale_routes);

    // ---- Phase 3: prefetch on vs off on the scale build --------------
    let am = scale_build.am;
    let prefetch = bench_prefetch(&am, &scale_routes);
    println!(
        "prefetch off: {} demand misses, {:.3}s   on: {} demand misses ({} prefetched), {:.3}s",
        prefetch.off_reads,
        prefetch.off_secs,
        prefetch.on_demand,
        prefetch.on_issued,
        prefetch.on_secs
    );
    let miss_reduction = 1.0 - prefetch.on_demand as f64 / prefetch.off_reads as f64;
    println!(
        "prefetch: demand-miss reduction {:.1}%, wall delta {:+.3}s\n",
        miss_reduction * 100.0,
        prefetch.on_secs - prefetch.off_secs
    );

    // ---- Report + gates ---------------------------------------------
    let speedup_ok = speedup >= min_speedup;
    let parity_ok = crr_parity >= CRR_PARITY_MIN;
    let mut j = String::new();
    let _ = writeln!(
        j,
        "{{\n  \"config\": {{\"nodes\": {nodes}, \"grid\": {side}, \"edges\": {edges}, \
         \"block\": {block}, \"routes\": {routes_n}, \"available_threads\": {cores}, \
         \"quick\": {quick}}},"
    );
    let _ = writeln!(
        j,
        "  \"paper_scale\": {{\n    \"network_nodes\": {},\n{}{}    \
         \"crr_parity\": {crr_parity:.4},\n    \"route_access_ratio\": {route_ratio:.4}\n  }},",
        paper_net.len(),
        paper[0].json(4, false),
        paper[1].json(4, false),
    );
    let _ = writeln!(
        j,
        "  \"scale\": {{\n    \
         \"cluster_flat\": {{\"secs\": {flat_secs:.3}, \"nodes_per_sec\": {:.0}, \
         \"pages\": {flat_pages}, \"residue_ratio\": {flat_rr:.4}}},\n    \
         \"cluster_multilevel\": {{\"secs\": {ml_secs:.3}, \"nodes_per_sec\": {:.0}, \
         \"pages\": {ml_pages}, \"residue_ratio\": {ml_rr:.4}}},\n    \
         \"speedup\": {speedup:.3},\n{}  }},",
        nodes as f64 / flat_secs,
        nodes as f64 / ml_secs,
        scale_row.json(4, true),
    );
    let _ = writeln!(
        j,
        "  \"prefetch\": {{\"frames\": {PREFETCH_FRAMES}, \"routes\": {}, \
         \"off\": {{\"demand_misses\": {}, \"secs\": {:.4}}}, \
         \"on\": {{\"physical_reads\": {}, \"prefetch_issued\": {}, \"demand_misses\": {}, \
         \"secs\": {:.4}}}, \
         \"demand_miss_reduction\": {miss_reduction:.4}, \"wall_delta_secs\": {:.4}}},",
        scale_routes.len(),
        prefetch.off_reads,
        prefetch.off_secs,
        prefetch.on_reads,
        prefetch.on_issued,
        prefetch.on_demand,
        prefetch.on_secs,
        prefetch.on_secs - prefetch.off_secs,
    );
    let _ = writeln!(
        j,
        "  \"gates\": {{\"min_speedup\": {min_speedup:.1}, \"speedup_ok\": {speedup_ok}, \
         \"crr_parity_min\": {CRR_PARITY_MIN}, \"crr_parity_ok\": {parity_ok}, \
         \"pass\": {}}}\n}}",
        speedup_ok && parity_ok
    );
    check_json(&j);
    std::fs::write(&out, &j).expect("write report");
    println!("wrote {out}");

    if !parity_ok {
        eprintln!(
            "FAIL: paper-scale CRR parity {crr_parity:.4} below {CRR_PARITY_MIN} \
             (flat {:.4}, multilevel {:.4})",
            paper[0].crr, paper[1].crr
        );
        std::process::exit(1);
    }
    if !speedup_ok {
        eprintln!(
            "FAIL: multilevel speedup {speedup:.2}x below the {min_speedup:.1}x gate \
             (flat {flat_secs:.1}s vs multilevel {ml_secs:.1}s at {nodes} nodes)"
        );
        std::process::exit(1);
    }
    println!("gates ok: speedup {speedup:.2}x (>= {min_speedup:.1}x), parity {crr_parity:.4} (>= {CRR_PARITY_MIN})");
}

/// The `PartGraph` that `Static-Create()` builds internally: clustering
/// weights per node, uniform edge weights (the CRR setting).
fn part_graph(net: &Network) -> PartGraph {
    use std::collections::HashMap;
    let all: Vec<&ccam_graph::NodeData> = net.nodes().collect();
    let idx_of: HashMap<ccam_graph::NodeId, usize> =
        all.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let sizes: Vec<usize> = all
        .iter()
        .map(|n| ccam_core::file::clustering_weight(n))
        .collect();
    let mut part_edges = Vec::new();
    for (i, n) in all.iter().enumerate() {
        for e in &n.successors {
            if let Some(&j) = idx_of.get(&e.to) {
                part_edges.push((i, j, 1u64));
            }
        }
    }
    PartGraph::new(sizes, &part_edges)
}

struct TimedBuild {
    am: Ccam,
    secs: f64,
    nodes: usize,
}

fn build_timed(net: &Network, block: usize, strategy: PartitionStrategy) -> TimedBuild {
    let t0 = Instant::now();
    let am = CcamBuilder::new(block)
        .threads(0)
        .strategy(strategy)
        .build_static(net)
        .expect("Static-Create()");
    TimedBuild {
        am,
        secs: t0.elapsed().as_secs_f64(),
        nodes: net.len(),
    }
}

struct BuildRow {
    name: &'static str,
    secs: f64,
    nodes_per_sec: f64,
    pages: usize,
    crr: f64,
    route_io: f64,
}

impl BuildRow {
    /// One JSON line, indented `indent` spaces, keyed `build_<name>`.
    /// `last` suppresses the separating comma when the row closes its
    /// enclosing object — JSON allows no trailing comma.
    fn json(&self, indent: usize, last: bool) -> String {
        format!(
            "{:indent$}\"build_{}\": {{\"secs\": {:.3}, \"nodes_per_sec\": {:.0}, \
             \"pages\": {}, \"crr\": {:.4}, \"route_page_accesses\": {:.2}}}{}\n",
            "",
            self.name,
            self.secs,
            self.nodes_per_sec,
            self.pages,
            self.crr,
            self.route_io,
            if last { "" } else { "," },
        )
    }
}

fn report_build(name: &'static str, b: &TimedBuild, routes: &[Route]) -> BuildRow {
    let row = BuildRow {
        name,
        secs: b.secs,
        nodes_per_sec: b.nodes as f64 / b.secs,
        pages: b.am.file().num_pages(),
        crr: b.am.crr().expect("crr"),
        route_io: avg_route_io(&b.am, routes),
    };
    println!(
        "build[{name}]  {:9.3}s  {:10.0} nodes/s  {} pages  CRR {:.4}  {:.2} page-accesses/route",
        row.secs, row.nodes_per_sec, row.pages, row.crr, row.route_io
    );
    row
}

/// Minimal JSON well-formedness check (the workspace carries no serde):
/// the report is parsed before it is written, so a formatting bug —
/// e.g. a trailing comma — fails this run loudly instead of the
/// `json.load` downstream in CI. Panics with a byte offset on error.
fn check_json(s: &str) {
    let b = s.as_bytes();
    let mut i = 0usize;
    json_value(b, &mut i);
    json_ws(b, &mut i);
    assert!(i == b.len(), "invalid JSON: trailing data at byte {i}");
}

fn json_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_string(b: &[u8], i: &mut usize) {
    assert!(
        b.get(*i) == Some(&b'"'),
        "invalid JSON: expected string at byte {}",
        *i
    );
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return;
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    panic!("invalid JSON: unterminated string");
}

fn json_value(b: &[u8], i: &mut usize) {
    json_ws(b, i);
    match b.get(*i) {
        Some(&open @ (b'{' | b'[')) => {
            let close = if open == b'{' { b'}' } else { b']' };
            *i += 1;
            json_ws(b, i);
            if b.get(*i) == Some(&close) {
                *i += 1;
                return;
            }
            loop {
                if open == b'{' {
                    json_ws(b, i);
                    json_string(b, i);
                    json_ws(b, i);
                    assert!(
                        b.get(*i) == Some(&b':'),
                        "invalid JSON: expected ':' at byte {}",
                        *i
                    );
                    *i += 1;
                }
                json_value(b, i);
                json_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1, // next member; a trailing comma fails above
                    Some(&c) if c == close => {
                        *i += 1;
                        return;
                    }
                    c => panic!(
                        "invalid JSON: expected ',' or close at byte {}, got {c:?}",
                        *i
                    ),
                }
            }
        }
        Some(b'"') => json_string(b, i),
        Some(b't') if b[*i..].starts_with(b"true") => *i += 4,
        Some(b'f') if b[*i..].starts_with(b"false") => *i += 5,
        Some(b'n') if b[*i..].starts_with(b"null") => *i += 4,
        Some(&c) if c == b'-' || c.is_ascii_digit() => {
            *i += 1;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                *i += 1;
            }
        }
        c => panic!("invalid JSON: unexpected token at byte {}: {c:?}", *i),
    }
}

struct PrefetchResult {
    off_reads: u64,
    off_secs: f64,
    on_reads: u64,
    on_issued: u64,
    on_demand: u64,
    on_secs: f64,
}

/// The route workload with the connectivity-aware prefetcher off vs on:
/// when a page faults in, its successor pages (pages holding successors
/// of its records) are read into free frames. Counters stay honest —
/// prefetch reads land in `physical_reads` *and* `prefetch_issued`, so
/// demand misses are the difference.
fn bench_prefetch(am: &Ccam, routes: &[Route]) -> PrefetchResult {
    let pool = am.file().pool();
    pool.set_capacity(PREFETCH_FRAMES).expect("capacity");

    let run = || {
        let before = am.stats().snapshot();
        let t0 = Instant::now();
        for route in routes {
            // Cold pool per route (the Figure 6 methodology): the
            // prefetcher fills free frames only, so a warm full pool
            // would leave it nothing to do.
            pool.clear().expect("clear");
            let eval = evaluate_route(am, route).expect("route evaluation");
            debug_assert!(eval.complete);
        }
        let secs = t0.elapsed().as_secs_f64();
        let d = am.stats().snapshot().since(&before);
        (d.physical_reads, d.prefetch_issued, secs)
    };

    pool.set_prefetcher(None);
    let (off_reads, _, off_secs) = run();

    // Page-connectivity map: for every page, the distinct other pages
    // holding successors of its records — CCAM's page-adjacency graph.
    let page_of = am.file().page_map().expect("page map");
    let mut pages: Vec<PageId> = page_of.values().copied().collect();
    pages.sort_unstable();
    pages.dedup();
    let mut succ_pages: std::collections::HashMap<PageId, Vec<PageId>> =
        std::collections::HashMap::new();
    for page in pages {
        let mut out: Vec<PageId> = Vec::new();
        for rec in am.file().read_page_records(page).expect("read page") {
            for e in &rec.successors {
                if let Some(&p) = page_of.get(&e.to) {
                    if p != page && !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
        succ_pages.insert(page, out);
    }
    let map = Arc::new(succ_pages);
    let hook_map = Arc::clone(&map);
    pool.set_prefetcher(Some(Arc::new(move |id: PageId| {
        hook_map.get(&id).cloned().unwrap_or_default()
    })));
    let (on_reads, on_issued, on_secs) = run();
    pool.set_prefetcher(None);
    pool.set_capacity(ccam_core::file::DEFAULT_BUFFER_FRAMES)
        .expect("capacity");

    PrefetchResult {
        off_reads,
        off_secs,
        on_reads,
        on_issued,
        on_demand: on_reads - on_issued,
        on_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> BuildRow {
        BuildRow {
            name: "multilevel",
            secs: 1.5,
            nodes_per_sec: 666.6,
            pages: 12,
            crr: 0.7419,
            route_io: 5.53,
        }
    }

    /// The REVIEW.md regression: a row closing its enclosing object must
    /// not leave a trailing comma.
    #[test]
    fn build_row_closing_an_object_is_valid_json() {
        let j = format!("{{\n{}}}\n", row().json(2, true));
        check_json(&j);
    }

    #[test]
    fn build_row_followed_by_more_keys_is_valid_json() {
        let j = format!("{{\n{}  \"x\": 1\n}}\n", row().json(2, false));
        check_json(&j);
    }

    #[test]
    #[should_panic(expected = "invalid JSON")]
    fn check_json_rejects_trailing_comma() {
        check_json("{\"a\": 1,}");
    }

    #[test]
    #[should_panic(expected = "invalid JSON")]
    fn check_json_rejects_trailing_data() {
        check_json("{\"a\": 1} }");
    }

    #[test]
    fn check_json_accepts_report_shapes() {
        check_json("{\"a\": [1, -2.5e3, true, false, null], \"b\": {\"c\": \"d\\\"e\"}}");
        check_json("  [ ]  ");
        check_json("{}");
    }
}
