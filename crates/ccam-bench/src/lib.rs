//! Experiment harness for the CCAM reproduction.
//!
//! One binary per table/figure of the paper's evaluation (§4):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig5_crr_vs_blocksize`   | Figure 5 — CRR vs disk block size |
//! | `table5_operation_costs`  | Table 5 — I/O cost per network operation, actual vs predicted |
//! | `fig6_route_eval`         | Figure 6 — route-evaluation I/O vs route length |
//! | `fig7_reorg_policies`     | Figure 7 — reorganization policies: I/O cost and CRR under insertion |
//! | `ablation_partitioners`   | extra — CRR per partitioning heuristic (+ m-way refinement) |
//! | `ablation_buffer`         | extra — route-evaluation I/O vs buffer size |
//! | `validate_costmodel`      | extra — §3.2 cost-model predictions vs observed I/O per operation class |
//!
//! The library part hosts the shared plumbing: building every access
//! method over the benchmark road map, per-operation I/O measurement and
//! plain-text table rendering.

pub mod harness;

pub use harness::*;
