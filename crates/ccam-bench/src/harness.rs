//! Shared experiment plumbing.

use std::collections::HashMap;

use ccam_core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam_core::query::route::evaluate_route;
use ccam_graph::walks::Route;
use ccam_graph::{roadmap, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Seed used by every experiment so tables regenerate identically.
pub const EXPERIMENT_SEED: u64 = 1995;

/// The benchmark network: the Minneapolis-like road map (1079 nodes,
/// 3057 directed edges — DESIGN.md §4).
pub fn benchmark_network() -> Network {
    roadmap::minneapolis_like(EXPERIMENT_SEED)
}

/// The five access methods of the paper's comparison, built over `net`
/// with the given block size and (optional) route-derived edge weights.
///
/// Order matches the paper's figures: CCAM-S, CCAM-D, DFS-AM,
/// (WDFS-AM when weighted,) Grid File, BFS-AM.
pub fn build_all_methods(
    net: &Network,
    block_size: usize,
    weights: Option<&HashMap<(NodeId, NodeId), u64>>,
    include_wdfs: bool,
) -> Vec<Box<dyn AccessMethod>> {
    let empty = HashMap::new();
    let w = weights.unwrap_or(&empty);
    let mut builder = CcamBuilder::new(block_size);
    if let Some(weights) = weights {
        builder = builder.weights(weights.clone());
    }
    let mut methods: Vec<Box<dyn AccessMethod>> = Vec::new();
    methods.push(Box::new(builder.build_static(net).expect("CCAM-S create")));
    methods.push(Box::new(builder.build_dynamic(net).expect("CCAM-D create")));
    methods.push(Box::new(
        TopoAm::create(net, block_size, TraversalOrder::DepthFirst, None, w)
            .expect("DFS-AM create"),
    ));
    if include_wdfs {
        methods.push(Box::new(
            TopoAm::create(net, block_size, TraversalOrder::WeightedDepthFirst, None, w)
                .expect("WDFS-AM create"),
        ));
    }
    methods.push(Box::new(
        GridAm::create(net, block_size).expect("Grid create"),
    ));
    methods.push(Box::new(
        TopoAm::create(net, block_size, TraversalOrder::BreadthFirst, None, w)
            .expect("BFS-AM create"),
    ));
    methods
}

/// A deterministic random sample of `fraction` of the network's nodes.
pub fn sample_nodes(net: &Network, fraction: f64, seed: u64) -> Vec<NodeId> {
    let mut ids = net.node_ids();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let k = ((ids.len() as f64) * fraction).round() as usize;
    ids.truncate(k);
    ids
}

/// Measures the data-page I/O (reads + writes, the paper's §3.2
/// convention for update operations) of `op`, starting from a cold
/// buffer and flushing dirty pages afterwards.
pub fn measure_io<R>(
    am: &mut dyn AccessMethod,
    op: impl FnOnce(&mut dyn AccessMethod) -> R,
) -> (R, u64) {
    am.file().pool().clear().expect("clear buffer");
    let before = am.stats().snapshot();
    let r = op(am);
    am.file().pool().flush_all().expect("flush");
    let d = am.stats().snapshot().since(&before);
    (r, d.physical_reads + d.physical_writes)
}

/// Measures read-only data-page accesses of `op` (search operations:
/// reads only, no flush needed).
pub fn measure_reads<R>(
    am: &dyn AccessMethod,
    op: impl FnOnce(&dyn AccessMethod) -> R,
) -> (R, u64) {
    let before = am.stats().snapshot();
    let r = op(am);
    let d = am.stats().snapshot().since(&before);
    (r, d.physical_reads)
}

/// Average data-page accesses per route for a route set, evaluated with
/// the paper's single one-page buffer (§4.3), cold per route.
pub fn avg_route_io(am: &dyn AccessMethod, routes: &[Route]) -> f64 {
    am.file().pool().set_capacity(1).expect("capacity");
    let mut total = 0u64;
    for route in routes {
        am.file().pool().clear().expect("clear");
        let before = am.stats().snapshot();
        let eval = evaluate_route(am, route).expect("route evaluation");
        debug_assert!(eval.complete, "walk-generated route must be valid");
        total += am.stats().snapshot().since(&before).physical_reads;
    }
    // Restore a sane buffer for later phases.
    am.file()
        .pool()
        .set_capacity(ccam_core::file::DEFAULT_BUFFER_FRAMES)
        .expect("capacity");
    total as f64 / routes.len() as f64
}

/// Renders a plain-text table: header row + rows, column-aligned.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| -> String {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        s.trim_end().to_string()
    };
    let mut out = line(header);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let net = ccam_graph::generators::grid_network(10, 10, 1.0);
        let a = sample_nodes(&net, 0.5, 7);
        let b = sample_nodes(&net, 0.5, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let c = sample_nodes(&net, 0.5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn measure_io_counts_cold_accesses() {
        let net = ccam_graph::generators::grid_network(6, 6, 1.0);
        let mut am: Box<dyn AccessMethod> =
            Box::new(CcamBuilder::new(512).build_static(&net).unwrap());
        let id = net.node_ids()[0];
        let (_, io) = measure_io(am.as_mut(), |am| am.find(id).unwrap());
        assert_eq!(io, 1, "cold find reads exactly one data page");
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[vec!["xxx".into(), "y".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    bb"));
        assert!(lines[2].starts_with("xxx  y"));
    }

    #[test]
    fn build_all_methods_names() {
        let net = ccam_graph::generators::grid_network(6, 6, 1.0);
        let methods = build_all_methods(&net, 512, None, true);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "CCAM-S",
                "CCAM-D",
                "DFS-AM",
                "WDFS-AM",
                "Grid File",
                "BFS-AM"
            ]
        );
    }
}
