//! The algebraic cost model of paper §3.2 (Tables 3 and 4).
//!
//! All formulas predict *data page accesses* from four parameters
//! (Table 2):
//!
//! | symbol | meaning |
//! |--------|---------|
//! | `α`    | CRR — Pr\[Page(i) = Page(j)\] for an edge (i, j) |
//! | `|A|`  | average successor-list length |
//! | `λ`    | average neighbor-list length |
//! | `γ`    | average blocking factor (records per page) |
//!
//! Table 3 (search):
//! `Get-successors = (1−α)·|A|`, `Get-A-successor = 1−α`,
//! `Route Evaluation = 1 + (L−1)(1−α)`.
//!
//! Table 4 (worst-case retrieval cost of updates):
//! first/second order `Insert = λ`, `Delete = 1 + λ(1−α)`; higher order
//! `Insert = λ + γλ(1−α)`, `Delete = γλ(1−α)`. Writes are assumed equal
//! to reads ("the Write cost is equal to the Read cost", §3.2), so the
//! *measured* update numbers (reads + writes) are compared against
//! `2 ×` the Table 4 retrieval predictions where appropriate.

use ccam_storage::{PageStore, StorageResult};

use crate::file::NetworkFile;
use crate::reorg::ReorgPolicy;

/// The four model parameters of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// α: the CRR of the file under test.
    pub alpha: f64,
    /// |A|: mean successor-list length.
    pub avg_successors: f64,
    /// λ: mean neighbor-list length.
    pub avg_neighbors: f64,
    /// γ: mean blocking factor.
    pub blocking_factor: f64,
}

impl CostParams {
    /// Measures all four parameters from a live data file.
    pub fn measure<S: PageStore>(file: &NetworkFile<S>) -> StorageResult<CostParams> {
        let scan = file.scan_uncounted()?;
        let mut nodes = 0usize;
        let mut succ = 0usize;
        let mut nbrs = 0usize;
        for (_, records) in &scan {
            for rec in records {
                nodes += 1;
                succ += rec.successors.len();
                nbrs += rec.neighbors().len();
            }
        }
        let n = nodes.max(1) as f64;
        Ok(CostParams {
            alpha: crate::crr::crr(file)?,
            avg_successors: succ as f64 / n,
            avg_neighbors: nbrs as f64 / n,
            blocking_factor: file.blocking_factor(),
        })
    }

    /// Table 3: expected page accesses of `Get-successors()` (the page of
    /// the source node is assumed buffered).
    pub fn get_successors_cost(&self) -> f64 {
        (1.0 - self.alpha) * self.avg_successors
    }

    /// Table 3: expected page accesses of `Get-A-successor()`.
    pub fn get_a_successor_cost(&self) -> f64 {
        1.0 - self.alpha
    }

    /// Table 3: expected page accesses of evaluating a route of `l`
    /// nodes with a single one-page buffer.
    pub fn route_evaluation_cost(&self, l: usize) -> f64 {
        if l == 0 {
            return 0.0;
        }
        1.0 + (l as f64 - 1.0) * (1.0 - self.alpha)
    }

    /// Table 4: worst-case *retrieval* (read) cost of `Insert()` under a
    /// policy.
    pub fn insert_cost(&self, policy: ReorgPolicy) -> f64 {
        match policy {
            // The lazy policy behaves like first order on all but every
            // n-th update; its *per-update* prediction is the first-order
            // one (the periodic NbrPages sweep amortizes away).
            ReorgPolicy::FirstOrder | ReorgPolicy::SecondOrder | ReorgPolicy::Lazy { .. } => {
                self.avg_neighbors
            }
            ReorgPolicy::HigherOrder => {
                self.avg_neighbors + self.blocking_factor * self.avg_neighbors * (1.0 - self.alpha)
            }
        }
    }

    /// Table 4: worst-case *retrieval* (read) cost of `Delete()` under a
    /// policy.
    pub fn delete_cost(&self, policy: ReorgPolicy) -> f64 {
        match policy {
            ReorgPolicy::FirstOrder | ReorgPolicy::SecondOrder | ReorgPolicy::Lazy { .. } => {
                1.0 + self.avg_neighbors * (1.0 - self.alpha)
            }
            ReorgPolicy::HigherOrder => {
                self.blocking_factor * self.avg_neighbors * (1.0 - self.alpha)
            }
        }
    }

    /// Read + write prediction for a measured update operation (writes
    /// assumed equal to reads, §3.2). This is the "Predicted" column the
    /// Table 5 reproduction prints for `Delete()`.
    pub fn delete_cost_rw(&self, policy: ReorgPolicy) -> f64 {
        2.0 * self.delete_cost(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact parameter values reported under Table 5.
    fn paper_params() -> CostParams {
        CostParams {
            alpha: 0.7606,
            avg_successors: 2.833,
            avg_neighbors: 3.20,
            blocking_factor: 12.55,
        }
    }

    #[test]
    fn table3_matches_papers_predicted_column() {
        let p = paper_params();
        // Paper Table 5 "Predicted" for CCAM: 0.680, 0.239.
        assert!((p.get_successors_cost() - 0.680).abs() < 0.003);
        assert!((p.get_a_successor_cost() - 0.239).abs() < 0.001);
    }

    #[test]
    fn table4_delete_prediction_matches_paper() {
        let p = paper_params();
        // Paper Table 5 predicted Delete for CCAM = 3.532 (reads+writes).
        assert!((p.delete_cost_rw(ReorgPolicy::SecondOrder) - 3.532).abs() < 0.01);
    }

    #[test]
    fn route_cost_grows_linearly() {
        let p = paper_params();
        let c10 = p.route_evaluation_cost(10);
        let c20 = p.route_evaluation_cost(20);
        let c40 = p.route_evaluation_cost(40);
        assert!((c20 - c10 - 10.0 * (1.0 - p.alpha)).abs() < 1e-9);
        assert!((c40 - c20 - 20.0 * (1.0 - p.alpha)).abs() < 1e-9);
        assert_eq!(p.route_evaluation_cost(0), 0.0);
        assert_eq!(p.route_evaluation_cost(1), 1.0);
    }

    #[test]
    fn higher_alpha_means_cheaper_search() {
        let lo = CostParams {
            alpha: 0.1,
            ..paper_params()
        };
        let hi = CostParams {
            alpha: 0.9,
            ..paper_params()
        };
        assert!(hi.get_successors_cost() < lo.get_successors_cost());
        assert!(hi.get_a_successor_cost() < lo.get_a_successor_cost());
        assert!(hi.route_evaluation_cost(20) < lo.route_evaluation_cost(20));
        assert!(
            hi.delete_cost(ReorgPolicy::SecondOrder) < lo.delete_cost(ReorgPolicy::SecondOrder)
        );
        // Insert cost is NOT a function of alpha (paper §3.2 observation).
        assert_eq!(
            hi.insert_cost(ReorgPolicy::FirstOrder),
            lo.insert_cost(ReorgPolicy::FirstOrder)
        );
    }

    #[test]
    fn higher_order_costs_dominate() {
        let p = paper_params();
        assert!(p.insert_cost(ReorgPolicy::HigherOrder) > p.insert_cost(ReorgPolicy::SecondOrder));
    }

    #[test]
    fn lazy_policy_priced_like_first_order() {
        let p = paper_params();
        let lazy = ReorgPolicy::Lazy { every: 8 };
        assert_eq!(p.insert_cost(lazy), p.insert_cost(ReorgPolicy::FirstOrder));
        assert_eq!(p.delete_cost(lazy), p.delete_cost(ReorgPolicy::FirstOrder));
    }

    #[test]
    fn measure_from_file() {
        use ccam_graph::{EdgeTo, NodeData, NodeId};
        let mut f = NetworkFile::new(512).unwrap();
        let n1 = NodeData {
            id: NodeId(1),
            x: 0,
            y: 0,
            payload: vec![],
            successors: vec![EdgeTo {
                to: NodeId(2),
                cost: 1,
            }],
            predecessors: vec![],
        };
        let n2 = NodeData {
            id: NodeId(2),
            x: 0,
            y: 0,
            payload: vec![],
            successors: vec![],
            predecessors: vec![NodeId(1)],
        };
        f.bulk_load(vec![vec![&n1, &n2]]).unwrap();
        let p = CostParams::measure(&f).unwrap();
        assert_eq!(p.alpha, 1.0);
        assert!((p.avg_successors - 0.5).abs() < 1e-12);
        assert!((p.avg_neighbors - 1.0).abs() < 1e-12);
        assert!((p.blocking_factor - 2.0).abs() < 1e-12);
    }
}
