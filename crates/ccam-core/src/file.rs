//! The network data file shared by every access method.
//!
//! A [`NetworkFile`] is the paper's "connectivity-clustered data file"
//! stripped of any particular clustering policy: slotted data pages
//! holding variable-length node records behind a *counted* buffer pool,
//! plus the B⁺-tree secondary index mapping node-id → data page. The
//! access methods differ only in *which* page each record lands on —
//! exactly the design space the paper explores.
//!
//! I/O accounting: every data-page fetch flows through the buffer pool
//! and shows up in [`NetworkFile::stats`]. Index traffic is kept on the
//! index's own pool ("we assume that the index pages are buffered in main
//! memory", §3.2). Diagnostic whole-file scans (CRR measurement, page
//! maps) read the store directly and are *not* counted.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ccam_graph::record::{decode_record, encode_record, encoded_len, peek_id};
use ccam_graph::{NodeData, NodeId};
use ccam_index::BPlusTree;
use ccam_storage::{
    BufferPool, IoStats, MemPageStore, PageId, PageStore, SlottedPage, StorageError, StorageResult,
};

/// Default buffer capacity for update operations — the paper "assume\[s\]
/// that sufficient buffers are provided for update operations" (§3.2).
pub const DEFAULT_BUFFER_FRAMES: usize = 64;

/// A query result over a file with quarantined (unreadable) pages.
///
/// Degraded operations skip pages whose checksums fail instead of
/// aborting: `value` holds everything that was readable, and `skipped`
/// lists the data pages that could not be consulted. An empty `skipped`
/// means the answer is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded<T> {
    /// The (possibly partial) result.
    pub value: T,
    /// Data pages that were skipped because they are quarantined.
    pub skipped: Vec<PageId>,
}

impl<T> Degraded<T> {
    /// Wraps a result that consulted every page it needed.
    pub fn complete(value: T) -> Self {
        Degraded {
            value,
            skipped: Vec::new(),
        }
    }

    /// True when no page had to be skipped — the answer is exact.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// The data file: counted data pages + secondary index.
///
/// Generic over the page store: experiments run on [`MemPageStore`] (the
/// paper's metric is page-access *counts*), while
/// [`ccam_storage::FilePageStore`] gives a genuinely persistent file —
/// see [`NetworkFile::save_to`] / [`NetworkFile::open`]. The secondary
/// index always lives in memory ("we assume that the index pages are
/// buffered in main memory", §3.2); `open` rebuilds it by scanning the
/// data pages.
pub struct NetworkFile<S: PageStore = MemPageStore> {
    pool: BufferPool<S>,
    index: BPlusTree<MemPageStore>,
    page_size: usize,
    auto_commit: bool,
    /// Pages known to be unreadable (failed checksum on open or during a
    /// query). Degraded operations skip them; healthy operations never
    /// place records on them.
    quarantined: Mutex<BTreeSet<PageId>>,
    /// Logical operations committed / aborted under auto-commit (the
    /// access methods treat each insert / delete / reorganization as one
    /// transaction).
    txn_commits: AtomicU64,
    txn_aborts: AtomicU64,
}

impl NetworkFile<MemPageStore> {
    /// Creates an empty memory-backed file over `page_size`-byte data
    /// pages.
    pub fn new(page_size: usize) -> StorageResult<Self> {
        Self::create(MemPageStore::new(page_size)?)
    }
}

impl<S: PageStore> NetworkFile<S> {
    /// Creates an empty file over a fresh (empty) page store.
    pub fn create(store: S) -> StorageResult<Self> {
        let page_size = store.page_size();
        Ok(NetworkFile {
            pool: BufferPool::new(store, DEFAULT_BUFFER_FRAMES),
            // The index uses 1 KiB pages regardless of the data page size;
            // its I/O is not part of the reported metric.
            index: BPlusTree::new_mem(1024)?,
            page_size,
            auto_commit: false,
            quarantined: Mutex::new(BTreeSet::new()),
            txn_commits: AtomicU64::new(0),
            txn_aborts: AtomicU64::new(0),
        })
    }

    /// Opens a store that already holds data pages, rebuilding the
    /// secondary index with one uncounted scan.
    ///
    /// Pages that fail their checksum are **quarantined** instead of
    /// failing the open: their records stay unindexed and degraded
    /// queries report the pages as skipped (run
    /// [`ccam_storage::scrub`] to repair them from the WAL). Any other
    /// read error still aborts the open.
    pub fn open(store: S) -> StorageResult<Self> {
        let mut file = Self::create(store)?;
        file.rebuild_index()?;
        Ok(file)
    }

    /// Discards the in-memory secondary index and quarantine set and
    /// rebuilds both from one tolerant, uncounted scan of the live data
    /// pages — the same scan [`NetworkFile::open`] performs. Also used by
    /// [`NetworkFile::abort`] after dirty frames have been discarded, so
    /// the index reflects exactly what the store holds.
    pub fn rebuild_index(&mut self) -> StorageResult<()> {
        self.index = BPlusTree::new_mem(1024)?;
        self.clear_quarantined();
        let (scan, unreadable) = self.pool.with_store(|store| {
            let mut scan = Vec::new();
            let mut unreadable = Vec::new();
            let mut buf = vec![0u8; store.page_size()];
            for page in store.live_pages() {
                match store.read(page, &mut buf) {
                    Ok(()) => {
                        let mut scratch = buf.clone();
                        let sp = SlottedPage::attach(&mut scratch);
                        let records: Vec<NodeData> =
                            sp.iter().map(|(_, rec)| decode_record(rec)).collect();
                        scan.push((page, records));
                    }
                    Err(StorageError::ChecksumMismatch { .. }) => unreadable.push(page),
                    Err(e) => return Err(e),
                }
            }
            Ok((scan, unreadable))
        })?;
        for (page, records) in scan {
            for rec in records {
                self.index_insert(rec.id, page)?;
            }
        }
        for page in unreadable {
            self.quarantine(page);
        }
        Ok(())
    }

    /// Persists every live data page into a fresh page file at `path`
    /// (page ids preserved, gaps freed). The result reopens with
    /// [`NetworkFile::open`] on a [`ccam_storage::FilePageStore`].
    pub fn save_to(&self, path: &std::path::Path) -> StorageResult<()> {
        self.pool.flush_all()?;
        let mut out = ccam_storage::FilePageStore::create(path, self.page_size)?;
        self.pool.with_store(|store| {
            let live = store.live_pages();
            let max = live
                .iter()
                .map(|p| p.index())
                .max()
                .map(|m| m + 1)
                .unwrap_or(0);
            let mut buf = vec![0u8; self.page_size];
            for i in 0..max {
                let id = out.allocate()?;
                debug_assert_eq!(id.index(), i);
                if store.is_live(PageId(i)) {
                    store.read(PageId(i), &mut buf)?;
                    out.write(id, &buf)?;
                }
            }
            for i in 0..max {
                if !store.is_live(PageId(i)) {
                    out.free(PageId(i))?;
                }
            }
            out.sync()
        })
    }

    /// Data page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Largest record this file can store.
    pub fn max_record_len(&self) -> usize {
        SlottedPage::max_record_len(self.page_size)
    }

    /// Counted I/O statistics of the data pages.
    pub fn stats(&self) -> Arc<IoStats> {
        self.pool.stats()
    }

    /// The buffer pool (experiments adjust capacity / clear it between
    /// measured operations).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    // -- durability ---------------------------------------------------------

    /// Flushes every dirty data page and syncs the store. Over a
    /// [`ccam_storage::WalStore`] this is the *commit point*: the whole
    /// flush becomes one atomic, durable log batch.
    pub fn commit(&self) -> StorageResult<()> {
        self.pool.flush_all()
    }

    /// When enabled, the access-method layer commits after every logical
    /// operation (insert / delete / reorganize), making each one an
    /// atomic transaction on a WAL-backed store. Off by default: the
    /// paper's experiments count page accesses and must not pay a flush
    /// per operation.
    pub fn set_auto_commit(&mut self, on: bool) {
        self.auto_commit = on;
    }

    /// True when per-operation commits are enabled.
    pub fn auto_commit(&self) -> bool {
        self.auto_commit
    }

    /// Commits iff auto-commit is enabled — called by the access methods
    /// at the end of each logical operation. Successful commits are
    /// counted in [`NetworkFile::txn_commits`].
    pub fn maybe_commit(&self) -> StorageResult<()> {
        if self.auto_commit {
            self.commit()?;
            self.txn_commits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Abandons every uncommitted change: dirty buffer frames are
    /// dropped, the store's pending overlay is rolled back, and the
    /// secondary index is rebuilt from the (committed) data pages.
    ///
    /// Returns `false` — having done nothing — when the store cannot
    /// roll back (no WAL). If the failed operation's batch already
    /// reached the log (the store is poisoned *after* its commit point),
    /// rollback is impossible; the batch is completed with a retried
    /// `sync()` instead, which lands the same all-or-nothing guarantee:
    /// the file holds either none or all of the operation's writes.
    pub fn abort(&mut self) -> StorageResult<bool> {
        if !self.pool.with_store(|s| s.supports_rollback()) {
            return Ok(false);
        }
        self.pool.discard_frames();
        if self.pool.with_store_mut(|s| s.rollback()).is_err() {
            // Past the commit point: finish applying the logged batch.
            self.pool.with_store_mut(|s| s.sync())?;
        }
        self.rebuild_index()?;
        self.txn_aborts.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Logical operations committed under auto-commit.
    pub fn txn_commits(&self) -> u64 {
        self.txn_commits.load(Ordering::Relaxed)
    }

    /// Logical operations rolled back via [`NetworkFile::abort`].
    pub fn txn_aborts(&self) -> u64 {
        self.txn_aborts.load(Ordering::Relaxed)
    }

    /// Number of live data pages.
    pub fn num_pages(&self) -> usize {
        self.pool.with_store(|s| s.live_pages().len())
    }

    /// True when `page` is a live data page (uncounted store metadata).
    pub fn is_live_page(&self, page: PageId) -> bool {
        self.pool.with_store(|s| s.is_live(page))
    }

    // -- quarantine ---------------------------------------------------------

    /// Marks `page` unreadable: degraded operations skip it and record
    /// placement avoids it until [`Self::clear_quarantined`].
    pub fn quarantine(&self, page: PageId) {
        self.quarantined
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(page);
    }

    /// True when `page` is quarantined.
    pub fn is_quarantined(&self, page: PageId) -> bool {
        self.quarantined
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&page)
    }

    /// The quarantined pages, in order.
    pub fn quarantined_pages(&self) -> Vec<PageId> {
        self.quarantined
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// Forgets every quarantine mark (after a successful scrub repair).
    pub fn clear_quarantined(&self) {
        self.quarantined
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Reads `id` from `page` unless the page is quarantined; a checksum
    /// failure quarantines the page on the spot. Skipped pages are pushed
    /// onto `skipped` (deduplicated); any other error propagates.
    fn read_guarded(
        &self,
        page: PageId,
        id: NodeId,
        skipped: &mut Vec<PageId>,
    ) -> StorageResult<Option<NodeData>> {
        if self.is_quarantined(page) {
            if !skipped.contains(&page) {
                skipped.push(page);
            }
            return Ok(None);
        }
        match self.read_from_page(page, id) {
            Ok(rec) => Ok(rec),
            Err(StorageError::ChecksumMismatch { .. }) => {
                self.quarantine(page);
                if !skipped.contains(&page) {
                    skipped.push(page);
                }
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// `Find()` that degrades instead of aborting: a quarantined (or
    /// freshly checksum-failed) data page is skipped and reported in
    /// [`Degraded::skipped`]. When the record cannot be found *and* the
    /// file has quarantined pages, those pages are reported too — the
    /// record may be on one of them, unindexed since a tolerant
    /// [`NetworkFile::open`].
    pub fn find_degraded(&self, id: NodeId) -> StorageResult<Degraded<Option<NodeData>>> {
        let mut skipped = Vec::new();
        let found = match self.page_of(id)? {
            Some(page) => self.read_guarded(page, id, &mut skipped)?,
            None => None,
        };
        if found.is_none() && skipped.is_empty() {
            // Absence is only trustworthy when every page was readable.
            skipped = self.quarantined_pages();
        }
        Ok(Degraded {
            value: found,
            skipped,
        })
    }

    /// Number of indexed node records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the file stores no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // -- index ------------------------------------------------------------

    /// Page currently holding `id`, from the secondary index (no data-page
    /// I/O).
    pub fn page_of(&self, id: NodeId) -> StorageResult<Option<PageId>> {
        Ok(self.index.get(id.0)?.map(|v| PageId(v as u32)))
    }

    /// Index entries with `lo <= id <= hi` as `(raw id, raw page)` pairs
    /// (index-only; used by Z-order window queries).
    pub fn index_range(&self, lo: u64, hi: u64) -> StorageResult<Vec<(u64, u64)>> {
        self.index.range(lo, hi)
    }

    /// Re-inserts an index entry for a record that could not be scanned
    /// because its page is quarantined. A snapshot capture grafts the
    /// writer's index knowledge into the freshly opened view so lookups
    /// still route to the unreadable page — and take the degraded path —
    /// instead of reporting a confident miss.
    pub fn adopt_index_entry(&mut self, id: NodeId, page: PageId) -> StorageResult<()> {
        self.index_insert(id, page)
    }

    /// I/O counters of the secondary index's own buffer pool (separate
    /// from the data-page counts the paper reports; see
    /// [`Self::set_index_buffer_capacity`]).
    pub fn index_stats(&self) -> Arc<IoStats> {
        self.index.index_stats()
    }

    /// Restricts the secondary index to `frames` buffered pages, making
    /// index I/O observable instead of assumed free (§3.2's assumption,
    /// flagged for evaluation in §5).
    pub fn set_index_buffer_capacity(&self, frames: usize) -> StorageResult<()> {
        self.index.set_buffer_capacity(frames)
    }

    /// Number of index pages.
    pub fn index_pages(&self) -> usize {
        self.index.num_pages()
    }

    fn index_insert(&mut self, id: NodeId, page: PageId) -> StorageResult<()> {
        self.index.insert(id.0, page.index() as u64)?;
        Ok(())
    }

    fn index_remove(&mut self, id: NodeId) -> StorageResult<()> {
        self.index.remove(id.0)?;
        Ok(())
    }

    // -- counted record access ---------------------------------------------

    /// `Find()`: secondary-index lookup, then a (counted) data-page fetch.
    pub fn find(&self, id: NodeId) -> StorageResult<Option<(PageId, NodeData)>> {
        let Some(page) = self.page_of(id)? else {
            return Ok(None);
        };
        let rec = self.read_from_page(page, id)?;
        Ok(rec.map(|r| (page, r)))
    }

    /// Reads `id`'s record from `page` (counted fetch; in-page scan is
    /// free). `None` when the record is not on that page.
    pub fn read_from_page(&self, page: PageId, id: NodeId) -> StorageResult<Option<NodeData>> {
        self.pool.with_page(page, |buf| {
            let mut scratch = buf.to_vec();
            let sp = SlottedPage::attach(&mut scratch);
            let found = sp
                .iter()
                .find(|(_, rec)| peek_id(rec) == id)
                .map(|(_, rec)| decode_record(rec));
            found
        })
    }

    /// Scans the pages currently resident in the buffer for `id` —
    /// the `Get-A-successor()` fast path ("the buffered data-page should
    /// be searched first", §2.3). Costs no physical I/O.
    pub fn find_in_buffer(&self, id: NodeId) -> StorageResult<Option<(PageId, NodeData)>> {
        for page in self.pool.resident_pages() {
            if let Some(rec) = self.read_from_page(page, id)? {
                return Ok(Some((page, rec)));
            }
        }
        Ok(None)
    }

    /// All records on `page` (counted fetch).
    pub fn read_page_records(&self, page: PageId) -> StorageResult<Vec<NodeData>> {
        self.pool.with_page(page, |buf| {
            let mut scratch = buf.to_vec();
            let sp = SlottedPage::attach(&mut scratch);
            let records: Vec<NodeData> = sp.iter().map(|(_, rec)| decode_record(rec)).collect();
            records
        })
    }

    /// Free bytes on `page` after compaction (counted fetch).
    pub fn page_free_space(&self, page: PageId) -> StorageResult<usize> {
        self.pool.with_page(page, |buf| {
            let mut scratch = buf.to_vec();
            SlottedPage::attach(&mut scratch).free_space()
        })
    }

    /// Live record bytes on `page` (counted fetch).
    pub fn page_used_bytes(&self, page: PageId) -> StorageResult<usize> {
        self.pool.with_page(page, |buf| {
            let mut scratch = buf.to_vec();
            SlottedPage::attach(&mut scratch).used_bytes()
        })
    }

    // -- counted record mutation --------------------------------------------

    /// Allocates a fresh, slot-formatted data page.
    pub fn allocate_page(&mut self) -> StorageResult<PageId> {
        let page = self.pool.allocate()?;
        self.pool.with_page_mut(page, |buf| {
            SlottedPage::init(buf);
        })?;
        Ok(page)
    }

    /// Frees an (empty) data page.
    pub fn free_page(&mut self, page: PageId) -> StorageResult<()> {
        self.pool.free(page)
    }

    /// Tries to store `node` on `page`; updates the index on success.
    /// Returns false when the page lacks space.
    pub fn insert_into(&mut self, page: PageId, node: &NodeData) -> StorageResult<bool> {
        let rec = encode_record(node);
        if rec.len() > self.max_record_len() {
            return Err(StorageError::RecordTooLarge {
                record: rec.len(),
                max: self.max_record_len(),
            });
        }
        let ok = self.pool.with_page_mut(page, |buf| {
            let mut sp = SlottedPage::attach(buf);
            match sp.insert(&rec) {
                Ok(_) => Ok(true),
                Err(StorageError::PageFull { .. }) => Ok(false),
                Err(e) => Err(e),
            }
        })??;
        if ok {
            self.index_insert(node.id, page)?;
        }
        Ok(ok)
    }

    /// Removes `id`'s record from `page`, returning it and dropping the
    /// index entry.
    pub fn remove_from(&mut self, page: PageId, id: NodeId) -> StorageResult<Option<NodeData>> {
        let removed = self.pool.with_page_mut(page, |buf| {
            let mut sp = SlottedPage::attach(buf);
            let found = sp
                .iter()
                .find(|(_, rec)| peek_id(rec) == id)
                .map(|(slot, rec)| (slot, decode_record(rec)));
            if let Some((slot, _)) = found {
                sp.delete(slot)?;
            }
            Ok::<_, StorageError>(found.map(|(_, rec)| rec))
        })??;
        if removed.is_some() {
            self.index_remove(id)?;
        }
        Ok(removed)
    }

    /// Rewrites `node`'s record in place on `page`. Returns false when
    /// the grown record no longer fits (the caller must relocate it —
    /// the record is left *unchanged* in that case).
    pub fn update_in(&mut self, page: PageId, node: &NodeData) -> StorageResult<bool> {
        let rec = encode_record(node);
        self.pool.with_page_mut(page, |buf| {
            let mut sp = SlottedPage::attach(buf);
            let Some((slot, _)) = sp.iter().find(|(_, r)| peek_id(r) == node.id) else {
                return Err(StorageError::InvalidSlot(u16::MAX));
            };
            match sp.update(slot, &rec) {
                Ok(()) => Ok(true),
                Err(StorageError::PageFull { .. }) => Ok(false),
                Err(e) => Err(e),
            }
        })?
    }

    /// Stores `node` on `page` if it fits, otherwise on a freshly
    /// allocated page; returns the page used.
    pub fn insert_or_spill(&mut self, page: PageId, node: &NodeData) -> StorageResult<PageId> {
        if self.insert_into(page, node)? {
            return Ok(page);
        }
        let fresh = self.allocate_page()?;
        let ok = self.insert_into(fresh, node)?;
        debug_assert!(ok, "fresh page must fit any valid record");
        Ok(fresh)
    }

    /// Bulk-loads `groups` of records, one group per fresh page, in group
    /// order (used by every `Create()` implementation). Panics if a group
    /// exceeds the page capacity — the clustering layer guarantees fit.
    pub fn bulk_load<'a>(
        &mut self,
        groups: impl IntoIterator<Item = Vec<&'a NodeData>>,
    ) -> StorageResult<Vec<PageId>> {
        let mut pages = Vec::new();
        for group in groups {
            let page = self.allocate_page()?;
            for node in group {
                assert!(
                    self.insert_into(page, node)?,
                    "clustered group exceeds page capacity (node {:?}, page {:?})",
                    node.id,
                    page
                );
            }
            pages.push(page);
        }
        Ok(pages)
    }

    // -- uncounted diagnostics ------------------------------------------------

    /// `node → page` map for the whole file, straight from the index
    /// (uncounted; used by CRR measurement and experiments).
    pub fn page_map(&self) -> StorageResult<HashMap<NodeId, PageId>> {
        Ok(self
            .index
            .entries()?
            .into_iter()
            .map(|(k, v)| (NodeId(k), PageId(v as u32)))
            .collect())
    }

    /// Exact post-compaction free bytes per live page, bypassing the
    /// buffer pool's counters (uncounted — models the in-memory
    /// free-space map a real system maintains). Quarantined pages are
    /// excluded: no new record may land on an unreadable page.
    ///
    /// Reads through [`BufferPool::read_uncounted`], which serves
    /// resident (possibly dirty) frames from memory, so the scan never
    /// flushes. Flushing here would be a hidden *commit point* on a
    /// WAL-backed store in the middle of a logical operation — exactly
    /// the torn state crash recovery must never observe.
    pub fn free_space_map_uncounted(&self) -> StorageResult<Vec<(PageId, usize)>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; self.page_size];
        for page in self.pool.with_store(|s| s.live_pages()) {
            if self.is_quarantined(page) {
                continue;
            }
            self.pool.read_uncounted(page, &mut buf)?;
            let mut scratch = buf.clone();
            let free = SlottedPage::attach(&mut scratch).free_space();
            out.push((page, free));
        }
        Ok(out)
    }

    /// Decodes every record in the file, grouped by page, bypassing the
    /// buffer pool's counters (uncounted; diagnostics only — dirty
    /// resident frames are served from memory without flushing, see
    /// [`Self::free_space_map_uncounted`]). Strict: any read error,
    /// including a checksum mismatch on a quarantined page, propagates.
    pub fn scan_uncounted(&self) -> StorageResult<Vec<(PageId, Vec<NodeData>)>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; self.page_size];
        for page in self.pool.with_store(|s| s.live_pages()) {
            self.pool.read_uncounted(page, &mut buf)?;
            let mut scratch = buf.clone();
            let sp = SlottedPage::attach(&mut scratch);
            let records: Vec<NodeData> = sp.iter().map(|(_, rec)| decode_record(rec)).collect();
            out.push((page, records));
        }
        Ok(out)
    }

    /// The paper's blocking factor γ: average records per data page.
    pub fn blocking_factor(&self) -> f64 {
        let pages = self.num_pages();
        if pages == 0 {
            0.0
        } else {
            self.len() as f64 / pages as f64
        }
    }

    /// Page byte budget the clustering layer must respect so that any
    /// group it produces is guaranteed to fit one slotted page (header
    /// subtracted; per-record slot overhead is included in
    /// [`clustering_weight`]).
    pub fn clustering_budget(&self) -> usize {
        self.page_size - ccam_storage::slotted::HEADER_LEN
    }
}

/// Byte size `node`'s record will occupy.
pub fn record_len(node: &NodeData) -> usize {
    encoded_len(node)
}

/// Clustering weight of a node: record bytes plus slot-directory
/// overhead (the clustering layer budgets against
/// [`NetworkFile::clustering_budget`]).
pub fn clustering_weight(node: &NodeData) -> usize {
    encoded_len(node) + ccam_storage::slotted::SLOT_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::EdgeTo;

    fn node(id: u64, degree: usize) -> NodeData {
        NodeData {
            id: NodeId(id),
            x: id as u32,
            y: id as u32,
            payload: vec![0xaa; 8],
            successors: (0..degree)
                .map(|i| EdgeTo {
                    to: NodeId(1000 + i as u64),
                    cost: 1,
                })
                .collect(),
            predecessors: vec![],
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        let n = node(7, 3);
        assert!(f.insert_into(p, &n).unwrap());
        let (page, rec) = f.find(NodeId(7)).unwrap().unwrap();
        assert_eq!(page, p);
        assert_eq!(rec, n);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn find_missing_is_none() {
        let f = NetworkFile::new(512).unwrap();
        assert!(f.find(NodeId(1)).unwrap().is_none());
    }

    #[test]
    fn remove_clears_index() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(7, 0)).unwrap();
        let removed = f.remove_from(p, NodeId(7)).unwrap().unwrap();
        assert_eq!(removed.id, NodeId(7));
        assert!(f.find(NodeId(7)).unwrap().is_none());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn update_in_place_and_relocation_signal() {
        let mut f = NetworkFile::new(256).unwrap();
        let p = f.allocate_page().unwrap();
        let mut n = node(7, 1);
        f.insert_into(p, &n).unwrap();
        // Fill the rest of the page so growth must fail.
        let filler = NodeData {
            payload: vec![1; f.page_free_space(p).unwrap() - 40],
            ..node(8, 0)
        };
        assert!(f.insert_into(p, &filler).unwrap());
        n.successors.push(EdgeTo {
            to: NodeId(99),
            cost: 9,
        });
        n.successors.push(EdgeTo {
            to: NodeId(100),
            cost: 9,
        });
        assert!(!f.update_in(p, &n).unwrap(), "grow must signal relocation");
        // Old record still intact.
        let (_, rec) = f.find(NodeId(7)).unwrap().unwrap();
        assert_eq!(rec.successors.len(), 1);
    }

    #[test]
    fn insert_or_spill_allocates() {
        let mut f = NetworkFile::new(128).unwrap();
        let p = f.allocate_page().unwrap();
        let big = NodeData {
            payload: vec![0; 60],
            ..node(1, 0)
        };
        let p1 = f.insert_or_spill(p, &big).unwrap();
        assert_eq!(p1, p);
        let big2 = NodeData {
            id: NodeId(2),
            ..big.clone()
        };
        let p2 = f.insert_or_spill(p, &big2).unwrap();
        assert_ne!(p2, p);
        assert_eq!(f.num_pages(), 2);
    }

    #[test]
    fn bulk_load_groups_pages() {
        let mut f = NetworkFile::new(512).unwrap();
        let nodes: Vec<NodeData> = (0..10).map(|i| node(i, 2)).collect();
        let groups: Vec<Vec<&NodeData>> =
            vec![nodes[0..5].iter().collect(), nodes[5..10].iter().collect()];
        let pages = f.bulk_load(groups).unwrap();
        assert_eq!(pages.len(), 2);
        for i in 0..5u64 {
            assert_eq!(f.page_of(NodeId(i)).unwrap(), Some(pages[0]));
        }
        for i in 5..10u64 {
            assert_eq!(f.page_of(NodeId(i)).unwrap(), Some(pages[1]));
        }
        assert!((f.blocking_factor() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_hits_are_free() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        f.pool().clear().unwrap();
        let before = f.stats().snapshot();
        f.find(NodeId(1)).unwrap();
        f.find(NodeId(1)).unwrap();
        let d = f.stats().snapshot().since(&before);
        assert_eq!(d.physical_reads, 1, "second find must be a buffer hit");
    }

    #[test]
    fn find_in_buffer_costs_nothing() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        f.insert_into(p, &node(2, 0)).unwrap();
        f.pool().clear().unwrap();
        f.find(NodeId(1)).unwrap(); // faults the page in
        let before = f.stats().snapshot();
        let hit = f.find_in_buffer(NodeId(2)).unwrap();
        assert!(hit.is_some());
        assert_eq!(f.stats().snapshot().since(&before).physical_reads, 0);
        // And a node on no resident page is simply not found this way.
        assert!(f.find_in_buffer(NodeId(99)).unwrap().is_none());
    }

    #[test]
    fn scan_uncounted_leaves_stats_alone() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 1)).unwrap();
        let before = f.stats().snapshot();
        let scan = f.scan_uncounted().unwrap();
        assert_eq!(scan.len(), 1);
        assert_eq!(scan[0].1.len(), 1);
        let d = f.stats().snapshot().since(&before);
        assert_eq!(d.physical_reads, 0);
    }

    #[test]
    fn degraded_find_skips_quarantined_pages() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        let q = f.allocate_page().unwrap();
        f.insert_into(q, &node(2, 0)).unwrap();
        f.quarantine(q);
        // Healthy page: exact answer.
        let d = f.find_degraded(NodeId(1)).unwrap();
        assert!(d.value.is_some());
        assert!(d.is_complete());
        // Quarantined page: skipped, not an error.
        let d = f.find_degraded(NodeId(2)).unwrap();
        assert!(d.value.is_none());
        assert_eq!(d.skipped, vec![q]);
        // A genuine miss on a degraded file reports the quarantine too:
        // the record might live on the unreadable page.
        let d = f.find_degraded(NodeId(99)).unwrap();
        assert!(d.value.is_none());
        assert_eq!(d.skipped, vec![q]);
        // After clearing, everything is exact again.
        f.clear_quarantined();
        assert!(f.find_degraded(NodeId(2)).unwrap().value.is_some());
    }

    #[test]
    fn abort_rolls_back_to_last_commit() {
        let wal = std::env::temp_dir().join(format!(
            "ccam-file-abort-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let store =
            ccam_storage::WalStore::create(ccam_storage::MemPageStore::new(512).unwrap(), &wal)
                .unwrap();
        let mut f = NetworkFile::create(store).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        f.commit().unwrap();

        // Uncommitted: a grown record, a second record, a fresh page.
        let q = f.allocate_page().unwrap();
        f.insert_into(q, &node(2, 3)).unwrap();
        f.remove_from(p, NodeId(1)).unwrap();
        assert!(f.abort().unwrap(), "WAL store must support rollback");

        // Back on the committed state: node 1 present, node 2 and the
        // fresh page gone, index consistent with the pages.
        assert!(f.find(NodeId(1)).unwrap().is_some());
        assert!(f.find(NodeId(2)).unwrap().is_none());
        assert_eq!(f.len(), 1);
        assert_eq!(f.num_pages(), 1);
        assert_eq!(f.txn_aborts(), 1);
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn abort_without_wal_reports_false() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        assert!(!f.abort().unwrap(), "plain store cannot roll back");
        // Nothing was discarded.
        assert!(f.find(NodeId(1)).unwrap().is_some());
        assert_eq!(f.txn_aborts(), 0);
    }

    #[test]
    fn maybe_commit_counts_transactions() {
        let wal = std::env::temp_dir().join(format!(
            "ccam-file-txn-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let store =
            ccam_storage::WalStore::create(ccam_storage::MemPageStore::new(512).unwrap(), &wal)
                .unwrap();
        let mut f = NetworkFile::create(store).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        f.maybe_commit().unwrap();
        assert_eq!(f.txn_commits(), 0, "auto-commit off: no transaction");
        f.set_auto_commit(true);
        f.insert_into(p, &node(2, 0)).unwrap();
        f.maybe_commit().unwrap();
        assert_eq!(f.txn_commits(), 1);
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn uncounted_scans_do_not_commit() {
        let wal = std::env::temp_dir().join(format!(
            "ccam-file-scan-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let store =
            ccam_storage::WalStore::create(ccam_storage::MemPageStore::new(512).unwrap(), &wal)
                .unwrap();
        let mut f = NetworkFile::create(store).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();

        // The scans see the dirty (uncommitted) truth...
        let scan = f.scan_uncounted().unwrap();
        assert_eq!(scan[0].1.len(), 1);
        let fsm = f.free_space_map_uncounted().unwrap();
        assert_eq!(fsm.len(), 1);

        // ...without forcing a commit: abort still rolls everything back.
        assert!(f.abort().unwrap());
        assert_eq!(f.len(), 0);
        assert_eq!(f.num_pages(), 0);
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn quarantined_pages_never_receive_new_records() {
        let mut f = NetworkFile::new(512).unwrap();
        let p = f.allocate_page().unwrap();
        f.insert_into(p, &node(1, 0)).unwrap();
        f.quarantine(p);
        let map = f.free_space_map_uncounted().unwrap();
        assert!(
            map.iter().all(|(page, _)| *page != p),
            "quarantined page must not appear in the free-space map"
        );
        assert!(f.quarantined_pages().contains(&p));
    }
}
