#![warn(missing_docs)]

//! The CCAM access-method layer: the paper's contribution and every
//! comparator it is evaluated against.
//!
//! * [`mod@file`] — the network data file shared by all access methods:
//!   slotted data pages behind a counted buffer pool plus the B⁺-tree
//!   secondary index,
//! * [`am`] — the [`am::AccessMethod`] operations (`Create`, `Find`,
//!   `Insert`, `Delete`, `Get-A-successor`, `Get-successors`, §1.2) and
//!   the four implementations: [`am::Ccam`] (connectivity clustering,
//!   static and dynamic create), [`am::TopoAm`] (DFS-AM / BFS-AM /
//!   WDFS-AM) and [`am::GridAm`] (Grid-File clustering),
//! * [`pag`] — the Page Access Graph of Definition 1–2 (`NbrPages`,
//!   `PagesOfNbrs`),
//! * [`reorg`] — the reorganization policies of Table 1,
//! * [`crr`] — CRR / WCRR measurement over a data file,
//! * [`check`] — database integrity verification (index ↔ pages ↔
//!   cross-links),
//! * [`workload`] — operation-trace record/replay for portable
//!   benchmarking,
//! * [`costmodel`] — the algebraic cost model of Tables 3 and 4,
//! * [`validate`] — a harness that replays a live workload and reports
//!   predicted vs. observed page accesses per operation class,
//! * [`query`] — aggregate queries: route evaluation, graph search (A*,
//!   Dijkstra), graph traversal / reachability / transitive closure,
//!   tour evaluation, route-unit aggregates, location-allocation and
//!   spatial window queries,
//! * [`epoch`] — the single-writer / multi-reader [`EpochCell`] the
//!   serving layer uses for snapshot-consistent reads during commits.

pub mod am;
pub mod check;
pub mod costmodel;
pub mod crr;
pub mod epoch;
pub mod file;
pub mod pag;
pub mod query;
pub mod reorg;
pub mod validate;
pub mod workload;

pub use am::{AccessMethod, Ccam, CcamBuilder, GridAm, TopoAm, TraversalOrder};
pub use costmodel::CostParams;
pub use epoch::{EpochCell, EpochWriteGuard};
pub use file::{Degraded, NetworkFile};
pub use reorg::ReorgPolicy;
pub use validate::{validate, ClassReport, ValidationConfig, ValidationReport};
