//! CCAM — the Connectivity-Clustered Access Method (paper §2).
//!
//! `Create()` assigns node records to data pages with the recursive
//! ratio-cut clustering of Figure 2, maximising (W)CRR. Two variants
//! reproduce the paper's §2.2:
//!
//! * **CCAM-S** ([`CcamBuilder::build_static`]) — whole-network
//!   `Static-Create()`,
//! * **CCAM-D** ([`CcamBuilder::build_dynamic`]) — `Incremental
//!   Create()` as a sequence of `Add-node()` operations with dynamic
//!   reclustering (second-order policy by default), for networks too
//!   large to partition in memory at once.
//!
//! Maintenance follows Figures 3 and 4 with the Table 1 reorganization
//! policies layered on the shared plumbing in [`super::common`].

use std::collections::HashMap;

use ccam_graph::{Network, NodeData, NodeId};
use ccam_partition::{
    cluster_nodes_into_pages_with, refine_m_way, ClusterOptions, PartGraph, PartitionStrategy,
    Partitioner,
};
use ccam_storage::{PageId, StorageError, StorageResult};

use crate::am::common::{
    self, insert_with_overflow_split, merge_on_underflow, patch_neighbors_on_delete,
    patch_neighbors_on_insert, select_page_by_neighbors, DeletedNode,
};
use crate::am::AccessMethod;
use crate::file::NetworkFile;
use crate::reorg::{self, ReorgPolicy};

/// Scale applied to route-derived edge weights during clustering. The
/// `+1` keeps untraversed edges weakly attractive, so a weighted CCAM
/// file still clusters raw connectivity where the workload is silent.
const WEIGHT_SCALE: u64 = 64;

/// Configures and creates [`Ccam`] files.
#[derive(Clone)]
pub struct CcamBuilder {
    page_size: usize,
    partitioner: Partitioner,
    policy: ReorgPolicy,
    weights: Option<HashMap<(NodeId, NodeId), u64>>,
    mway_passes: usize,
    threads: usize,
    strategy: PartitionStrategy,
}

impl CcamBuilder {
    /// A builder for `page_size`-byte data pages with the paper's
    /// defaults: ratio-cut partitioning, second-order reorganization,
    /// uniform edge weights.
    pub fn new(page_size: usize) -> Self {
        CcamBuilder {
            page_size,
            partitioner: Partitioner::RatioCut,
            policy: ReorgPolicy::SecondOrder,
            weights: None,
            mway_passes: 0,
            threads: 1,
            strategy: PartitionStrategy::Flat,
        }
    }

    /// Selects the two-way partitioning heuristic (ablation hook).
    pub fn partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Number of threads for the bulk `Static-Create()` clustering
    /// (`0` = all available cores). The clustering result is
    /// byte-identical at every thread count, so this only changes
    /// wall-clock time, never CRR/WCRR or the paper experiments.
    /// Default: 1 (sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the clustering strategy for bulk `Static-Create()`:
    /// [`PartitionStrategy::Flat`] (the paper's recursive bipartition,
    /// the default) or [`PartitionStrategy::Multilevel`] (coarsen→
    /// partition→refine, for million-node networks). Pages and CRR stay
    /// deterministic for either choice.
    pub fn strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the reorganization policy for maintenance operations.
    pub fn policy(mut self, p: ReorgPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Supplies route-derived edge access frequencies; clustering then
    /// maximises WCRR instead of CRR (§4.3).
    pub fn weights(mut self, w: HashMap<(NodeId, NodeId), u64>) -> Self {
        self.weights = Some(w);
        self
    }

    /// Enables m-way refinement of the static clustering (the paper's
    /// "may further improve the result" note, §2.2); `passes` greedy
    /// rounds.
    pub fn multiway(mut self, passes: usize) -> Self {
        self.mway_passes = passes;
        self
    }

    fn wrap<S: ccam_storage::PageStore>(&self, file: NetworkFile<S>) -> Ccam<S> {
        Ccam {
            file,
            partitioner: self.partitioner,
            policy: self.policy,
            weights: self.weights.clone().unwrap_or_default(),
            update_counts: HashMap::new(),
            name: "CCAM".to_string(),
        }
    }

    /// An empty memory-backed CCAM file (nodes arrive via `insert_node`).
    pub fn build_empty(&self) -> StorageResult<Ccam> {
        Ok(self.wrap(NetworkFile::new(self.page_size)?))
    }

    /// An empty CCAM file over an arbitrary (empty) page store — e.g. a
    /// [`ccam_storage::FilePageStore`] for a persistent database.
    pub fn build_empty_on<S: ccam_storage::PageStore>(&self, store: S) -> StorageResult<Ccam<S>> {
        assert_eq!(
            store.page_size(),
            self.page_size,
            "store page size mismatch"
        );
        Ok(self.wrap(NetworkFile::create(store)?))
    }

    /// Reopens an existing CCAM database from a store that already holds
    /// its data pages (e.g. a page file written by
    /// [`NetworkFile::save_to`]); the secondary index is rebuilt by one
    /// scan.
    pub fn open_on<S: ccam_storage::PageStore>(&self, store: S) -> StorageResult<Ccam<S>> {
        let mut am = self.wrap(NetworkFile::open(store)?);
        am.name = "CCAM".to_string();
        Ok(am)
    }

    /// **CCAM-S**: `Static-Create()` — clusters the whole network at
    /// once with `cluster-nodes-into-pages()` (Figure 2) and bulk-loads
    /// the groups.
    pub fn build_static(&self, net: &Network) -> StorageResult<Ccam> {
        self.build_static_in(self.build_empty()?, net)
    }

    /// `Static-Create()` onto an arbitrary page store.
    pub fn build_static_on<S: ccam_storage::PageStore>(
        &self,
        store: S,
        net: &Network,
    ) -> StorageResult<Ccam<S>> {
        self.build_static_in(self.build_empty_on(store)?, net)
    }

    fn build_static_in<S: ccam_storage::PageStore>(
        &self,
        mut am: Ccam<S>,
        net: &Network,
    ) -> StorageResult<Ccam<S>> {
        am.name = "CCAM-S".to_string();
        let nodes: Vec<&NodeData> = net.nodes().collect();
        let idx_of: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
        let sizes: Vec<usize> = nodes
            .iter()
            .map(|n| crate::file::clustering_weight(n))
            .collect();
        let mut edges = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            for e in &n.successors {
                if let Some(&j) = idx_of.get(&e.to) {
                    edges.push((i, j, am.edge_weight(n.id, e.to)));
                }
            }
        }
        let graph = PartGraph::new(sizes, &edges);
        let opts = ClusterOptions::new(self.partitioner)
            .threads(self.threads)
            .strategy(self.strategy);
        let mut groups = cluster_nodes_into_pages_with(&graph, am.file.clustering_budget(), opts);
        if self.mway_passes > 0 {
            groups = refine_m_way(
                &graph,
                groups,
                am.file.clustering_budget(),
                self.mway_passes,
            );
        }
        am.file.bulk_load(
            groups
                .into_iter()
                .map(|g| g.into_iter().map(|i| nodes[i]).collect::<Vec<_>>()),
        )?;
        Ok(am)
    }

    /// **CCAM-D**: `Incremental Create()` — a sequence of `Add-node()`
    /// operations ("similar to Insert() ... \[but\] does not need to
    /// update the successor and predecessor lists", §2.2), each followed
    /// by the builder's reorganization policy.
    pub fn build_dynamic(&self, net: &Network) -> StorageResult<Ccam> {
        let mut am = self.build_empty()?;
        am.name = "CCAM-D".to_string();
        for node in net.nodes() {
            am.add_node(node)?;
        }
        Ok(am)
    }

    /// `Incremental Create()` onto an arbitrary page store.
    pub fn build_dynamic_on<S: ccam_storage::PageStore>(
        &self,
        store: S,
        net: &Network,
    ) -> StorageResult<Ccam<S>> {
        let mut am = self.build_empty_on(store)?;
        am.name = "CCAM-D".to_string();
        for node in net.nodes() {
            am.add_node(node)?;
        }
        Ok(am)
    }
}

/// The CCAM access method, generic over the backing page store
/// (memory by default; see [`CcamBuilder::open_on`] for disk files).
pub struct Ccam<S: ccam_storage::PageStore = ccam_storage::MemPageStore> {
    file: NetworkFile<S>,
    partitioner: Partitioner,
    policy: ReorgPolicy,
    /// Route-derived edge access frequencies (empty → uniform CRR).
    weights: HashMap<(NodeId, NodeId), u64>,
    /// Per-page update counters driving [`ReorgPolicy::Lazy`] triggers.
    update_counts: HashMap<ccam_storage::PageId, u32>,
    name: String,
}

impl<S: ccam_storage::PageStore> Ccam<S> {
    /// The reorganization policy used by maintenance operations.
    pub fn policy(&self) -> ReorgPolicy {
        self.policy
    }

    /// Changes the reorganization policy (the Figure 7 experiment sweeps
    /// it on one file).
    pub fn set_policy(&mut self, policy: ReorgPolicy) {
        self.policy = policy;
    }

    /// Clustering weight of an edge: scaled access frequency, keeping a
    /// baseline pull of 1 for untraversed edges.
    fn edge_weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.weights
            .get(&(u, v))
            .map(|w| w * WEIGHT_SCALE + 1)
            .unwrap_or(1)
    }

    /// Places a record: neighbor-ranked page, else the fullest page with
    /// room, else a fresh page. Returns the chosen page.
    fn place_record(&mut self, node: &NodeData) -> StorageResult<ccam_storage::PageId> {
        let needed = crate::file::record_len(node);
        if let Some(p) = select_page_by_neighbors(&self.file, &node.neighbors(), needed)? {
            return Ok(p);
        }
        if let Some(p) = common::any_page_with_space(&self.file, needed)? {
            return Ok(p);
        }
        self.file.allocate_page()
    }

    /// Completes one logical operation as a transaction: on success the
    /// whole operation commits (under auto-commit) as a single WAL
    /// batch; on failure — the operation's own error or the commit's —
    /// every uncommitted change is rolled back via
    /// [`NetworkFile::abort`], leaving the file on its last committed
    /// state, and the original error propagates. Without auto-commit
    /// (or without a rollback-capable store) errors just propagate: the
    /// caller owns the commit points.
    fn finish_txn<T>(&mut self, r: StorageResult<T>) -> StorageResult<T> {
        match r {
            Ok(v) => {
                if let Err(e) = self.file.maybe_commit() {
                    self.abort_txn();
                    return Err(e);
                }
                Ok(v)
            }
            Err(e) => {
                self.abort_txn();
                Err(e)
            }
        }
    }

    /// Best-effort rollback of a failed operation (its error must not be
    /// masked by the abort's). After a rollback, pages the lazy policy
    /// was counting may no longer exist, so the counters restart clean.
    fn abort_txn(&mut self) {
        if !self.file.auto_commit() {
            return;
        }
        if matches!(self.file.abort(), Ok(true)) {
            self.update_counts.clear();
        }
    }

    /// `Add-node()` — incremental-create insertion: places the record
    /// (whose lists are already complete) without patching neighbors,
    /// then applies the reorganization policy (§2.2).
    pub fn add_node(&mut self, node: &NodeData) -> StorageResult<()> {
        let r = self.add_node_inner(node);
        self.finish_txn(r)
    }

    fn add_node_inner(&mut self, node: &NodeData) -> StorageResult<()> {
        let page = self.place_record(node)?;
        let weights = std::mem::take(&mut self.weights);
        let weight = |u: NodeId, v: NodeId| {
            weights
                .get(&(u, v))
                .map(|w| w * WEIGHT_SCALE + 1)
                .unwrap_or(1)
        };
        let r = insert_with_overflow_split(&mut self.file, page, node, &weight, self.partitioner);
        self.weights = weights;
        r?;
        let page = self
            .file
            .page_of(node.id)?
            .ok_or_else(|| StorageError::Corrupt("record vanished after insert".into()))?;
        self.maintain_node(page, &node.neighbors())
    }

    /// Replaces the route-derived edge weights and reclusters the whole
    /// file to maximise WCRR under the new workload.
    ///
    /// This is the IVHS maintenance cycle the paper motivates: travel
    /// times and popular routes are "updated frequently" (§1.1), so the
    /// placement that was optimal for last month's traffic drifts; a
    /// periodic re-weight + reorganize restores it. Returns the WCRR
    /// under the new weights.
    pub fn reweight_and_reorganize(
        &mut self,
        weights: HashMap<(NodeId, NodeId), u64>,
    ) -> StorageResult<f64> {
        self.weights = weights;
        self.reorganize_full()?;
        crate::crr::wcrr(&self.file, &self.weights)
    }

    /// Reclusters the **entire data file** — Table 1's "3. all pages in
    /// data file" higher-order variant. This is the maintenance hammer: a
    /// file degraded by heavy churn recovers (near-)static-create CRR at
    /// the cost of reading and rewriting everything. Returns the CRR
    /// after reorganization.
    pub fn reorganize_full(&mut self) -> StorageResult<f64> {
        let r = self.reorganize_full_inner();
        self.finish_txn(r)?;
        crate::crr::crr(&self.file)
    }

    fn reorganize_full_inner(&mut self) -> StorageResult<()> {
        let pages: std::collections::BTreeSet<ccam_storage::PageId> =
            self.file.page_map()?.into_values().collect();
        self.reorganize_set(&pages)?;
        self.update_counts.clear();
        Ok(())
    }

    /// Reclusters an explicit page set under the configured weights.
    fn reorganize_set(
        &mut self,
        pages: &std::collections::BTreeSet<ccam_storage::PageId>,
    ) -> StorageResult<()> {
        let weights = std::mem::take(&mut self.weights);
        let weight = |u: NodeId, v: NodeId| {
            weights
                .get(&(u, v))
                .map(|w| w * WEIGHT_SCALE + 1)
                .unwrap_or(1)
        };
        let r = reorg::reorganize_pages(&mut self.file, pages, &weight, self.partitioner);
        self.weights = weights;
        r
    }

    /// Policy-driven maintenance after a node landed on / vanished from
    /// `page`: second/higher order reorganize immediately (Table 1); the
    /// lazy policy counts updates and sweeps `{P} ∪ NbrPages(P)` on
    /// trigger.
    fn maintain_node(
        &mut self,
        page: ccam_storage::PageId,
        neighbors: &[NodeId],
    ) -> StorageResult<()> {
        match self.policy {
            ReorgPolicy::FirstOrder => Ok(()),
            ReorgPolicy::SecondOrder | ReorgPolicy::HigherOrder => {
                let pages = reorg::pages_for_node_update(&self.file, page, neighbors, self.policy)?;
                self.reorganize_set(&pages)
            }
            ReorgPolicy::Lazy { every } => {
                // Every page the update wrote counts: the landing page
                // plus the neighbor pages whose lists were patched.
                self.lazy_tick(page, every)?;
                let nbr_pages = crate::pag::pages_of(&self.file, neighbors)?;
                for p in nbr_pages {
                    if p != page {
                        self.lazy_tick(p, every)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Bumps the lazy counter of `page`; sweeps on reaching `every`.
    fn lazy_tick(&mut self, page: ccam_storage::PageId, every: u32) -> StorageResult<()> {
        if !self.file.is_live_page(page) {
            self.update_counts.remove(&page);
            return Ok(());
        }
        let count = self.update_counts.entry(page).or_insert(0);
        *count += 1;
        if *count < every {
            return Ok(());
        }
        let pages = reorg::pages_for_lazy_trigger(&self.file, page)?;
        self.reorganize_set(&pages)?;
        for p in &pages {
            self.update_counts.remove(p);
        }
        Ok(())
    }

    /// Policy-driven maintenance after an edge update touching the pages
    /// of both endpoints.
    fn maintain_edge(
        &mut self,
        page_u: ccam_storage::PageId,
        page_v: ccam_storage::PageId,
    ) -> StorageResult<()> {
        match self.policy {
            ReorgPolicy::FirstOrder => Ok(()),
            ReorgPolicy::SecondOrder | ReorgPolicy::HigherOrder => {
                let pages = reorg::pages_for_edge_update(&self.file, page_u, page_v, self.policy)?;
                self.reorganize_set(&pages)
            }
            ReorgPolicy::Lazy { every } => {
                self.lazy_tick(page_u, every)?;
                if page_v != page_u {
                    self.lazy_tick(page_v, every)?;
                }
                Ok(())
            }
        }
    }

    fn insert_node_inner(
        &mut self,
        node: &NodeData,
        incoming: &[(NodeId, u32)],
    ) -> StorageResult<()> {
        let page = self.place_record(node)?;
        let weights = std::mem::take(&mut self.weights);
        let weight = |u: NodeId, v: NodeId| {
            weights
                .get(&(u, v))
                .map(|w| w * WEIGHT_SCALE + 1)
                .unwrap_or(1)
        };
        let r = insert_with_overflow_split(&mut self.file, page, node, &weight, self.partitioner);
        self.weights = weights;
        r?;
        patch_neighbors_on_insert(&mut self.file, node, incoming)?;
        let page = self
            .file
            .page_of(node.id)?
            .ok_or_else(|| StorageError::Corrupt("record vanished after insert".into()))?;
        self.maintain_node(page, &node.neighbors())
    }

    fn delete_node_inner(&mut self, id: NodeId) -> StorageResult<Option<DeletedNode>> {
        let Some((page, data)) = self.file.find(id)? else {
            return Ok(None);
        };
        let incoming = patch_neighbors_on_delete(&mut self.file, &data)?;
        self.file.remove_from(page, id)?;
        match self.policy {
            ReorgPolicy::FirstOrder | ReorgPolicy::Lazy { .. } => {
                let candidates = crate::pag::pages_of_nbrs(&self.file, &data)?;
                merge_on_underflow(&mut self.file, page, &candidates)?;
                // The lazy variant additionally counts the update and may
                // sweep (no-op under first order).
                self.maintain_node(page, &data.neighbors())?;
            }
            ReorgPolicy::SecondOrder | ReorgPolicy::HigherOrder => {
                // Reorganize around where x used to live (the page stays
                // live even when the deletion emptied it).
                self.maintain_node(page, &data.neighbors())?;
            }
        }
        Ok(Some(DeletedNode { data, incoming }))
    }

    fn insert_edge_inner(&mut self, from: NodeId, to: NodeId, cost: u32) -> StorageResult<bool> {
        let Some((pf, mut f_rec)) = self.file.find(from)? else {
            return Ok(false);
        };
        let Some((pt, mut t_rec)) = self.file.find(to)? else {
            return Ok(false);
        };
        if f_rec.successors.iter().any(|e| e.to == to) {
            return Ok(false);
        }
        f_rec.successors.push(ccam_graph::EdgeTo { to, cost });
        common::write_back(&mut self.file, pf, &f_rec)?;
        t_rec.predecessors.push(from);
        common::write_back(&mut self.file, pt, &t_rec)?;
        let pu = self
            .file
            .page_of(from)?
            .ok_or_else(|| StorageError::Corrupt("edge source lost its index entry".into()))?;
        let pv = self
            .file
            .page_of(to)?
            .ok_or_else(|| StorageError::Corrupt("edge target lost its index entry".into()))?;
        self.maintain_edge(pu, pv)?;
        Ok(true)
    }

    fn delete_edge_inner(&mut self, from: NodeId, to: NodeId) -> StorageResult<Option<u32>> {
        let Some((pf, mut f_rec)) = self.file.find(from)? else {
            return Ok(None);
        };
        let Some(pos) = f_rec.successors.iter().position(|e| e.to == to) else {
            return Ok(None);
        };
        let cost = f_rec.successors[pos].cost;
        f_rec.successors.remove(pos);
        common::write_back(&mut self.file, pf, &f_rec)?;
        if let Some((pt, mut t_rec)) = self.file.find(to)? {
            if let Some(ppos) = t_rec.predecessors.iter().position(|&p| p == from) {
                t_rec.predecessors.remove(ppos);
                common::write_back(&mut self.file, pt, &t_rec)?;
            }
        }
        let pu = self
            .file
            .page_of(from)?
            .ok_or_else(|| StorageError::Corrupt("edge source lost its index entry".into()))?;
        if let Some(pv) = self.file.page_of(to)? {
            self.maintain_edge(pu, pv)?;
        }
        Ok(Some(cost))
    }
}

impl<S: ccam_storage::PageStore> AccessMethod<S> for Ccam<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn file(&self) -> &NetworkFile<S> {
        &self.file
    }

    fn file_mut(&mut self) -> &mut NetworkFile<S> {
        &mut self.file
    }

    /// Figure 3: retrieve `PagesOfNbrs(x)` (implicit in the ranked page
    /// selection), place the record, patch the neighbor lists, then
    /// handle overflow (first order) or reorganize (higher policies).
    /// The whole operation — record placement, splits, neighbor
    /// patches, reorganization, index updates — is one transaction.
    fn insert_node_impl(
        &mut self,
        node: &NodeData,
        incoming: &[(NodeId, u32)],
    ) -> StorageResult<()> {
        let r = self.insert_node_inner(node, incoming);
        self.finish_txn(r)
    }

    /// Figure 4: retrieve `Page(x)` and `PagesOfNbrs(x)`, patch the
    /// neighbors, delete record and index entry, then merge on underflow
    /// (first order) or reorganize (higher policies). One transaction.
    fn delete_node_impl(&mut self, id: NodeId) -> StorageResult<Option<DeletedNode>> {
        let r = self.delete_node_inner(id);
        self.finish_txn(r)
    }

    fn insert_edge_impl(&mut self, from: NodeId, to: NodeId, cost: u32) -> StorageResult<bool> {
        let r = self.insert_edge_inner(from, to, cost);
        self.finish_txn(r)
    }

    fn delete_edge_impl(&mut self, from: NodeId, to: NodeId) -> StorageResult<Option<u32>> {
        let r = self.delete_edge_inner(from, to);
        self.finish_txn(r)
    }
}

impl<S: ccam_storage::PageStore> Ccam<S> {
    /// Replication follower apply: redoes a shipped WAL segment onto the
    /// backing store ([`ccam_storage::apply_segment`]) and re-coheres the
    /// in-memory layers on top of the changed pages — cached frames are
    /// discarded (their contents may predate the segment) and the node
    /// index is rebuilt. Batches at or below `applied_lsn` are skipped,
    /// so re-applying an overlapping segment after a crash is harmless.
    ///
    /// The caller publishes the new state to readers afterwards (via
    /// `EpochCell` commit); until then snapshot readers keep their pinned
    /// generation.
    pub fn apply_replicated(
        &mut self,
        records: &[ccam_storage::StampedRecord],
        applied_lsn: u64,
    ) -> StorageResult<ccam_storage::SegmentApply> {
        self.file.pool().discard_frames();
        let apply = self
            .file
            .pool()
            .with_store_mut(|s| ccam_storage::apply_segment(s, records, applied_lsn))?;
        self.file.rebuild_index()?;
        self.update_counts.clear();
        Ok(apply)
    }

    /// Replication follower re-seed: replaces the backing store's live
    /// page set with a full primary image ([`ccam_storage::apply_image`])
    /// and rebuilds the in-memory layers, for catch-up when the primary's
    /// log no longer retains our position.
    pub fn apply_replicated_image(
        &mut self,
        pages: &[(ccam_storage::PageId, Vec<u8>)],
    ) -> StorageResult<u64> {
        self.file.pool().discard_frames();
        let written = self
            .file
            .pool()
            .with_store_mut(|s| ccam_storage::apply_image(s, pages))?;
        self.file.rebuild_index()?;
        self.update_counts.clear();
        Ok(written)
    }

    /// Asks the backing store to keep multi-version committed page
    /// images (`WalStore::enable_snapshots`), making every subsequent
    /// snapshot capture a cheap generation pin instead of a deep copy.
    /// Commits first so the store is at a batch boundary. Returns false
    /// when the store has no native versioning (captures then deep-copy
    /// the committed pages instead — still correct, just O(data)).
    pub fn enable_snapshots(&mut self) -> StorageResult<bool> {
        self.file.commit()?;
        Ok(self
            .file
            .pool()
            .with_store_mut(|s| s.enable_snapshots())?
            .is_some())
    }
}

/// Snapshot capture for the serving layer: the view is a read-only CCAM
/// over one pinned committed generation ([`ccam_storage::SnapshotStore`]).
/// All [`AccessMethod`] read operations run unmodified against it; its
/// quarantine set is rebuilt from the generation's own unreadable pages,
/// so degraded reads keep working over snapshots.
impl<S: ccam_storage::PageStore> crate::epoch::Snapshotable for Ccam<S> {
    type View = Ccam<ccam_storage::SnapshotStore>;

    fn capture(&self) -> StorageResult<Self::View> {
        // Flush + sync first: over a `WalStore` this is the commit point
        // that publishes the batch as a new generation; over plain
        // stores it writes dirty frames back so the copy below sees the
        // committed bytes.
        self.file.commit()?;
        let store = match self.file.pool().with_store(|s| s.page_versions()) {
            Some(versions) => ccam_storage::SnapshotStore::pin(&versions),
            None => {
                // No native versioning: freeze a one-shot deep copy of
                // the committed pages (tolerating unreadable ones, which
                // the view quarantines like the device path would).
                let page_size = self.file.page_size();
                let live = self
                    .file
                    .pool()
                    .with_store(ccam_storage::PageStore::live_pages);
                let mut images = Vec::with_capacity(live.len());
                let mut buf = vec![0u8; page_size];
                for p in live {
                    match self.file.pool().read_uncounted(p, &mut buf) {
                        Ok(()) => images.push((
                            p.0,
                            ccam_storage::PageImage::Bytes(buf.clone().into_boxed_slice()),
                        )),
                        Err(StorageError::ChecksumMismatch { .. }) => {
                            images.push((p.0, ccam_storage::PageImage::Unreadable));
                        }
                        Err(e) => return Err(e),
                    }
                }
                let versions = ccam_storage::PageVersions::from_images(page_size, images);
                ccam_storage::SnapshotStore::pin(&versions)
            }
        };
        let mut file = NetworkFile::open(store)?;
        // `open`'s tolerant scan quarantines unreadable pages but cannot
        // index the records on them. The writer's index still knows which
        // ids live there: graft those entries so a lookup on the view
        // routes to the quarantined page — and takes the degraded path —
        // instead of reporting a confident miss.
        let quarantined: std::collections::BTreeSet<PageId> =
            file.quarantined_pages().into_iter().collect();
        if !quarantined.is_empty() {
            for (id, page) in self.file.index_range(0, u64::MAX)? {
                let page = PageId(page as u32);
                if quarantined.contains(&page) {
                    file.adopt_index_entry(NodeId(id), page)?;
                }
            }
        }
        Ok(Ccam {
            file,
            partitioner: self.partitioner,
            policy: self.policy,
            // The view is read-only: clustering weights and lazy-policy
            // counters only matter to mutations.
            weights: HashMap::new(),
            update_counts: HashMap::new(),
            name: self.name.clone(),
        })
    }

    fn restore_committed(&mut self) -> StorageResult<()> {
        // Over a rollback-capable (WAL) store this discards the torn
        // transaction entirely; over plain stores it at least re-coheres
        // the index and quarantine set with what the store holds.
        self.file.abort()?;
        self.file.rebuild_index()?;
        self.update_counts.clear();
        Ok(())
    }

    fn stats_handle(&self) -> Option<std::sync::Arc<ccam_storage::IoStats>> {
        Some(self.file.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::generators::grid_network;

    #[test]
    fn static_create_stores_every_node() {
        let net = grid_network(8, 8, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        assert_eq!(am.file().len(), 64);
        for id in net.node_ids() {
            let rec = am.find(id).unwrap().unwrap();
            assert_eq!(&rec, net.node(id).unwrap());
        }
    }

    #[test]
    fn static_create_yields_high_crr() {
        let net = grid_network(10, 10, 1.0);
        let am = CcamBuilder::new(1024).build_static(&net).unwrap();
        let crr = am.crr().unwrap();
        assert!(crr > 0.5, "static CCAM CRR {crr:.3} unexpectedly low");
    }

    #[test]
    fn dynamic_create_matches_static_contents() {
        let net = grid_network(6, 6, 1.0);
        let s = CcamBuilder::new(512).build_static(&net).unwrap();
        let d = CcamBuilder::new(512).build_dynamic(&net).unwrap();
        assert_eq!(s.file().len(), d.file().len());
        for id in net.node_ids() {
            assert_eq!(
                s.find(id).unwrap().unwrap(),
                d.find(id).unwrap().unwrap(),
                "{id:?}"
            );
        }
        // Dynamic clustering is decent, if below static.
        let crr_d = d.crr().unwrap();
        assert!(crr_d > 0.3, "CCAM-D CRR {crr_d:.3}");
    }

    #[test]
    fn get_successors_returns_all() {
        let net = grid_network(5, 5, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        for id in net.node_ids() {
            let succs = am.get_successors(id).unwrap();
            let expect = &net.node(id).unwrap().successors;
            assert_eq!(succs.len(), expect.len());
            for e in expect {
                assert!(succs.iter().any(|s| s.id == e.to));
            }
        }
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let net = grid_network(5, 5, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        let victim = net.node_ids()[12];
        let deleted = am.delete_node(victim).unwrap().unwrap();
        assert!(am.find(victim).unwrap().is_none());
        // Neighbors no longer reference the victim.
        for e in &deleted.data.successors {
            let rec = am.find(e.to).unwrap().unwrap();
            assert!(!rec.predecessors.contains(&victim));
        }
        // Re-insert: full restoration.
        am.insert_node(&deleted.data, &deleted.incoming).unwrap();
        let back = am.find(victim).unwrap().unwrap();
        assert_eq!(back.successors.len(), deleted.data.successors.len());
        for e in &deleted.data.successors {
            let rec = am.find(e.to).unwrap().unwrap();
            assert!(rec.predecessors.contains(&victim));
        }
        for &(p, cost) in &deleted.incoming {
            let rec = am.find(p).unwrap().unwrap();
            assert!(rec
                .successors
                .iter()
                .any(|e| e.to == victim && e.cost == cost));
        }
    }

    #[test]
    fn edge_insert_delete_roundtrip() {
        let net = grid_network(4, 4, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        let ids = net.node_ids();
        let (a, b) = (ids[0], ids[15]); // far apart: no existing edge
        assert!(am.insert_edge(a, b, 42).unwrap());
        assert!(!am.insert_edge(a, b, 42).unwrap(), "duplicate rejected");
        let rec = am.find(a).unwrap().unwrap();
        assert!(rec.successors.iter().any(|e| e.to == b && e.cost == 42));
        assert_eq!(am.delete_edge(a, b).unwrap(), Some(42));
        assert_eq!(am.delete_edge(a, b).unwrap(), None);
        let rec = am.find(b).unwrap().unwrap();
        assert!(!rec.predecessors.contains(&a));
    }

    #[test]
    fn policies_all_converge_to_consistent_files() {
        let net = grid_network(6, 6, 1.0);
        for policy in [
            ReorgPolicy::FirstOrder,
            ReorgPolicy::SecondOrder,
            ReorgPolicy::HigherOrder,
        ] {
            let mut am = CcamBuilder::new(512)
                .policy(policy)
                .build_static(&net)
                .unwrap();
            let ids = net.node_ids();
            // Delete + reinsert a batch of nodes under this policy.
            for &id in ids.iter().step_by(5) {
                let del = am.delete_node(id).unwrap().unwrap();
                am.insert_node(&del.data, &del.incoming).unwrap();
            }
            for id in net.node_ids() {
                assert!(
                    am.find(id).unwrap().is_some(),
                    "{policy:?} lost node {id:?}"
                );
            }
            let crr = am.crr().unwrap();
            assert!((0.0..=1.0).contains(&crr));
        }
    }

    #[test]
    fn second_order_keeps_crr_healthier_than_first_under_churn() {
        let net = grid_network(8, 8, 1.0);
        let mut crr_by_policy = Vec::new();
        for policy in [ReorgPolicy::FirstOrder, ReorgPolicy::SecondOrder] {
            let mut am = CcamBuilder::new(512).policy(policy).build_empty().unwrap();
            am.name = policy.name().to_string();
            // Incremental build = pure churn workload.
            for node in net.nodes() {
                am.add_node(node).unwrap();
            }
            crr_by_policy.push(am.crr().unwrap());
        }
        assert!(
            crr_by_policy[1] >= crr_by_policy[0],
            "second-order {:.3} should beat first-order {:.3}",
            crr_by_policy[1],
            crr_by_policy[0]
        );
    }

    #[test]
    fn full_reorganization_restores_churned_crr() {
        let net = grid_network(9, 9, 1.0);
        // Degrade a first-order file with heavy churn.
        let mut am = CcamBuilder::new(512)
            .policy(ReorgPolicy::FirstOrder)
            .build_empty()
            .unwrap();
        for node in net.nodes() {
            am.add_node(node).unwrap();
        }
        let ids = net.node_ids();
        for round in 0..2 {
            for &id in ids.iter().skip(round).step_by(3) {
                let del = am.delete_node(id).unwrap().unwrap();
                am.insert_node(&del.data, &del.incoming).unwrap();
            }
        }
        let degraded = am.crr().unwrap();
        let restored = am.reorganize_full().unwrap();
        let static_baseline = CcamBuilder::new(512)
            .build_static(&net)
            .unwrap()
            .crr()
            .unwrap();
        assert!(
            restored > degraded,
            "full reorg must improve CRR: {degraded:.3} -> {restored:.3}"
        );
        assert!(
            restored > static_baseline - 0.1,
            "restored {restored:.3} should approach static {static_baseline:.3}"
        );
        // Contents untouched (edge-list order may differ after churn).
        for id in net.node_ids() {
            let rec = am.find(id).unwrap().unwrap();
            let want = net.node(id).unwrap();
            let mut got_s = rec.successors.clone();
            let mut want_s = want.successors.clone();
            got_s.sort_by_key(|e| e.to);
            want_s.sort_by_key(|e| e.to);
            assert_eq!(got_s, want_s, "{id:?}");
        }
    }

    #[test]
    fn lazy_policy_preserves_consistency_and_triggers_sweeps() {
        let net = grid_network(8, 8, 1.0);
        let mut am = CcamBuilder::new(512)
            .policy(ReorgPolicy::Lazy { every: 4 })
            .build_static(&net)
            .unwrap();
        let ids = net.node_ids();
        // Enough churn on overlapping pages to trip several sweeps.
        for round in 0..3 {
            for &id in ids.iter().skip(round).step_by(4) {
                let del = am.delete_node(id).unwrap().unwrap();
                am.insert_node(&del.data, &del.incoming).unwrap();
            }
        }
        for id in net.node_ids() {
            let rec = am.find(id).unwrap().unwrap();
            for e in &rec.successors {
                let t = am.find(e.to).unwrap().unwrap();
                assert!(t.predecessors.contains(&id));
            }
        }
        let crr = am.crr().unwrap();
        assert!((0.0..=1.0).contains(&crr));
    }

    #[test]
    fn lazy_policy_keeps_crr_above_first_order_under_growth() {
        let net = grid_network(9, 9, 1.0);
        let mut results = Vec::new();
        for policy in [ReorgPolicy::FirstOrder, ReorgPolicy::Lazy { every: 6 }] {
            let mut am = CcamBuilder::new(512).policy(policy).build_empty().unwrap();
            for node in net.nodes() {
                am.add_node(node).unwrap();
            }
            results.push(am.crr().unwrap());
        }
        assert!(
            results[1] >= results[0] - 0.02,
            "lazy {:.3} should at least match first-order {:.3}",
            results[1],
            results[0]
        );
    }

    #[test]
    fn reweighting_adapts_placement_to_new_traffic() {
        let net = grid_network(8, 8, 1.0);
        let ids: Vec<NodeId> = (0..8)
            .map(|x| ccam_graph::generators::zorder_id(x, 2))
            .collect();
        // Morning traffic: a hot west-east corridor on row 2.
        let mut morning = HashMap::new();
        for w in ids.windows(2) {
            morning.insert((w[0], w[1]), 500u64);
        }
        let mut am = CcamBuilder::new(512)
            .weights(morning.clone())
            .build_static(&net)
            .unwrap();
        let wcrr_morning = am.wcrr(&morning).unwrap();
        // Evening traffic: a hot north-south corridor on column 5.
        let col: Vec<NodeId> = (0..8)
            .map(|y| ccam_graph::generators::zorder_id(5, y))
            .collect();
        let mut evening = HashMap::new();
        for w in col.windows(2) {
            evening.insert((w[0], w[1]), 500u64);
        }
        let before_reweight = am.wcrr(&evening).unwrap();
        let after = am.reweight_and_reorganize(evening.clone()).unwrap();
        assert!(
            after > before_reweight,
            "reorganizing for evening traffic must raise its WCRR: {before_reweight:.3} -> {after:.3}"
        );
        assert!(
            wcrr_morning > 0.5,
            "morning placement served morning traffic"
        );
        // Contents intact.
        for id in net.node_ids() {
            assert!(am.find(id).unwrap().is_some());
        }
    }

    #[test]
    fn weighted_build_colocates_hot_edges() {
        let net = grid_network(6, 6, 1.0);
        // Make one long horizontal chain of edges extremely hot.
        let mut weights = HashMap::new();
        let ids: Vec<NodeId> = (0..6)
            .map(|x| ccam_graph::generators::zorder_id(x, 3))
            .collect();
        for w in ids.windows(2) {
            weights.insert((w[0], w[1]), 1000u64);
        }
        let am = CcamBuilder::new(512)
            .weights(weights.clone())
            .build_static(&net)
            .unwrap();
        let wcrr = am.wcrr(&weights).unwrap();
        assert!(
            wcrr > 0.6,
            "hot chain should be mostly colocated, wcrr = {wcrr:.3}"
        );
    }
}
