//! DFS-AM, BFS-AM and WDFS-AM — topological-ordering files generalised
//! to graphs (paper §4, building on Larson & Deshpande \[18\] and
//! Banerjee et al. \[3\]).
//!
//! "DFS-AM orders the nodes by a depth-first traversal and BFS-AM orders
//! the nodes by a breadth-first traversal from a random starting node.
//! ... WDFS-AM ... performs a depth first search according to the order
//! of the weights on the edges." Records are packed into pages in
//! traversal order; a page closes when the next record no longer fits.
//!
//! Maintenance uses the shared first-order plumbing (neighbor-ranked
//! placement, overflow split, underflow merge) — the paper measures all
//! methods under the same update workload and reorganization handling
//! (§4.2).

use std::collections::{HashMap, VecDeque};

use ccam_graph::{Network, NodeData, NodeId};
use ccam_partition::Partitioner;
use ccam_storage::{MemPageStore, PageStore, StorageResult};

use crate::am::common::{
    insert_with_overflow_split, merge_on_underflow, patch_neighbors_on_delete,
    patch_neighbors_on_insert, select_page_by_neighbors, write_back, DeletedNode,
};
use crate::am::{common, AccessMethod};
use crate::file::NetworkFile;

/// The node ordering a [`TopoAm`] file is packed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// Depth-first (DFS-AM).
    DepthFirst,
    /// Breadth-first (BFS-AM).
    BreadthFirst,
    /// Depth-first visiting heavier edges first (WDFS-AM).
    WeightedDepthFirst,
}

impl TraversalOrder {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TraversalOrder::DepthFirst => "DFS-AM",
            TraversalOrder::BreadthFirst => "BFS-AM",
            TraversalOrder::WeightedDepthFirst => "WDFS-AM",
        }
    }
}

/// A topological-ordering access method.
pub struct TopoAm<S: PageStore = MemPageStore> {
    file: NetworkFile<S>,
    order: TraversalOrder,
}

impl TopoAm<MemPageStore> {
    /// `Create()`: orders the network by the chosen traversal from
    /// `start` (defaults to the lowest node id — the paper uses a random
    /// start; a fixed one keeps experiments reproducible and seeds can
    /// vary it) and packs records into pages in that order. `weights`
    /// drive WDFS-AM's edge ordering (ignored by DFS/BFS); WDFS falls
    /// back to edge costs where no weight is known.
    pub fn create(
        net: &Network,
        page_size: usize,
        order: TraversalOrder,
        start: Option<NodeId>,
        weights: &HashMap<(NodeId, NodeId), u64>,
    ) -> StorageResult<TopoAm> {
        let mut file = NetworkFile::new(page_size)?;
        let sequence = traversal_order(net, order, start, weights);
        debug_assert_eq!(sequence.len(), net.len());

        // Greedy packing in traversal order.
        let mut groups: Vec<Vec<&NodeData>> = Vec::new();
        let mut current: Vec<&NodeData> = Vec::new();
        let mut used = 0usize;
        let budget = file.clustering_budget();
        for id in sequence {
            let node = net.node(id).expect("traversal stays in network");
            let w = crate::file::clustering_weight(node);
            if used + w > budget && !current.is_empty() {
                groups.push(std::mem::take(&mut current));
                used = 0;
            }
            current.push(node);
            used += w;
        }
        if !current.is_empty() {
            groups.push(current);
        }
        file.bulk_load(groups)?;
        Ok(TopoAm { file, order })
    }

    /// The ordering this file was created with.
    pub fn order(&self) -> TraversalOrder {
        self.order
    }
}

/// Computes the node visit order. Traversals walk the *neighbor*
/// relation (successors ∪ predecessors) so one-way streets do not strand
/// the walk; unreachable components restart from the smallest unvisited
/// id.
fn traversal_order(
    net: &Network,
    order: TraversalOrder,
    start: Option<NodeId>,
    weights: &HashMap<(NodeId, NodeId), u64>,
) -> Vec<NodeId> {
    let ids = net.node_ids();
    if ids.is_empty() {
        return Vec::new();
    }
    let start = start.unwrap_or(ids[0]);
    let mut visited: HashMap<NodeId, bool> = ids.iter().map(|&i| (i, false)).collect();
    let mut out = Vec::with_capacity(ids.len());

    // Neighbor expansion, ordered per the traversal flavour.
    let expand = |id: NodeId| -> Vec<NodeId> {
        let node = net.node(id).expect("id from network");
        let mut nbrs = node.neighbors();
        match order {
            TraversalOrder::DepthFirst | TraversalOrder::BreadthFirst => {
                nbrs.sort_unstable(); // deterministic id order
            }
            TraversalOrder::WeightedDepthFirst => {
                // Heaviest edge first; weight of the undirected pair is
                // the max over both directions, falling back to cost.
                let w = |a: NodeId, b: NodeId| -> u64 {
                    let route = weights
                        .get(&(a, b))
                        .or_else(|| weights.get(&(b, a)))
                        .copied();
                    route.unwrap_or_else(|| {
                        net.node(a)
                            .and_then(|n| n.successors.iter().find(|e| e.to == b))
                            .map(|e| e.cost as u64)
                            .unwrap_or(0)
                    })
                };
                nbrs.sort_by_key(|&n| (std::cmp::Reverse(w(id, n)), n));
            }
        }
        nbrs
    };

    let mut roots = vec![start];
    roots.extend(ids.iter().copied().filter(|&i| i != start));
    for root in roots {
        if visited[&root] {
            continue;
        }
        match order {
            TraversalOrder::BreadthFirst => {
                let mut queue = VecDeque::new();
                visited.insert(root, true);
                queue.push_back(root);
                while let Some(v) = queue.pop_front() {
                    out.push(v);
                    for n in expand(v) {
                        if !visited[&n] {
                            visited.insert(n, true);
                            queue.push_back(n);
                        }
                    }
                }
            }
            TraversalOrder::DepthFirst | TraversalOrder::WeightedDepthFirst => {
                // Iterative DFS preserving child order.
                let mut stack = vec![root];
                while let Some(v) = stack.pop() {
                    if visited[&v] {
                        continue;
                    }
                    visited.insert(v, true);
                    out.push(v);
                    let nbrs = expand(v);
                    // Push in reverse so the first neighbor is visited next.
                    for n in nbrs.into_iter().rev() {
                        if !visited[&n] {
                            stack.push(n);
                        }
                    }
                }
            }
        }
    }
    out
}

impl<S: PageStore> AccessMethod<S> for TopoAm<S> {
    fn name(&self) -> &str {
        self.order.name()
    }

    fn file(&self) -> &NetworkFile<S> {
        &self.file
    }

    fn file_mut(&mut self) -> &mut NetworkFile<S> {
        &mut self.file
    }

    fn insert_node_impl(
        &mut self,
        node: &NodeData,
        incoming: &[(NodeId, u32)],
    ) -> StorageResult<()> {
        // Insertion next to the most neighbors approximates "insert at
        // the record's traversal position" without a file rewrite.
        let needed = crate::file::record_len(node);
        let page = match select_page_by_neighbors(&self.file, &node.neighbors(), needed)? {
            Some(p) => p,
            None => match common::any_page_with_space(&self.file, needed)? {
                Some(p) => p,
                None => self.file.allocate_page()?,
            },
        };
        insert_with_overflow_split(&mut self.file, page, node, &|_, _| 1, Partitioner::RatioCut)?;
        patch_neighbors_on_insert(&mut self.file, node, incoming)
    }

    fn delete_node_impl(&mut self, id: NodeId) -> StorageResult<Option<DeletedNode>> {
        let Some((page, data)) = self.file.find(id)? else {
            return Ok(None);
        };
        let incoming = patch_neighbors_on_delete(&mut self.file, &data)?;
        self.file.remove_from(page, id)?;
        let candidates = crate::pag::pages_of_nbrs(&self.file, &data)?;
        merge_on_underflow(&mut self.file, page, &candidates)?;
        Ok(Some(DeletedNode { data, incoming }))
    }

    fn insert_edge_impl(&mut self, from: NodeId, to: NodeId, cost: u32) -> StorageResult<bool> {
        let Some((pf, mut f_rec)) = self.file.find(from)? else {
            return Ok(false);
        };
        let Some((pt, mut t_rec)) = self.file.find(to)? else {
            return Ok(false);
        };
        if f_rec.successors.iter().any(|e| e.to == to) {
            return Ok(false);
        }
        f_rec.successors.push(ccam_graph::EdgeTo { to, cost });
        write_back(&mut self.file, pf, &f_rec)?;
        t_rec.predecessors.push(from);
        write_back(&mut self.file, pt, &t_rec)?;
        Ok(true)
    }

    fn delete_edge_impl(&mut self, from: NodeId, to: NodeId) -> StorageResult<Option<u32>> {
        let Some((pf, mut f_rec)) = self.file.find(from)? else {
            return Ok(None);
        };
        let Some(pos) = f_rec.successors.iter().position(|e| e.to == to) else {
            return Ok(None);
        };
        let cost = f_rec.successors[pos].cost;
        f_rec.successors.remove(pos);
        write_back(&mut self.file, pf, &f_rec)?;
        if let Some((pt, mut t_rec)) = self.file.find(to)? {
            t_rec.predecessors.retain(|&p| p != from);
            write_back(&mut self.file, pt, &t_rec)?;
        }
        Ok(Some(cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::generators::{grid_network, path_network};

    fn no_weights() -> HashMap<(NodeId, NodeId), u64> {
        HashMap::new()
    }

    #[test]
    fn create_stores_everything_for_all_orders() {
        let net = grid_network(7, 7, 1.0);
        for order in [
            TraversalOrder::DepthFirst,
            TraversalOrder::BreadthFirst,
            TraversalOrder::WeightedDepthFirst,
        ] {
            let am = TopoAm::create(&net, 512, order, None, &no_weights()).unwrap();
            assert_eq!(am.file().len(), 49, "{order:?}");
            for id in net.node_ids() {
                assert!(am.find(id).unwrap().is_some(), "{order:?} {id:?}");
            }
        }
    }

    #[test]
    fn dfs_on_a_path_is_near_perfect() {
        // A directed path traversed depth-first packs consecutive nodes
        // together: CRR should be very high.
        let net = path_network(40);
        let am = TopoAm::create(
            &net,
            512,
            TraversalOrder::DepthFirst,
            Some(net.node_ids()[0]),
            &no_weights(),
        )
        .unwrap();
        let crr = am.crr().unwrap();
        assert!(crr > 0.8, "DFS path CRR {crr:.3}");
    }

    #[test]
    fn dfs_beats_bfs_on_grids() {
        // The paper's Figure 5 ordering: DFS-AM above BFS-AM.
        let net = grid_network(12, 12, 1.0);
        let dfs =
            TopoAm::create(&net, 1024, TraversalOrder::DepthFirst, None, &no_weights()).unwrap();
        let bfs = TopoAm::create(
            &net,
            1024,
            TraversalOrder::BreadthFirst,
            None,
            &no_weights(),
        )
        .unwrap();
        let (c_dfs, c_bfs) = (dfs.crr().unwrap(), bfs.crr().unwrap());
        assert!(
            c_dfs > c_bfs,
            "DFS {c_dfs:.3} should beat BFS {c_bfs:.3} on a grid"
        );
    }

    #[test]
    fn wdfs_follows_heavy_edges() {
        // A path with a hot middle edge: WDFS keeps hot pairs together.
        let net = path_network(30);
        let ids = net.node_ids();
        // Sort ids by x to get travel order (path ids are z-orders of (i,0)).
        let mut ordered: Vec<NodeId> = ids.clone();
        ordered.sort_by_key(|&id| net.node(id).unwrap().x);
        let mut weights = HashMap::new();
        for w in ordered.windows(2).step_by(2) {
            weights.insert((w[0], w[1]), 500u64);
        }
        let am = TopoAm::create(
            &net,
            256,
            TraversalOrder::WeightedDepthFirst,
            Some(ordered[0]),
            &weights,
        )
        .unwrap();
        let wcrr = am.wcrr(&weights).unwrap();
        assert!(wcrr > 0.6, "WDFS WCRR {wcrrr:.3}", wcrrr = wcrr);
    }

    #[test]
    fn traversal_covers_disconnected_networks() {
        let mut net = grid_network(3, 3, 1.0);
        net.add_node(NodeId(1 << 40), 9999, 9999, vec![]);
        let am =
            TopoAm::create(&net, 512, TraversalOrder::BreadthFirst, None, &no_weights()).unwrap();
        assert_eq!(am.file().len(), 10);
        assert!(am.find(NodeId(1 << 40)).unwrap().is_some());
    }

    #[test]
    fn maintenance_roundtrip() {
        let net = grid_network(5, 5, 1.0);
        let mut am =
            TopoAm::create(&net, 512, TraversalOrder::DepthFirst, None, &no_weights()).unwrap();
        let victim = net.node_ids()[7];
        let del = am.delete_node(victim).unwrap().unwrap();
        assert!(am.find(victim).unwrap().is_none());
        am.insert_node(&del.data, &del.incoming).unwrap();
        assert_eq!(am.find(victim).unwrap().unwrap(), del.data);
    }
}
