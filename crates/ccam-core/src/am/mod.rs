//! The access-method interface and its four implementations.
//!
//! "Aggregate queries on networks and the management of network data
//! require the efficient support of the following set of operations:
//! Create(), Find(), Insert(), Delete(), Get-A-successor() and
//! Get-successors()." (paper §1.2)
//!
//! * [`Ccam`] — connectivity clustering via graph partitioning (the
//!   paper's contribution; CCAM-S static create, CCAM-D incremental),
//! * [`TopoAm`] — topological-ordering files generalised to graphs:
//!   DFS-AM, BFS-AM and WDFS-AM,
//! * [`GridAm`] — spatial-proximity clustering with the Grid File.
//!
//! All implementations share one [`NetworkFile`] layout (slotted pages +
//! B⁺-tree index) and the same maintenance plumbing in [`common`]; they
//! differ exactly where the paper says they do — in how nodes are
//! assigned to pages at `Create()` and on updates.

pub mod ccam;
pub mod common;
pub mod gridam;
pub mod topo;

use std::collections::HashMap;
use std::sync::Arc;

use ccam_graph::{NodeData, NodeId};
use ccam_storage::{IoStats, MemPageStore, PageStore, StorageResult};

use crate::file::{Degraded, NetworkFile};

pub use ccam::{Ccam, CcamBuilder};
pub use common::DeletedNode;
pub use gridam::GridAm;
pub use topo::{TopoAm, TraversalOrder};

/// The network access-method operations of paper §1.2.
///
/// Implementations expose their data file via [`AccessMethod::file`];
/// the search operations have shared default implementations because the
/// paper defines them identically for every method (only the page
/// *placement* differs).
pub trait AccessMethod<S: PageStore = MemPageStore> {
    /// Display name used in experiment output ("CCAM-S", "DFS-AM", ...).
    fn name(&self) -> &str;

    /// The underlying data file.
    fn file(&self) -> &NetworkFile<S>;

    /// Mutable access to the data file.
    fn file_mut(&mut self) -> &mut NetworkFile<S>;

    // -- search operations ---------------------------------------------------
    //
    // Every entry point opens an operation span on the shared [`IoStats`].
    // Spans are no-ops unless profiling was enabled via
    // [`IoStats::set_profiling`]; nested calls (e.g. `get_successors` →
    // `find`) fold into the outermost span, so each public operation yields
    // exactly one [`ccam_storage::OpProfile`].

    /// `Find()`: retrieve the record of a given node-id via the secondary
    /// index (one counted data-page access on a cold buffer).
    fn find(&self, id: NodeId) -> StorageResult<Option<NodeData>> {
        let _span = self.stats().span("find");
        Ok(self.file().find(id)?.map(|(_, rec)| rec))
    }

    /// `Get-A-successor()`: retrieve the successor `to` of a node already
    /// in the buffer. "The buffered data-page should be searched first.
    /// If the desired successor node is not in the buffer, then a Find()
    /// operation is needed" (§2.3).
    fn get_a_successor(&self, _from: NodeId, to: NodeId) -> StorageResult<Option<NodeData>> {
        let _span = self.stats().span("get_a_successor");
        if let Some((_, rec)) = self.file().find_in_buffer(to)? {
            return Ok(Some(rec));
        }
        self.find(to)
    }

    /// `Get-successors()`: retrieve the records of all successors of
    /// `id`. Successors co-located with `id` (or on any page already
    /// buffered) cost no additional I/O (§2.3).
    fn get_successors(&self, id: NodeId) -> StorageResult<Vec<NodeData>> {
        let _span = self.stats().span("get_successors");
        let Some((_, rec)) = self.file().find(id)? else {
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(rec.successors.len());
        for e in &rec.successors {
            // Buffered pages first; Find() only on a miss.
            let succ = match self.file().find_in_buffer(e.to)? {
                Some((_, s)) => Some(s),
                None => self.find(e.to)?,
            };
            if let Some(s) = succ {
                out.push(s);
            }
        }
        Ok(out)
    }

    /// `Get-successors()` that degrades instead of aborting: successors
    /// on quarantined (checksum-failed) pages are skipped and the pages
    /// reported in [`Degraded::skipped`], so a partially corrupted file
    /// still answers with everything readable. See
    /// [`NetworkFile::find_degraded`] for the skip semantics.
    fn get_successors_degraded(&self, id: NodeId) -> StorageResult<Degraded<Vec<NodeData>>> {
        let _span = self.stats().span("get_successors_degraded");
        let src = self.file().find_degraded(id)?;
        let mut skipped = src.skipped;
        let Some(rec) = src.value else {
            return Ok(Degraded {
                value: Vec::new(),
                skipped,
            });
        };
        let mut out = Vec::with_capacity(rec.successors.len());
        for e in &rec.successors {
            let d = self.file().find_degraded(e.to)?;
            for p in d.skipped {
                if !skipped.contains(&p) {
                    skipped.push(p);
                }
            }
            if let Some(s) = d.value {
                out.push(s);
            }
        }
        Ok(Degraded {
            value: out,
            skipped,
        })
    }

    // -- maintenance operations -----------------------------------------------

    /// `Insert()` with a node argument: store `node`'s record and patch
    /// the successor/predecessor lists of its neighbors. `incoming`
    /// provides the costs of edges *into* the new node (predecessor →
    /// node), matching `node.predecessors`.
    fn insert_node(&mut self, node: &NodeData, incoming: &[(NodeId, u32)]) -> StorageResult<()> {
        let _span = self.stats().span("insert_node");
        self.insert_node_impl(node, incoming)
    }

    /// Method-specific body of [`AccessMethod::insert_node`]. Callers use
    /// `insert_node`, which wraps this in an operation span.
    fn insert_node_impl(
        &mut self,
        node: &NodeData,
        incoming: &[(NodeId, u32)],
    ) -> StorageResult<()>;

    /// `Delete()` with a node argument: remove the record, patch the
    /// neighbors, and return everything needed to re-insert it.
    fn delete_node(&mut self, id: NodeId) -> StorageResult<Option<DeletedNode>> {
        let _span = self.stats().span("delete_node");
        self.delete_node_impl(id)
    }

    /// Method-specific body of [`AccessMethod::delete_node`].
    fn delete_node_impl(&mut self, id: NodeId) -> StorageResult<Option<DeletedNode>>;

    /// `Insert()` with an edge argument. Returns false when the edge
    /// already exists or an endpoint is missing.
    fn insert_edge(&mut self, from: NodeId, to: NodeId, cost: u32) -> StorageResult<bool> {
        let _span = self.stats().span("insert_edge");
        self.insert_edge_impl(from, to, cost)
    }

    /// Method-specific body of [`AccessMethod::insert_edge`].
    fn insert_edge_impl(&mut self, from: NodeId, to: NodeId, cost: u32) -> StorageResult<bool>;

    /// `Delete()` with an edge argument. Returns the removed cost.
    fn delete_edge(&mut self, from: NodeId, to: NodeId) -> StorageResult<Option<u32>> {
        let _span = self.stats().span("delete_edge");
        self.delete_edge_impl(from, to)
    }

    /// Method-specific body of [`AccessMethod::delete_edge`].
    fn delete_edge_impl(&mut self, from: NodeId, to: NodeId) -> StorageResult<Option<u32>>;

    // -- metrics ---------------------------------------------------------------

    /// The Connectivity Residue Ratio of the current placement.
    fn crr(&self) -> StorageResult<f64> {
        crate::crr::crr(self.file())
    }

    /// Weighted CRR under route-derived edge weights.
    fn wcrr(&self, weights: &HashMap<(NodeId, NodeId), u64>) -> StorageResult<f64> {
        crate::crr::wcrr(self.file(), weights)
    }

    /// Counted I/O statistics of the data file.
    fn stats(&self) -> Arc<IoStats> {
        self.file().stats()
    }
}
