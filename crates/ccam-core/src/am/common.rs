//! Maintenance plumbing shared by every access method.
//!
//! The paper's `Insert()`/`Delete()` procedures (Figures 3 and 4) break
//! into policy-independent pieces implemented here:
//!
//! * neighbor-ranked page selection ("ranking the pages by the number of
//!   neighbors of x located in the page, to choose the page with the
//!   maximum number of neighboring nodes of x which also has space"),
//! * successor/predecessor list patching on the neighbors' pages,
//! * overflow splitting via `cluster-nodes-into-pages()`,
//! * underflow merging with a page from `PagesOfNbrs(x)`.
//!
//! The CCAM access method layers the Table 1 reorganization policies on
//! top; the comparator methods use these pieces with first-order
//! behaviour, which matches how the paper measures all methods under a
//! common update workload (§4.2).

use std::collections::BTreeSet;

use ccam_graph::{EdgeTo, NodeData, NodeId};
use ccam_partition::{cluster_nodes_into_pages, PartGraph, Partitioner};
use ccam_storage::{PageId, PageStore, StorageResult};

use crate::file::NetworkFile;

/// Everything `Delete()` removes, sufficient for a lossless re-insert:
/// the record plus the costs of the incoming edges (which live on the
/// predecessors' records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletedNode {
    /// The removed record.
    pub data: NodeData,
    /// `(predecessor, cost)` of each incoming edge.
    pub incoming: Vec<(NodeId, u32)>,
}

/// Neighbor-ranked page selection for a new record of `needed` bytes
/// with the given neighbor list. Returns the page of `PagesOfNbrs` with
/// the most neighbors of `x` that still has room, or `None` when no
/// neighbor page fits.
///
/// Ranking needs the neighbor pages' contents, so each candidate page is
/// fetched (counted) — this is the `λ` retrieval cost of Table 4.
pub fn select_page_by_neighbors<S: PageStore>(
    file: &NetworkFile<S>,
    neighbors: &[NodeId],
    needed: usize,
) -> StorageResult<Option<PageId>> {
    let pages = crate::pag::pages_of(file, neighbors)?;
    let mut best: Option<(usize, usize, PageId)> = None; // (count, free, page)
    for page in pages {
        if file.is_quarantined(page) {
            continue; // never place records on an unreadable page
        }
        let records = file.read_page_records(page)?;
        let count = records.iter().filter(|r| neighbors.contains(&r.id)).count();
        let free = file.page_free_space(page)?;
        if free < needed + ccam_storage::slotted::SLOT_LEN {
            continue;
        }
        let better = match best {
            None => true,
            Some((bc, bf, _)) => count > bc || (count == bc && free > bf),
        };
        if better {
            best = Some((count, free, page));
        }
    }
    Ok(best.map(|(_, _, p)| p))
}

/// A page with room for `needed` bytes, preferring the fullest such page
/// (best packing), or `None`. Uses the in-memory free-space map (a real
/// system keeps one; no counted I/O).
pub fn any_page_with_space<S: PageStore>(
    file: &NetworkFile<S>,
    needed: usize,
) -> StorageResult<Option<PageId>> {
    let mut best: Option<(usize, PageId)> = None;
    for (page, free) in file.free_space_map_uncounted()? {
        if free >= needed + ccam_storage::slotted::SLOT_LEN {
            // Fullest page = least free space.
            let better = match best {
                None => true,
                Some((bf, _)) => free < bf,
            };
            if better {
                best = Some((free, page));
            }
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Patches neighbor records after inserting node `x`:
/// every successor gains `x` as predecessor, every predecessor gains the
/// incoming edge `p → x`. Fetches each neighbor's page (counted).
pub fn patch_neighbors_on_insert<S: PageStore>(
    file: &mut NetworkFile<S>,
    x: &NodeData,
    incoming: &[(NodeId, u32)],
) -> StorageResult<()> {
    for e in &x.successors {
        let Some((page, mut rec)) = file.find(e.to)? else {
            continue; // dangling reference — neighbor not stored
        };
        if !rec.predecessors.contains(&x.id) {
            rec.predecessors.push(x.id);
            write_back(file, page, &rec)?;
        }
    }
    for &(pred, cost) in incoming {
        let Some((page, mut rec)) = file.find(pred)? else {
            continue;
        };
        if !rec.successors.iter().any(|e| e.to == x.id) {
            rec.successors.push(EdgeTo { to: x.id, cost });
            write_back(file, page, &rec)?;
        }
    }
    Ok(())
}

/// Patches neighbor records after deleting node `x`, collecting the
/// incoming edge costs for [`DeletedNode`].
pub fn patch_neighbors_on_delete<S: PageStore>(
    file: &mut NetworkFile<S>,
    x: &NodeData,
) -> StorageResult<Vec<(NodeId, u32)>> {
    let mut incoming = Vec::new();
    for e in &x.successors {
        let Some((page, mut rec)) = file.find(e.to)? else {
            continue;
        };
        if rec.predecessors.contains(&x.id) {
            rec.predecessors.retain(|&p| p != x.id);
            write_back(file, page, &rec)?;
        }
    }
    for &pred in &x.predecessors {
        let Some((page, mut rec)) = file.find(pred)? else {
            continue;
        };
        if let Some(pos) = rec.successors.iter().position(|e| e.to == x.id) {
            let cost = rec.successors[pos].cost;
            incoming.push((pred, cost));
            rec.successors.remove(pos);
            write_back(file, page, &rec)?;
        }
    }
    Ok(incoming)
}

/// Rewrites a (possibly grown) record, relocating it when its page can
/// no longer hold it. Shrinking always succeeds in place.
pub fn write_back<S: PageStore>(
    file: &mut NetworkFile<S>,
    page: PageId,
    rec: &NodeData,
) -> StorageResult<()> {
    if file.update_in(page, rec)? {
        return Ok(());
    }
    // Grew past the page: move the record (index entry follows).
    file.remove_from(page, rec.id)?;
    let target =
        match select_page_by_neighbors(file, &rec.neighbors(), crate::file::record_len(rec))? {
            Some(p) => Some(p),
            None => any_page_with_space(file, crate::file::record_len(rec))?,
        };
    if let Some(t) = target {
        if file.insert_into(t, rec)? {
            return Ok(());
        }
    }
    let fresh = file.allocate_page()?;
    let ok = file.insert_into(fresh, rec)?;
    debug_assert!(ok, "fresh page fits any valid record");
    Ok(())
}

/// Stores `node` on `page`; on overflow, splits the page's contents
/// (plus the new record) into two or more pages with
/// `cluster-nodes-into-pages()` — the paper's first-order overflow
/// handling ("the overflow page is split into two pages, via the
/// cluster-nodes-into-pages() procedure", §2.4).
pub fn insert_with_overflow_split<S: PageStore>(
    file: &mut NetworkFile<S>,
    page: PageId,
    node: &NodeData,
    weight: &dyn Fn(NodeId, NodeId) -> u64,
    partitioner: Partitioner,
) -> StorageResult<()> {
    if file.insert_into(page, node)? {
        return Ok(());
    }
    // Overflow: recluster page ∪ {node} into fresh groups.
    let mut records = file.read_page_records(page)?;
    for rec in &records {
        file.remove_from(page, rec.id)?;
    }
    records.push(node.clone());
    let sizes: Vec<usize> = records.iter().map(crate::file::clustering_weight).collect();
    let idx_of: std::collections::HashMap<NodeId, usize> =
        records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    let mut edges = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        for e in &rec.successors {
            if let Some(&j) = idx_of.get(&e.to) {
                edges.push((i, j, weight(rec.id, e.to)));
            }
        }
    }
    let graph = PartGraph::new(sizes, &edges);
    let groups = cluster_nodes_into_pages(&graph, file.clustering_budget(), partitioner);
    let mut targets = vec![page];
    for group in groups {
        let target = if let Some(p) = targets.pop() {
            p
        } else {
            file.allocate_page()?
        };
        for &i in &group {
            let ok = file.insert_into(target, &records[i])?;
            debug_assert!(ok, "clustered group must fit");
        }
    }
    Ok(())
}

/// First-order underflow handling for `Delete()`: when `page` is less
/// than half full, merge it with a page from `candidates`
/// (`PagesOfNbrs(x)`, Figure 4) whose contents fit alongside.
pub fn merge_on_underflow<S: PageStore>(
    file: &mut NetworkFile<S>,
    page: PageId,
    candidates: &BTreeSet<PageId>,
) -> StorageResult<()> {
    let used = file.page_used_bytes(page)?;
    if used * 2 >= file.page_size() || used == 0 {
        // No underflow (or the page emptied entirely — free it below).
        if used == 0 {
            file.free_page(page)?;
        }
        return Ok(());
    }
    for &q in candidates {
        if q == page {
            continue;
        }
        let q_records = file.read_page_records(q)?;
        let q_weight: usize = q_records.iter().map(crate::file::clustering_weight).sum();
        let p_records = file.read_page_records(page)?;
        let p_weight: usize = p_records.iter().map(crate::file::clustering_weight).sum();
        if p_weight + q_weight <= file.clustering_budget() {
            // Rewrite `page` from scratch with both pages' records (a
            // fresh slotted layout has no dead-slot overhead, so the
            // byte accounting above is exact), then free q.
            for rec in &p_records {
                file.remove_from(page, rec.id)?;
            }
            for rec in &q_records {
                file.remove_from(q, rec.id)?;
            }
            for rec in p_records.iter().chain(&q_records) {
                let ok = file.insert_into(page, rec)?;
                debug_assert!(ok, "merge fits by construction");
            }
            file.free_page(q)?;
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, succs: &[(u64, u32)], preds: &[u64]) -> NodeData {
        NodeData {
            id: NodeId(id),
            x: id as u32,
            y: 0,
            payload: vec![0; 8],
            successors: succs
                .iter()
                .map(|&(s, c)| EdgeTo {
                    to: NodeId(s),
                    cost: c,
                })
                .collect(),
            predecessors: preds.iter().map(|&p| NodeId(p)).collect(),
        }
    }

    #[test]
    fn page_selection_prefers_more_neighbors() {
        let mut f = NetworkFile::new(512).unwrap();
        let n1 = node(1, &[], &[]);
        let n2 = node(2, &[], &[]);
        let n3 = node(3, &[], &[]);
        let pages = f.bulk_load(vec![vec![&n1, &n2], vec![&n3]]).unwrap();
        // New node with neighbors {1, 2, 3}: page 0 holds two of them.
        let sel = select_page_by_neighbors(&f, &[NodeId(1), NodeId(2), NodeId(3)], 50)
            .unwrap()
            .unwrap();
        assert_eq!(sel, pages[0]);
    }

    #[test]
    fn page_selection_skips_full_pages() {
        let mut f = NetworkFile::new(128).unwrap();
        let n1 = node(1, &[], &[]);
        let big = NodeData {
            payload: vec![0; 60],
            ..node(2, &[], &[])
        };
        let pages = f
            .bulk_load(vec![vec![&n1, &big], vec![&node(3, &[], &[])]])
            .unwrap();
        // Page 0 has both neighbors but no room for 60 more bytes.
        let sel = select_page_by_neighbors(&f, &[NodeId(1), NodeId(2), NodeId(3)], 60)
            .unwrap()
            .unwrap();
        assert_eq!(sel, pages[1]);
    }

    #[test]
    fn patch_on_insert_and_delete_roundtrip() {
        let mut f = NetworkFile::new(512).unwrap();
        let a = node(1, &[], &[]);
        let b = node(2, &[], &[]);
        f.bulk_load(vec![vec![&a, &b]]).unwrap();
        // Insert x with edge x->1 and incoming 2->x (cost 9).
        let x = node(10, &[(1, 5)], &[2]);
        let p = any_page_with_space(&f, crate::file::record_len(&x))
            .unwrap()
            .unwrap();
        f.insert_into(p, &x).unwrap();
        patch_neighbors_on_insert(&mut f, &x, &[(NodeId(2), 9)]).unwrap();
        let (_, rec1) = f.find(NodeId(1)).unwrap().unwrap();
        assert!(rec1.predecessors.contains(&NodeId(10)));
        let (_, rec2) = f.find(NodeId(2)).unwrap().unwrap();
        assert_eq!(
            rec2.successors,
            vec![EdgeTo {
                to: NodeId(10),
                cost: 9
            }]
        );
        // Delete x: lists restored, incoming captured.
        let incoming = patch_neighbors_on_delete(&mut f, &x).unwrap();
        assert_eq!(incoming, vec![(NodeId(2), 9)]);
        let (_, rec1) = f.find(NodeId(1)).unwrap().unwrap();
        assert!(rec1.predecessors.is_empty());
        let (_, rec2) = f.find(NodeId(2)).unwrap().unwrap();
        assert!(rec2.successors.is_empty());
    }

    #[test]
    fn write_back_relocates_grown_records() {
        let mut f = NetworkFile::new(128).unwrap();
        let a = node(1, &[], &[]);
        let filler = NodeData {
            payload: vec![0; 50],
            ..node(2, &[], &[])
        };
        let pages = f.bulk_load(vec![vec![&a, &filler]]).unwrap();
        // Grow node 1 well past the page's remaining space.
        let mut grown = a.clone();
        grown.payload = vec![1; 60];
        write_back(&mut f, pages[0], &grown).unwrap();
        let (page_now, rec) = f.find(NodeId(1)).unwrap().unwrap();
        assert_eq!(rec.payload.len(), 60);
        assert_ne!(page_now, pages[0], "record must have moved");
    }

    #[test]
    fn overflow_split_preserves_records() {
        let mut f = NetworkFile::new(128).unwrap();
        let a = NodeData {
            payload: vec![0; 30],
            ..node(1, &[], &[])
        };
        let b = NodeData {
            payload: vec![0; 30],
            ..node(2, &[], &[])
        };
        let pages = f.bulk_load(vec![vec![&a, &b]]).unwrap();
        let c = NodeData {
            payload: vec![0; 30],
            ..node(3, &[], &[])
        };
        insert_with_overflow_split(&mut f, pages[0], &c, &|_, _| 1, Partitioner::RatioCut).unwrap();
        for i in 1..=3 {
            assert!(f.find(NodeId(i)).unwrap().is_some(), "node {i}");
        }
        assert!(f.num_pages() >= 2);
    }

    #[test]
    fn underflow_merge_consolidates() {
        let mut f = NetworkFile::new(512).unwrap();
        let a = node(1, &[], &[]);
        let b = node(2, &[], &[]);
        let pages = f.bulk_load(vec![vec![&a], vec![&b]]).unwrap();
        let mut candidates = BTreeSet::new();
        candidates.insert(pages[1]);
        merge_on_underflow(&mut f, pages[0], &candidates).unwrap();
        assert_eq!(f.num_pages(), 1);
        assert!(f.find(NodeId(1)).unwrap().is_some());
        assert!(f.find(NodeId(2)).unwrap().is_some());
    }

    #[test]
    fn empty_page_is_freed() {
        let mut f = NetworkFile::new(512).unwrap();
        let a = node(1, &[], &[]);
        let pages = f.bulk_load(vec![vec![&a]]).unwrap();
        f.remove_from(pages[0], NodeId(1)).unwrap();
        merge_on_underflow(&mut f, pages[0], &BTreeSet::new()).unwrap();
        assert_eq!(f.num_pages(), 0);
    }
}
