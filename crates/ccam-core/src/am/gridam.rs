//! The Grid-File access method — spatial-proximity clustering.
//!
//! "Although the Grid file is a proximity-based algorithm, it takes
//! advantage of the correlation between connectivity and spatial
//! proximity" (paper §4.1). Nodes are placed in grid-file buckets by
//! their coordinates; each bucket is one data page. Bucket overflow
//! splits propagate to the pages: the records the grid file moves to a
//! new bucket move to a new page (with their index entries updated).

use std::collections::HashMap;

use ccam_graph::{Network, NodeData, NodeId};
use ccam_index::gridfile::{BucketId, GridFile};
use ccam_storage::{MemPageStore, PageId, PageStore, StorageResult};

use crate::am::common::{
    patch_neighbors_on_delete, patch_neighbors_on_insert, write_back, DeletedNode,
};
use crate::am::AccessMethod;
use crate::file::NetworkFile;

/// The Grid-File access method.
pub struct GridAm<S: PageStore = MemPageStore> {
    file: NetworkFile<S>,
    grid: GridFile<u64>,
    page_of_bucket: HashMap<BucketId, PageId>,
}

impl GridAm<MemPageStore> {
    /// `Create()`: bulk-inserts every node into a grid file whose bucket
    /// capacity equals the page byte budget, then materialises each
    /// bucket as one data page.
    pub fn create(net: &Network, page_size: usize) -> StorageResult<GridAm> {
        let mut file = NetworkFile::new(page_size)?;
        let mut grid: GridFile<u64> = GridFile::new(file.clustering_budget());
        for node in net.nodes() {
            grid.insert(
                node.x,
                node.y,
                crate::file::clustering_weight(node),
                node.id.0,
            );
        }
        // Materialise buckets as pages.
        let mut page_of_bucket = HashMap::new();
        let mut groups: Vec<(BucketId, Vec<&NodeData>)> = Vec::new();
        for (bucket, entries) in grid.buckets() {
            let members: Vec<&NodeData> = entries
                .iter()
                .map(|e| net.node(NodeId(e.value)).expect("grid holds network nodes"))
                .collect();
            groups.push((bucket, members));
        }
        for (bucket, members) in groups {
            let pages = file.bulk_load(vec![members])?;
            page_of_bucket.insert(bucket, pages[0]);
        }
        Ok(GridAm {
            file,
            grid,
            page_of_bucket,
        })
    }
}

impl<S: PageStore> GridAm<S> {
    /// The data page materialising `bucket` (present for every live
    /// bucket).
    fn page_for(&mut self, bucket: BucketId) -> StorageResult<PageId> {
        if let Some(&p) = self.page_of_bucket.get(&bucket) {
            return Ok(p);
        }
        let p = self.file.allocate_page()?;
        self.page_of_bucket.insert(bucket, p);
        Ok(p)
    }

    /// Replays grid-file split events onto the data pages: every moved
    /// record is relocated from the old bucket's page to the new
    /// bucket's page.
    fn apply_splits(
        &mut self,
        events: Vec<ccam_index::gridfile::SplitEvent<u64>>,
    ) -> StorageResult<()> {
        for ev in events {
            let from_page = self.page_for(ev.from)?;
            let to_page = self.page_for(ev.to)?;
            for raw in ev.moved {
                let id = NodeId(raw);
                if let Some(rec) = self.file.remove_from(from_page, id)? {
                    let ok = self.file.insert_into(to_page, &rec)?;
                    debug_assert!(ok, "split target page must fit its bucket");
                }
            }
        }
        Ok(())
    }
}

impl<S: PageStore> AccessMethod<S> for GridAm<S> {
    fn name(&self) -> &str {
        "Grid File"
    }

    fn file(&self) -> &NetworkFile<S> {
        &self.file
    }

    fn file_mut(&mut self) -> &mut NetworkFile<S> {
        &mut self.file
    }

    /// Placement is purely spatial: the grid file picks the bucket for
    /// `(x, y)`; neighbor pages are touched only to patch their lists.
    fn insert_node_impl(
        &mut self,
        node: &NodeData,
        incoming: &[(NodeId, u32)],
    ) -> StorageResult<()> {
        let (bucket, events) = self.grid.insert(
            node.x,
            node.y,
            crate::file::clustering_weight(node),
            node.id.0,
        );
        self.apply_splits(events)?;
        let page = self.page_for(bucket)?;
        if !self.file.insert_into(page, node)? {
            // Unsplittable bucket (coordinate collisions): spill to a
            // fresh page; the index still finds the record.
            let fresh = self.file.allocate_page()?;
            let ok = self.file.insert_into(fresh, node)?;
            debug_assert!(ok);
        }
        patch_neighbors_on_insert(&mut self.file, node, incoming)
    }

    fn delete_node_impl(&mut self, id: NodeId) -> StorageResult<Option<DeletedNode>> {
        let Some((page, data)) = self.file.find(id)? else {
            return Ok(None);
        };
        self.grid.remove(data.x, data.y, id.0);
        let incoming = patch_neighbors_on_delete(&mut self.file, &data)?;
        self.file.remove_from(page, id)?;
        // Merging pages would desynchronise the bucket ↔ page mapping;
        // like the grid file itself (and the paper's §4.2 measurement
        // protocol) underflow is tolerated — deliberately no
        // `merge_on_underflow` here.
        Ok(Some(DeletedNode { data, incoming }))
    }

    fn insert_edge_impl(&mut self, from: NodeId, to: NodeId, cost: u32) -> StorageResult<bool> {
        let Some((pf, mut f_rec)) = self.file.find(from)? else {
            return Ok(false);
        };
        let Some((pt, mut t_rec)) = self.file.find(to)? else {
            return Ok(false);
        };
        if f_rec.successors.iter().any(|e| e.to == to) {
            return Ok(false);
        }
        f_rec.successors.push(ccam_graph::EdgeTo { to, cost });
        write_back(&mut self.file, pf, &f_rec)?;
        t_rec.predecessors.push(from);
        write_back(&mut self.file, pt, &t_rec)?;
        Ok(true)
    }

    fn delete_edge_impl(&mut self, from: NodeId, to: NodeId) -> StorageResult<Option<u32>> {
        let Some((pf, mut f_rec)) = self.file.find(from)? else {
            return Ok(None);
        };
        let Some(pos) = f_rec.successors.iter().position(|e| e.to == to) else {
            return Ok(None);
        };
        let cost = f_rec.successors[pos].cost;
        f_rec.successors.remove(pos);
        write_back(&mut self.file, pf, &f_rec)?;
        if let Some((pt, mut t_rec)) = self.file.find(to)? {
            t_rec.predecessors.retain(|&p| p != from);
            write_back(&mut self.file, pt, &t_rec)?;
        }
        Ok(Some(cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::generators::grid_network;

    #[test]
    fn create_stores_every_node() {
        let net = grid_network(8, 8, 1.0);
        let am = GridAm::create(&net, 512).unwrap();
        assert_eq!(am.file().len(), 64);
        for id in net.node_ids() {
            assert_eq!(am.find(id).unwrap().unwrap(), *net.node(id).unwrap());
        }
    }

    #[test]
    fn proximity_clustering_gives_positive_crr_on_road_grids() {
        let net = grid_network(10, 10, 1.0);
        let am = GridAm::create(&net, 1024).unwrap();
        let crr = am.crr().unwrap();
        assert!(
            crr > 0.3,
            "grid clustering exploits spatial correlation: {crr:.3}"
        );
    }

    #[test]
    fn buckets_map_to_distinct_pages() {
        let net = grid_network(9, 9, 1.0);
        let am = GridAm::create(&net, 512).unwrap();
        let mut pages: Vec<PageId> = am.page_of_bucket.values().copied().collect();
        pages.sort_unstable();
        let before = pages.len();
        pages.dedup();
        assert_eq!(pages.len(), before, "bucket→page mapping must be 1:1");
        assert_eq!(am.grid.num_buckets(), am.page_of_bucket.len());
    }

    #[test]
    fn insert_splits_propagate_to_pages() {
        let net = grid_network(4, 4, 1.0);
        let mut am = GridAm::create(&net, 512).unwrap();
        // Insert a burst of new nodes in one spatial corner to force
        // bucket splits.
        for i in 0..12u64 {
            let node = NodeData {
                id: NodeId(u64::MAX - i),
                x: 2 + (i as u32 % 3),
                y: 100 + i as u32,
                payload: vec![0; 60],
                successors: vec![],
                predecessors: vec![],
            };
            am.insert_node(&node, &[]).unwrap();
        }
        for i in 0..12u64 {
            assert!(am.find(NodeId(u64::MAX - i)).unwrap().is_some(), "{i}");
        }
        // Original nodes still intact after splits moved records around.
        for id in net.node_ids() {
            assert!(am.find(id).unwrap().is_some());
        }
    }

    #[test]
    fn coordinate_collisions_spill_without_losing_records() {
        // Many nodes at one point: the grid bucket cannot split, so the
        // page spills — every record must stay findable regardless.
        let mut net = ccam_graph::Network::new();
        for i in 0..30u64 {
            net.add_node(NodeId(i), 5, 5, vec![0u8; 40]);
        }
        let mut am = GridAm::create(&ccam_graph::Network::new(), 512).unwrap();
        for node in net.nodes() {
            am.insert_node(node, &[]).unwrap();
        }
        for i in 0..30u64 {
            assert!(am.find(NodeId(i)).unwrap().is_some(), "node {i} lost");
        }
        assert!(am.file().num_pages() >= 3, "spill pages must exist");
    }

    #[test]
    fn delete_and_reinsert() {
        let net = grid_network(5, 5, 1.0);
        let mut am = GridAm::create(&net, 512).unwrap();
        let victim = net.node_ids()[10];
        let del = am.delete_node(victim).unwrap().unwrap();
        assert!(am.find(victim).unwrap().is_none());
        am.insert_node(&del.data, &del.incoming).unwrap();
        assert_eq!(am.find(victim).unwrap().unwrap(), del.data);
        // Grid point query agrees with the file.
        let hits = am.grid.point_query(del.data.x, del.data.y);
        assert!(hits.iter().any(|e| e.value == victim.0));
    }
}
