//! Reorganization policies (paper Table 1 and §2.4).
//!
//! Maintenance operations (`Insert`, `Delete`) change connectivity and
//! can make the page clustering obsolete. Each policy chooses how much
//! of the file to recluster around the update:
//!
//! | policy | node argument `x` | edge argument `(u,v)` |
//! |--------|-------------------|------------------------|
//! | first order  | none (only overflow/underflow) | none |
//! | second order | `{Page(x)} ∪ PagesOfNbrs(x)` | `{Page(u), Page(v)}` |
//! | higher order | second order ∪ `NbrPages(Page(x))` | `{Page(u),Page(v)} ∪ NbrPages(Page(u)) ∪ NbrPages(Page(v))` |
//!
//! "The second order policies are designed to avoid additional I/O
//! overhead in reorganization" — they touch only pages the update must
//! read anyway. Reorganisation itself re-runs
//! `cluster-nodes-into-pages()` on the sub-network stored in the chosen
//! pages and rewrites them.

use std::collections::{BTreeSet, HashMap};

use ccam_graph::{NodeData, NodeId};
use ccam_partition::{cluster_nodes_into_pages, PartGraph, Partitioner};
use ccam_storage::{PageId, PageStore, StorageResult};

use crate::file::NetworkFile;
use crate::pag;

/// The reorganization policies of Table 1. The two "higher order"
/// node-argument variants of the table differ only in whether
/// `PagesOfNbrs(x)` or `NbrPages(Page(x))` seeds the set; this
/// implementation uses variant 1 (both neighborhoods), the one the
/// paper's Figure 7 experiment evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorgPolicy {
    /// Avoid or delay reorganization: only overflow splits and underflow
    /// merges.
    FirstOrder,
    /// Reorganize the pages the update must touch anyway.
    SecondOrder,
    /// Also reorganize the PAG neighbors of the updated page.
    HigherOrder,
    /// The paper's delayed variant: "a lazy or delayed reorganization
    /// policy may reorganize NbrPages(P) after a certain number of
    /// updates to page P" (§2.4). Behaves like first order on every
    /// update, then reorganizes `{P} ∪ NbrPages(P)` once `P` has
    /// absorbed `every` updates.
    Lazy {
        /// Updates to one page between reorganizations.
        every: u32,
    },
}

impl ReorgPolicy {
    /// Human-readable name used by the experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ReorgPolicy::FirstOrder => "first-order",
            ReorgPolicy::SecondOrder => "second-order",
            ReorgPolicy::HigherOrder => "higher-order",
            ReorgPolicy::Lazy { .. } => "lazy",
        }
    }
}

/// Table 1, node-argument column: the page set to reorganize after
/// `Insert(x)` / `Delete(x)`. `page_of_x` is the page selected for /
/// containing `x`; `neighbors` is `x`'s neighbor list.
pub fn pages_for_node_update<S: PageStore>(
    file: &NetworkFile<S>,
    page_of_x: PageId,
    neighbors: &[NodeId],
    policy: ReorgPolicy,
) -> StorageResult<BTreeSet<PageId>> {
    let mut set = BTreeSet::new();
    match policy {
        ReorgPolicy::FirstOrder | ReorgPolicy::Lazy { .. } => {}
        ReorgPolicy::SecondOrder => {
            set.insert(page_of_x);
            set.extend(pag::pages_of(file, neighbors)?);
        }
        ReorgPolicy::HigherOrder => {
            set.insert(page_of_x);
            set.extend(pag::pages_of(file, neighbors)?);
            set.extend(pag::nbr_pages(file, page_of_x)?);
        }
    }
    Ok(set)
}

/// The page set a *triggered* lazy reorganization covers:
/// `{P} ∪ NbrPages(P)` (paper §2.4).
pub fn pages_for_lazy_trigger<S: PageStore>(
    file: &NetworkFile<S>,
    page: PageId,
) -> StorageResult<BTreeSet<PageId>> {
    let mut set = pag::nbr_pages(file, page)?;
    set.insert(page);
    Ok(set)
}

/// Table 1, edge-argument column: the page set after `Insert(u,v)` /
/// `Delete(u,v)`.
pub fn pages_for_edge_update<S: PageStore>(
    file: &NetworkFile<S>,
    page_u: PageId,
    page_v: PageId,
    policy: ReorgPolicy,
) -> StorageResult<BTreeSet<PageId>> {
    let mut set = BTreeSet::new();
    match policy {
        ReorgPolicy::FirstOrder | ReorgPolicy::Lazy { .. } => {}
        ReorgPolicy::SecondOrder => {
            set.insert(page_u);
            set.insert(page_v);
        }
        ReorgPolicy::HigherOrder => {
            set.insert(page_u);
            set.insert(page_v);
            set.extend(pag::nbr_pages(file, page_u)?);
            set.extend(pag::nbr_pages(file, page_v)?);
        }
    }
    Ok(set)
}

/// Reclusters the sub-network stored in `pages` with
/// `cluster-nodes-into-pages()` and rewrites those pages (paper §2.4).
///
/// `weight` supplies the WCRR edge weights (return 1 for uniform CRR).
/// Page ids are recycled: surplus pages are freed, extra pages are
/// allocated, and every affected index entry is refreshed.
///
/// Atomicity contract: every page rewrite, allocation, free and index
/// update goes through [`NetworkFile`] — never the store directly — so
/// the whole reorganization stays buffered until the access method's
/// surrounding transaction commits it as one WAL batch (or rolls it
/// back via [`NetworkFile::abort`]). Nothing in here may flush.
pub fn reorganize_pages<S: PageStore>(
    file: &mut NetworkFile<S>,
    pages: &BTreeSet<PageId>,
    weight: &dyn Fn(NodeId, NodeId) -> u64,
    partitioner: Partitioner,
) -> StorageResult<()> {
    if pages.is_empty() {
        return Ok(());
    }
    // 1. Pull every record out of the affected pages (counted reads).
    let mut records: Vec<NodeData> = Vec::new();
    for &p in pages {
        records.extend(file.read_page_records(p)?);
    }
    if records.is_empty() {
        return Ok(());
    }

    // 2. Build the sub-network graph: edges with both endpoints inside.
    let idx_of: HashMap<NodeId, usize> =
        records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    let sizes: Vec<usize> = records.iter().map(crate::file::clustering_weight).collect();
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        for e in &rec.successors {
            if let Some(&j) = idx_of.get(&e.to) {
                edges.push((i, j, weight(rec.id, e.to)));
            }
        }
    }
    let graph = PartGraph::new(sizes, &edges);

    // 3. Recluster within the page byte budget.
    let groups = cluster_nodes_into_pages(&graph, file.clustering_budget(), partitioner);

    // 4. Rewrite: empty the original pages, then refill group by group.
    for &p in pages {
        for rec in file.read_page_records(p)? {
            file.remove_from(p, rec.id)?;
        }
    }
    let mut free_pages: Vec<PageId> = pages.iter().copied().collect();
    for group in groups {
        let page = match free_pages.pop() {
            Some(p) => p,
            None => file.allocate_page()?,
        };
        for &i in &group {
            let ok = file.insert_into(page, &records[i])?;
            debug_assert!(ok, "clustered group must fit its page");
        }
    }
    for p in free_pages {
        file.free_page(p)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::EdgeTo;

    fn node(id: u64, succs: &[u64], preds: &[u64]) -> NodeData {
        NodeData {
            id: NodeId(id),
            x: id as u32,
            y: 0,
            payload: vec![0; 8],
            successors: succs
                .iter()
                .map(|&s| EdgeTo {
                    to: NodeId(s),
                    cost: 1,
                })
                .collect(),
            predecessors: preds.iter().map(|&p| NodeId(p)).collect(),
        }
    }

    /// A 6-node path split badly across 3 pages: {1,4}, {2,5}, {3,6}.
    fn badly_clustered() -> (NetworkFile, Vec<PageId>, Vec<NodeData>) {
        let mut f = NetworkFile::new(256).unwrap();
        let nodes: Vec<NodeData> = (1..=6)
            .map(|i| {
                let succ = if i < 6 { vec![i + 1] } else { vec![] };
                let pred = if i > 1 { vec![i - 1] } else { vec![] };
                node(i, &succ, &pred)
            })
            .collect();
        let pages = f
            .bulk_load(vec![
                vec![&nodes[0], &nodes[3]],
                vec![&nodes[1], &nodes[4]],
                vec![&nodes[2], &nodes[5]],
            ])
            .unwrap();
        (f, pages, nodes)
    }

    #[test]
    fn policy_page_sets_grow_with_order() {
        let (f, pages, nodes) = badly_clustered();
        let nbrs = nodes[1].neighbors(); // node 2: neighbors 1 and 3
        let first = pages_for_node_update(&f, pages[1], &nbrs, ReorgPolicy::FirstOrder).unwrap();
        let second = pages_for_node_update(&f, pages[1], &nbrs, ReorgPolicy::SecondOrder).unwrap();
        let higher = pages_for_node_update(&f, pages[1], &nbrs, ReorgPolicy::HigherOrder).unwrap();
        assert!(first.is_empty());
        assert!(second.contains(&pages[1]));
        assert!(second.len() >= 2);
        assert!(higher.is_superset(&second));
    }

    #[test]
    fn edge_policy_page_sets() {
        let (f, pages, _) = badly_clustered();
        let second =
            pages_for_edge_update(&f, pages[0], pages[2], ReorgPolicy::SecondOrder).unwrap();
        assert_eq!(
            second.iter().copied().collect::<Vec<_>>(),
            vec![pages[0], pages[2]]
        );
        let higher =
            pages_for_edge_update(&f, pages[0], pages[2], ReorgPolicy::HigherOrder).unwrap();
        assert!(higher.is_superset(&second));
        assert!(higher.len() >= second.len());
    }

    #[test]
    fn lazy_trigger_covers_page_and_pag_neighbors() {
        let (f, pages, _) = badly_clustered();
        let set = pages_for_lazy_trigger(&f, pages[1]).unwrap();
        assert!(set.contains(&pages[1]), "P itself");
        // The 1-4 / 2-5 / 3-6 placement connects every page to both others.
        assert!(
            set.contains(&pages[0]) && set.contains(&pages[2]),
            "NbrPages(P)"
        );
        // Lazy produces no immediate page set through the per-update path.
        let nothing =
            pages_for_node_update(&f, pages[1], &[NodeId(1)], ReorgPolicy::Lazy { every: 4 })
                .unwrap();
        assert!(nothing.is_empty());
    }

    #[test]
    fn reorganize_improves_crr() {
        let (mut f, pages, _) = badly_clustered();
        let before = crate::crr::crr(&f).unwrap();
        let set: BTreeSet<PageId> = pages.into_iter().collect();
        reorganize_pages(&mut f, &set, &|_, _| 1, Partitioner::RatioCut).unwrap();
        let after = crate::crr::crr(&f).unwrap();
        assert!(
            after > before,
            "reclustering must improve CRR: {before:.3} -> {after:.3}"
        );
        // All six records still present.
        for i in 1..=6 {
            assert!(f.find(NodeId(i)).unwrap().is_some(), "node {i} lost");
        }
    }

    #[test]
    fn reorganize_respects_weights() {
        let (mut f, pages, _) = badly_clustered();
        let set: BTreeSet<PageId> = pages.into_iter().collect();
        // Make edge (3,4) overwhelmingly hot: it must end up unsplit.
        let weight = |u: NodeId, v: NodeId| {
            if u == NodeId(3) && v == NodeId(4) {
                1000
            } else {
                1
            }
        };
        reorganize_pages(&mut f, &set, &weight, Partitioner::RatioCut).unwrap();
        let p3 = f.page_of(NodeId(3)).unwrap();
        let p4 = f.page_of(NodeId(4)).unwrap();
        assert_eq!(p3, p4, "hot edge must be colocated");
    }

    #[test]
    fn reorganize_empty_set_is_noop() {
        let (mut f, _, _) = badly_clustered();
        let before = f.page_map().unwrap();
        reorganize_pages(&mut f, &BTreeSet::new(), &|_, _| 1, Partitioner::RatioCut).unwrap();
        assert_eq!(f.page_map().unwrap(), before);
    }

    #[test]
    fn reorganize_frees_surplus_pages() {
        // 4 tiny records spread over 4 pages; all fit in 1 page after
        // reclustering.
        let mut f = NetworkFile::new(512).unwrap();
        let nodes: Vec<NodeData> = (1..=4).map(|i| node(i, &[], &[])).collect();
        let pages = f
            .bulk_load(nodes.iter().map(|n| vec![n]).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(f.num_pages(), 4);
        let set: BTreeSet<PageId> = pages.into_iter().collect();
        reorganize_pages(&mut f, &set, &|_, _| 1, Partitioner::RatioCut).unwrap();
        assert_eq!(f.num_pages(), 1, "records should consolidate");
        for i in 1..=4 {
            assert!(f.find(NodeId(i)).unwrap().is_some());
        }
    }
}
