//! The Page Access Graph (paper Definitions 1 and 2).
//!
//! The PAG formalises "the connectivity relationship between data pages":
//! its vertices are data pages, with an edge between two pages whenever
//! some network edge connects records stored on them. The reorganization
//! policies of Table 1 are defined in terms of two PAG neighborhoods:
//!
//! * `PagesOfNbrs(x)` — pages holding neighbors (successors ∪
//!   predecessors) of node `x`,
//! * `NbrPages(P)` — pages adjacent to page `P` in the PAG.
//!
//! Following the paper, the PAG is **not materialised** ("we choose not
//! to materialize the page access graph, since it requires additional
//! redundant data structures", §2.4): both neighborhoods are computed on
//! demand from the records and the secondary index. Identifying the
//! *page ids* costs only index probes; actually reading those pages (for
//! reorganisation) is what incurs the counted data-page I/O.

use std::collections::BTreeSet;

use ccam_graph::{NodeData, NodeId};
use ccam_storage::{PageId, PageStore, StorageResult};

use crate::file::NetworkFile;

/// `PagesOfNbrs(x)` for a node whose record (hence neighbor lists) is
/// already in hand: the set of pages holding `x`'s neighbors. Index
/// probes only; no data-page I/O.
pub fn pages_of_nbrs<S: PageStore>(
    file: &NetworkFile<S>,
    node: &NodeData,
) -> StorageResult<BTreeSet<PageId>> {
    let mut pages = BTreeSet::new();
    for nbr in node.neighbors() {
        if let Some(p) = file.page_of(nbr)? {
            pages.insert(p);
        }
    }
    Ok(pages)
}

/// `PagesOfNbrs` for an explicit neighbor list (used on `Insert(x)` when
/// `x`'s record is not stored yet).
pub fn pages_of<S: PageStore>(
    file: &NetworkFile<S>,
    neighbors: &[NodeId],
) -> StorageResult<BTreeSet<PageId>> {
    let mut pages = BTreeSet::new();
    for &nbr in neighbors {
        if let Some(p) = file.page_of(nbr)? {
            pages.insert(p);
        }
    }
    Ok(pages)
}

/// `NbrPages(P)`: pages adjacent to `P` in the page access graph — the
/// pages (≠ `P`) holding neighbors of any record on `P`.
///
/// Reading `P`'s records is a counted data-page access (the page must be
/// fetched); mapping neighbor ids to pages costs only index probes.
pub fn nbr_pages<S: PageStore>(
    file: &NetworkFile<S>,
    page: PageId,
) -> StorageResult<BTreeSet<PageId>> {
    let mut pages = BTreeSet::new();
    for rec in file.read_page_records(page)? {
        for nbr in rec.neighbors() {
            if let Some(p) = file.page_of(nbr)? {
                if p != page {
                    pages.insert(p);
                }
            }
        }
    }
    Ok(pages)
}

/// Materialises the full PAG as an adjacency list over live pages
/// (diagnostics / tests only — the access methods never call this).
pub fn full_pag<S: PageStore>(
    file: &NetworkFile<S>,
) -> StorageResult<Vec<(PageId, BTreeSet<PageId>)>> {
    let page_map = file.page_map()?;
    let scan = file.scan_uncounted()?;
    let mut pag: Vec<(PageId, BTreeSet<PageId>)> = Vec::new();
    for (page, records) in &scan {
        let mut adj = BTreeSet::new();
        for rec in records {
            for nbr in rec.neighbors() {
                if let Some(&p) = page_map.get(&nbr) {
                    if p != *page {
                        adj.insert(p);
                    }
                }
            }
        }
        pag.push((*page, adj));
    }
    Ok(pag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::EdgeTo;

    /// Three pages: {1, 2} on p0, {3} on p1, {4} on p2.
    /// Edges: 1→3 (p0–p1), 3→4 (p1–p2); 1→2 internal to p0.
    fn setup() -> (NetworkFile, Vec<PageId>) {
        let mut f = NetworkFile::new(512).unwrap();
        let n = |id: u64, succs: &[u64], preds: &[u64]| NodeData {
            id: NodeId(id),
            x: 0,
            y: 0,
            payload: vec![],
            successors: succs
                .iter()
                .map(|&s| EdgeTo {
                    to: NodeId(s),
                    cost: 1,
                })
                .collect(),
            predecessors: preds.iter().map(|&p| NodeId(p)).collect(),
        };
        let nodes = [
            n(1, &[2, 3], &[]),
            n(2, &[], &[1]),
            n(3, &[4], &[1]),
            n(4, &[], &[3]),
        ];
        let groups = vec![vec![&nodes[0], &nodes[1]], vec![&nodes[2]], vec![&nodes[3]]];
        let pages = f.bulk_load(groups).unwrap();
        (f, pages)
    }

    #[test]
    fn pages_of_nbrs_covers_succ_and_pred() {
        let (f, pages) = setup();
        let (_, rec3) = f.find(NodeId(3)).unwrap().unwrap();
        let p = pages_of_nbrs(&f, &rec3).unwrap();
        // Neighbors of 3: 1 (pred, p0) and 4 (succ, p2).
        assert_eq!(p.into_iter().collect::<Vec<_>>(), vec![pages[0], pages[2]]);
    }

    #[test]
    fn nbr_pages_excludes_self() {
        let (f, pages) = setup();
        let nbrs = nbr_pages(&f, pages[1]).unwrap();
        assert_eq!(
            nbrs.into_iter().collect::<Vec<_>>(),
            vec![pages[0], pages[2]]
        );
        // p0's only external connection is to p1 (edge 1->3).
        let nbrs0 = nbr_pages(&f, pages[0]).unwrap();
        assert_eq!(nbrs0.into_iter().collect::<Vec<_>>(), vec![pages[1]]);
    }

    #[test]
    fn full_pag_is_symmetric() {
        let (f, _) = setup();
        let pag = full_pag(&f).unwrap();
        for (p, adj) in &pag {
            for q in adj {
                let back = pag
                    .iter()
                    .find(|(r, _)| r == q)
                    .map(|(_, a)| a.contains(p))
                    .unwrap_or(false);
                assert!(back, "PAG edge {p:?}–{q:?} not symmetric");
            }
        }
    }

    #[test]
    fn missing_neighbors_are_skipped() {
        let (f, _) = setup();
        // A record referencing a node that is not stored anywhere.
        let ghost = NodeData {
            id: NodeId(99),
            x: 0,
            y: 0,
            payload: vec![],
            successors: vec![EdgeTo {
                to: NodeId(12345),
                cost: 1,
            }],
            predecessors: vec![NodeId(1)],
        };
        let pages = pages_of_nbrs(&f, &ghost).unwrap();
        assert_eq!(pages.len(), 1, "only node 1's page exists");
    }
}
