//! Workload traces: a tiny text format for recording and replaying
//! operation sequences against any access method.
//!
//! The paper evaluates access methods by replaying operation mixes
//! (random operations over 50% of the nodes, route sets, insertion
//! streams — §4). A serialisable trace makes such workloads portable:
//! generate once, replay against every method / block size / policy, and
//! diff the I/O. The format is line-oriented:
//!
//! ```text
//! # comments and blank lines are skipped
//! find 42
//! succ 42
//! asucc 42 99          # get-a-successor(from, to)
//! route 1 5 9 13       # find + get-a-successor chain
//! astar 1 200
//! insert-edge 1 7 30   # from to cost
//! delete-edge 1 7
//! delete-node 9
//! reinsert-node 9      # restore the most recent delete of node 9
//! ```

use std::collections::HashMap;
use std::fmt;

use ccam_graph::NodeId;
use ccam_storage::{PageStore, StorageResult};

use crate::am::{AccessMethod, DeletedNode};
use crate::query::route::evaluate_path;
use crate::query::search::a_star;

/// One trace operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `Find(node)`.
    Find(NodeId),
    /// `Get-successors(node)`.
    Successors(NodeId),
    /// `Get-A-successor(from, to)`.
    ASuccessor(NodeId, NodeId),
    /// Route evaluation over the node sequence.
    Route(Vec<NodeId>),
    /// A* search.
    AStar(NodeId, NodeId),
    /// `Insert(edge)`.
    InsertEdge(NodeId, NodeId, u32),
    /// `Delete(edge)`.
    DeleteEdge(NodeId, NodeId),
    /// `Delete(node)` (the replay engine stashes the record).
    DeleteNode(NodeId),
    /// Re-insert the most recently deleted copy of the node.
    ReinsertNode(NodeId),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Find(n) => write!(f, "find {}", n.0),
            Op::Successors(n) => write!(f, "succ {}", n.0),
            Op::ASuccessor(a, b) => write!(f, "asucc {} {}", a.0, b.0),
            Op::Route(nodes) => {
                write!(f, "route")?;
                for n in nodes {
                    write!(f, " {}", n.0)?;
                }
                Ok(())
            }
            Op::AStar(a, b) => write!(f, "astar {} {}", a.0, b.0),
            Op::InsertEdge(a, b, c) => write!(f, "insert-edge {} {} {c}", a.0, b.0),
            Op::DeleteEdge(a, b) => write!(f, "delete-edge {} {}", a.0, b.0),
            Op::DeleteNode(n) => write!(f, "delete-node {}", n.0),
            Op::ReinsertNode(n) => write!(f, "reinsert-node {}", n.0),
        }
    }
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a trace from its text form.
pub fn parse_trace(text: &str) -> Result<Vec<Op>, ParseError> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().expect("non-empty line");
        let args: Vec<&str> = parts.collect();
        let err = |message: String| ParseError {
            line: lineno + 1,
            message,
        };
        let node = |s: &str| -> Result<NodeId, ParseError> {
            s.parse::<u64>()
                .map(NodeId)
                .map_err(|_| err(format!("bad node id `{s}`")))
        };
        let need = |n: usize| -> Result<(), ParseError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(format!(
                    "`{cmd}` needs {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        let op = match cmd {
            "find" => {
                need(1)?;
                Op::Find(node(args[0])?)
            }
            "succ" => {
                need(1)?;
                Op::Successors(node(args[0])?)
            }
            "asucc" => {
                need(2)?;
                Op::ASuccessor(node(args[0])?, node(args[1])?)
            }
            "route" => {
                if args.len() < 2 {
                    return Err(err("`route` needs at least two nodes".into()));
                }
                Op::Route(args.iter().map(|s| node(s)).collect::<Result<_, _>>()?)
            }
            "astar" => {
                need(2)?;
                Op::AStar(node(args[0])?, node(args[1])?)
            }
            "insert-edge" => {
                need(3)?;
                let cost = args[2]
                    .parse::<u32>()
                    .map_err(|_| err(format!("bad cost `{}`", args[2])))?;
                Op::InsertEdge(node(args[0])?, node(args[1])?, cost)
            }
            "delete-edge" => {
                need(2)?;
                Op::DeleteEdge(node(args[0])?, node(args[1])?)
            }
            "delete-node" => {
                need(1)?;
                Op::DeleteNode(node(args[0])?)
            }
            "reinsert-node" => {
                need(1)?;
                Op::ReinsertNode(node(args[0])?)
            }
            other => return Err(err(format!("unknown op `{other}`"))),
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Serialises a trace to its text form (inverse of [`parse_trace`]).
pub fn format_trace(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&op.to_string());
        out.push('\n');
    }
    out
}

/// Outcome of replaying one trace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations executed.
    pub executed: usize,
    /// Operations that addressed missing nodes/edges (skipped, counted).
    pub misses: usize,
    /// Total counted data-page reads.
    pub page_reads: u64,
    /// Total counted data-page writes.
    pub page_writes: u64,
    /// Per-op-kind counts, keyed by the op's command word.
    pub per_op: Vec<(String, usize)>,
}

/// Replays `ops` against `am`, counting data-page I/O per the paper's
/// conventions (each operation starts with whatever the previous one left
/// buffered — trace replay measures the *workload*, not isolated ops).
pub fn replay<S: PageStore>(
    am: &mut dyn AccessMethod<S>,
    ops: &[Op],
) -> StorageResult<ReplayStats> {
    let mut stats = ReplayStats::default();
    let mut per_op: HashMap<&'static str, usize> = HashMap::new();
    let mut graveyard: HashMap<NodeId, Vec<DeletedNode>> = HashMap::new();
    let before = am.stats().snapshot();

    for op in ops {
        stats.executed += 1;
        let kind: &'static str = match op {
            Op::Find(n) => {
                if am.find(*n)?.is_none() {
                    stats.misses += 1;
                }
                "find"
            }
            Op::Successors(n) => {
                if am.get_successors(*n)?.is_empty() && am.find(*n)?.is_none() {
                    stats.misses += 1;
                }
                "succ"
            }
            Op::ASuccessor(a, b) => {
                am.find(*a)?;
                if am.get_a_successor(*a, *b)?.is_none() {
                    stats.misses += 1;
                }
                "asucc"
            }
            Op::Route(nodes) => {
                let eval = evaluate_path(am, nodes)?;
                if !eval.complete {
                    stats.misses += 1;
                }
                "route"
            }
            Op::AStar(a, b) => {
                if a_star(am, *a, *b)?.is_none() {
                    stats.misses += 1;
                }
                "astar"
            }
            Op::InsertEdge(a, b, c) => {
                if !am.insert_edge(*a, *b, *c)? {
                    stats.misses += 1;
                }
                "insert-edge"
            }
            Op::DeleteEdge(a, b) => {
                if am.delete_edge(*a, *b)?.is_none() {
                    stats.misses += 1;
                }
                "delete-edge"
            }
            Op::DeleteNode(n) => {
                match am.delete_node(*n)? {
                    Some(del) => graveyard.entry(*n).or_default().push(del),
                    None => stats.misses += 1,
                }
                "delete-node"
            }
            Op::ReinsertNode(n) => {
                match graveyard.get_mut(n).and_then(|v| v.pop()) {
                    Some(del) => am.insert_node(&del.data, &del.incoming)?,
                    None => stats.misses += 1,
                }
                "reinsert-node"
            }
        };
        *per_op.entry(kind).or_insert(0) += 1;
    }

    let delta = am.stats().snapshot().since(&before);
    stats.page_reads = delta.physical_reads;
    stats.page_writes = delta.physical_writes;
    let mut per: Vec<(String, usize)> = per_op
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    per.sort();
    stats.per_op = per;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::CcamBuilder;
    use ccam_graph::generators::{grid_network, zorder_id};

    #[test]
    fn parse_format_roundtrip() {
        let text = "\
# a comment
find 1
succ 2
asucc 2 3
route 1 2 3 4   # inline comment
astar 1 9
insert-edge 1 9 30
delete-edge 1 9
delete-node 4
reinsert-node 4
";
        let ops = parse_trace(text).unwrap();
        assert_eq!(ops.len(), 9);
        let reparsed = parse_trace(&format_trace(&ops)).unwrap();
        assert_eq!(reparsed, ops);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_trace("find 1\nfrobnicate 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = parse_trace("find not-a-number").unwrap_err();
        assert!(e.message.contains("bad node id"));
        let e = parse_trace("asucc 1").unwrap_err();
        assert!(e.message.contains("2 argument"));
        let e = parse_trace("route 1").unwrap_err();
        assert!(e.message.contains("at least two"));
    }

    #[test]
    fn replay_executes_and_counts() {
        let net = grid_network(6, 6, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        let a = zorder_id(0, 0);
        let b = zorder_id(1, 0);
        let c = zorder_id(5, 5);
        let trace = format!(
            "find {}\nsucc {}\nasucc {} {}\nastar {} {}\ndelete-node {}\nreinsert-node {}\n",
            a.0, a.0, a.0, b.0, a.0, c.0, b.0, b.0
        );
        let ops = parse_trace(&trace).unwrap();
        let stats = replay(&mut am, &ops).unwrap();
        assert_eq!(stats.executed, 6);
        assert_eq!(stats.misses, 0);
        assert!(stats.page_reads > 0);
        // The file is intact after the delete/reinsert pair.
        assert_eq!(am.file().len(), 36);
        assert!(am.find(b).unwrap().is_some());
    }

    #[test]
    fn replay_counts_misses_without_failing() {
        let net = grid_network(4, 4, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        let ops = parse_trace("find 999999\ndelete-node 999999\nreinsert-node 5\n").unwrap();
        let stats = replay(&mut am, &ops).unwrap();
        assert_eq!(stats.executed, 3);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn same_trace_cheaper_on_better_clustering() {
        use crate::am::{TopoAm, TraversalOrder};
        use ccam_graph::walks::random_walk_routes;
        use std::collections::HashMap as Map;
        let net = grid_network(10, 10, 1.0);
        // A route-heavy trace: the paper's CRR-sensitive workload. (A
        // full `succ` sweep of every node would be bound by page count,
        // not clustering.)
        let mut text = String::new();
        for r in random_walk_routes(&net, 40, 12, 8) {
            text.push_str(&Op::Route(r.nodes).to_string());
            text.push('\n');
        }
        let ops = parse_trace(&text).unwrap();
        let mut ccam = CcamBuilder::new(512).build_static(&net).unwrap();
        let mut bfs =
            TopoAm::create(&net, 512, TraversalOrder::BreadthFirst, None, &Map::new()).unwrap();
        ccam.file().pool().set_capacity(2).unwrap();
        bfs.file().pool().set_capacity(2).unwrap();
        let s1 = replay(&mut ccam, &ops).unwrap();
        let s2 = replay(&mut bfs, &ops).unwrap();
        assert!(
            s1.page_reads < s2.page_reads,
            "ccam {} vs bfs {}",
            s1.page_reads,
            s2.page_reads
        );
    }
}
