//! CRR / WCRR measurement (paper §1.2).
//!
//! ```text
//! CRR  =  # unsplit edges / # edges                (unsplit: Page(u) == Page(v))
//! WCRR =  Σ w(u,v) over unsplit edges / Σ w(u,v) over all edges
//! ```
//!
//! Both are measured over a data file's *current* record placement via
//! an uncounted scan, so measuring never perturbs the experiment's I/O
//! statistics. Directed edges are counted individually (a two-way street
//! contributes two edges, both unsplit or both split — the ratio is
//! unaffected, matching the paper's per-edge formulation).

use std::collections::HashMap;

use ccam_graph::NodeId;
use ccam_storage::{PageStore, StorageResult};

use crate::file::NetworkFile;

/// Connectivity Residue Ratio of the file's placement. Returns 1.0 for a
/// file with no edges (nothing can be split).
pub fn crr<S: PageStore>(file: &NetworkFile<S>) -> StorageResult<f64> {
    wcrr_with(file, |_, _| 1)
}

/// Weighted CRR with explicit per-edge weights (edges absent from the map
/// carry weight 0 — the paper derives weights from route traversal
/// counts, so untraversed edges do not contribute).
pub fn wcrr<S: PageStore>(
    file: &NetworkFile<S>,
    weights: &HashMap<(NodeId, NodeId), u64>,
) -> StorageResult<f64> {
    wcrr_with(file, |u, v| weights.get(&(u, v)).copied().unwrap_or(0))
}

/// WCRR under an arbitrary weight function.
pub fn wcrr_with<S: PageStore>(
    file: &NetworkFile<S>,
    weight: impl Fn(NodeId, NodeId) -> u64,
) -> StorageResult<f64> {
    let page_map = file.page_map()?;
    let mut total = 0u64;
    let mut unsplit = 0u64;
    for (page, records) in file.scan_uncounted()? {
        for rec in &records {
            for e in &rec.successors {
                let Some(&tp) = page_map.get(&e.to) else {
                    continue; // dangling edge (target not stored)
                };
                let w = weight(rec.id, e.to);
                total += w;
                if tp == page {
                    unsplit += w;
                }
            }
        }
    }
    Ok(if total == 0 {
        1.0
    } else {
        unsplit as f64 / total as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam_graph::{EdgeTo, NodeData};

    fn node(id: u64, succs: &[u64]) -> NodeData {
        NodeData {
            id: NodeId(id),
            x: 0,
            y: 0,
            payload: vec![],
            successors: succs
                .iter()
                .map(|&s| EdgeTo {
                    to: NodeId(s),
                    cost: 1,
                })
                .collect(),
            predecessors: vec![],
        }
    }

    /// Path 1→2→3→4 packed as {1,2} and {3,4}: one of three edges split.
    fn setup() -> NetworkFile {
        let mut f = NetworkFile::new(512).unwrap();
        let nodes = [node(1, &[2]), node(2, &[3]), node(3, &[4]), node(4, &[])];
        f.bulk_load(vec![vec![&nodes[0], &nodes[1]], vec![&nodes[2], &nodes[3]]])
            .unwrap();
        f
    }

    #[test]
    fn crr_counts_unsplit_fraction() {
        let f = setup();
        assert!((crr(&f).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wcrr_weights_edges() {
        let f = setup();
        let mut w = HashMap::new();
        w.insert((NodeId(1), NodeId(2)), 10u64); // unsplit
        w.insert((NodeId(2), NodeId(3)), 30u64); // split
                                                 // Edge 3->4 untraversed: weight 0.
        assert!((wcrr(&f, &w).unwrap() - 10.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_edgeless_file_has_crr_one() {
        let f = NetworkFile::new(512).unwrap();
        assert_eq!(crr(&f).unwrap(), 1.0);
        let mut f = NetworkFile::new(512).unwrap();
        let n = node(1, &[]);
        f.bulk_load(vec![vec![&n]]).unwrap();
        assert_eq!(crr(&f).unwrap(), 1.0);
    }

    #[test]
    fn dangling_edges_ignored() {
        let mut f = NetworkFile::new(512).unwrap();
        let n = node(1, &[999]); // 999 not stored
        f.bulk_load(vec![vec![&n]]).unwrap();
        assert_eq!(crr(&f).unwrap(), 1.0);
    }

    #[test]
    fn perfect_and_worst_placements() {
        let nodes = [node(1, &[2]), node(2, &[1])];
        let mut together = NetworkFile::new(512).unwrap();
        together
            .bulk_load(vec![vec![&nodes[0], &nodes[1]]])
            .unwrap();
        assert_eq!(crr(&together).unwrap(), 1.0);
        let mut apart = NetworkFile::new(512).unwrap();
        apart
            .bulk_load(vec![vec![&nodes[0]], vec![&nodes[1]]])
            .unwrap();
        assert_eq!(crr(&apart).unwrap(), 0.0);
    }
}
