//! Graph search over an access method — the `Get-successors()`
//! consumers: "Get-successors() is used in graph search algorithms like
//! A*" (paper §1.2, citing the IVHS route-planning work \[24\]).
//!
//! Both algorithms expand nodes exclusively through
//! [`AccessMethod::get_successors`], so their I/O profile directly
//! reflects the access method's clustering quality.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use ccam_graph::NodeId;
use ccam_storage::{PageStore, StorageResult};

use crate::am::AccessMethod;

/// A shortest path found by [`dijkstra`] / [`a_star`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Total cost of the path.
    pub cost: u64,
    /// Node sequence from source to goal (inclusive).
    pub path: Vec<NodeId>,
    /// Number of nodes expanded (A* quality diagnostics).
    pub expanded: usize,
}

/// Dijkstra's algorithm from `source` to `goal` over the stored network.
pub fn dijkstra<S: PageStore>(
    am: &dyn AccessMethod<S>,
    source: NodeId,
    goal: NodeId,
) -> StorageResult<Option<SearchResult>> {
    a_star_with(am, source, goal, |_| 0)
}

/// A* with the Euclidean travel-time lower bound used by the road-map
/// generator (`distance / 4`; edge costs are `⌊distance/4⌋ + 1 + noise`,
/// so the heuristic is admissible).
pub fn a_star<S: PageStore>(
    am: &dyn AccessMethod<S>,
    source: NodeId,
    goal: NodeId,
) -> StorageResult<Option<SearchResult>> {
    let Some(goal_rec) = am.find(goal)? else {
        return Ok(None);
    };
    let (gx, gy) = (goal_rec.x as f64, goal_rec.y as f64);
    a_star_with(am, source, goal, move |rec: &ccam_graph::NodeData| {
        let dx = rec.x as f64 - gx;
        let dy = rec.y as f64 - gy;
        ((dx * dx + dy * dy).sqrt() / 4.0) as u64
    })
}

/// A* with a caller-supplied admissible heuristic over node records.
pub fn a_star_with<S: PageStore>(
    am: &dyn AccessMethod<S>,
    source: NodeId,
    goal: NodeId,
    heuristic: impl Fn(&ccam_graph::NodeData) -> u64,
) -> StorageResult<Option<SearchResult>> {
    let Some(start) = am.find(source)? else {
        return Ok(None);
    };
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, NodeId)>> = BinaryHeap::new();
    dist.insert(source, 0);
    heap.push(Reverse((heuristic(&start), 0, source)));
    let mut expanded = 0usize;

    while let Some(Reverse((_f, g, node))) = heap.pop() {
        if dist.get(&node).copied().unwrap_or(u64::MAX) < g {
            continue; // stale entry
        }
        expanded += 1;
        if node == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Ok(Some(SearchResult {
                cost: g,
                path,
                expanded,
            }));
        }
        // One Find() + Get-successors() per expansion: the dominant I/O
        // cost of the query (paper §1.2). The Find() is usually a buffer
        // hit because the expansion order has spatial locality.
        let node_rec = match am.find(node)? {
            Some(r) => r,
            None => continue,
        };
        let succs = am.get_successors(node)?;
        for s in succs {
            let edge = node_rec.successors.iter().find(|e| e.to == s.id);
            let Some(edge) = edge else { continue };
            let ng = g + edge.cost as u64;
            if ng < dist.get(&s.id).copied().unwrap_or(u64::MAX) {
                dist.insert(s.id, ng);
                prev.insert(s.id, node);
                heap.push(Reverse((ng + heuristic(&s), ng, s.id)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::CcamBuilder;
    use ccam_graph::generators::{grid_network, path_network, zorder_id};
    use ccam_graph::Network;

    #[test]
    fn dijkstra_on_a_line() {
        let net = path_network(10);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let r = dijkstra(&am, zorder_id(0, 0), zorder_id(9, 0))
            .unwrap()
            .unwrap();
        assert_eq!(r.cost, 9);
        assert_eq!(r.path.len(), 10);
    }

    #[test]
    fn unreachable_goal_is_none() {
        let net = path_network(5); // one-way: node 4 cannot reach node 0
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        assert!(dijkstra(&am, zorder_id(4, 0), zorder_id(0, 0))
            .unwrap()
            .is_none());
    }

    #[test]
    fn missing_endpoints_are_none() {
        let net = path_network(3);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        use ccam_graph::NodeId;
        assert!(dijkstra(&am, NodeId(12345), zorder_id(0, 0))
            .unwrap()
            .is_none());
        assert!(a_star(&am, zorder_id(0, 0), NodeId(12345))
            .unwrap()
            .is_none());
    }

    #[test]
    fn source_equals_goal() {
        let net = path_network(3);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let r = dijkstra(&am, zorder_id(1, 0), zorder_id(1, 0))
            .unwrap()
            .unwrap();
        assert_eq!(r.cost, 0);
        assert_eq!(r.path, vec![zorder_id(1, 0)]);
    }

    #[test]
    fn a_star_agrees_with_dijkstra_on_cost() {
        let net = grid_network(8, 8, 1.0);
        let am = CcamBuilder::new(1024).build_static(&net).unwrap();
        let (s, g) = (zorder_id(0, 0), zorder_id(7, 7));
        let d = dijkstra(&am, s, g).unwrap().unwrap();
        let a = a_star(&am, s, g).unwrap().unwrap();
        assert_eq!(d.cost, a.cost, "A* must stay optimal");
    }

    #[test]
    fn dijkstra_matches_in_memory_reference() {
        // Cross-check against a plain in-memory Dijkstra on the Network.
        fn reference(net: &Network, s: ccam_graph::NodeId, g: ccam_graph::NodeId) -> Option<u64> {
            use std::cmp::Reverse;
            use std::collections::{BinaryHeap, HashMap};
            let mut dist = HashMap::new();
            let mut heap = BinaryHeap::new();
            dist.insert(s, 0u64);
            heap.push(Reverse((0u64, s)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if v == g {
                    return Some(d);
                }
                if dist.get(&v).copied().unwrap_or(u64::MAX) < d {
                    continue;
                }
                for e in &net.node(v)?.successors {
                    let nd = d + e.cost as u64;
                    if nd < dist.get(&e.to).copied().unwrap_or(u64::MAX) {
                        dist.insert(e.to, nd);
                        heap.push(Reverse((nd, e.to)));
                    }
                }
            }
            None
        }
        let net = grid_network(6, 6, 0.6);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let ids = net.node_ids();
        for (i, &s) in ids.iter().enumerate().step_by(7) {
            let g = ids[(i * 13 + 5) % ids.len()];
            let got = dijkstra(&am, s, g).unwrap().map(|r| r.cost);
            assert_eq!(got, reference(&net, s, g), "{s:?} -> {g:?}");
        }
    }

    #[test]
    fn path_edges_are_real() {
        let net = grid_network(7, 7, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let r = a_star(&am, zorder_id(0, 0), zorder_id(6, 6))
            .unwrap()
            .unwrap();
        for w in r.path.windows(2) {
            let rec = net.node(w[0]).unwrap();
            assert!(rec.successors.iter().any(|e| e.to == w[1]));
        }
    }
}
