//! Aggregate queries beyond single-route evaluation (paper §1.1 and the
//! §5 future-work list: "tour evaluation, location-allocation evaluation
//! etc.").
//!
//! * **Route-unit aggregates** — "several GIS support \[a\] special
//!   datatype of a route-unit which represents a collection of arcs with
//!   common characteristics. ... Processing aggregate queries over
//!   route-units may require the retrieval of all nodes and all edges in
//!   the specified route-units" (§1.1). Think: total ridership over a
//!   bus route, gas volume over a pipeline.
//! * **Tour evaluation** — a route that returns to its origin.
//! * **Location-allocation evaluation** — score candidate facility
//!   locations by total shortest-path cost to a set of demand nodes.

use ccam_graph::walks::Route;
use ccam_graph::NodeId;
use ccam_storage::{PageStore, StorageResult};

use crate::am::AccessMethod;
use crate::query::route::{evaluate_route, RouteEvaluation};
use crate::query::search::dijkstra;

/// Aggregate over one route-unit (a set of directed arcs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteUnitAggregate {
    /// Arcs found in the stored network.
    pub arcs_found: usize,
    /// Arcs referencing missing nodes/edges.
    pub arcs_missing: usize,
    /// Sum of edge costs over found arcs.
    pub total_cost: u64,
    /// Sum of the payload bytes of the distinct nodes touched (stand-in
    /// for "aggregate the attribute data over nodes", §1.1).
    pub node_payload_sum: u64,
    /// Distinct nodes retrieved.
    pub nodes_retrieved: usize,
}

/// Computes the aggregate properties of a route-unit given as directed
/// arcs `(from, to)`. Retrieves every referenced node through the access
/// method (using `Get-A-successor` buffering for arc targets).
pub fn route_unit_aggregate<S: PageStore>(
    am: &dyn AccessMethod<S>,
    arcs: &[(NodeId, NodeId)],
) -> StorageResult<RouteUnitAggregate> {
    Ok(route_unit_aggregate_bounded(am, arcs, &mut || false)?
        .expect("never-cancelling aggregation always completes"))
}

/// [`route_unit_aggregate`] with a cancellation hook for
/// deadline-bounded callers: `cancel` is polled once per arc, and a
/// `true` abandons the aggregation, returning `Ok(None)` (a partial
/// aggregate would be indistinguishable from a complete one — the
/// counts are the answer, so there is nothing useful to salvage).
pub fn route_unit_aggregate_bounded<S: PageStore>(
    am: &dyn AccessMethod<S>,
    arcs: &[(NodeId, NodeId)],
    cancel: &mut dyn FnMut() -> bool,
) -> StorageResult<Option<RouteUnitAggregate>> {
    let mut agg = RouteUnitAggregate::default();
    let mut seen: Vec<NodeId> = Vec::new();
    for &(from, to) in arcs {
        if cancel() {
            return Ok(None);
        }
        let Some(rec) = (if seen.contains(&from) {
            // Already aggregated; still need the edge cost.
            am.get_a_successor(from, from)?
        } else {
            am.find(from)?
        }) else {
            agg.arcs_missing += 1;
            continue;
        };
        let Some(edge) = rec.successors.iter().find(|e| e.to == to) else {
            agg.arcs_missing += 1;
            continue;
        };
        agg.arcs_found += 1;
        agg.total_cost += edge.cost as u64;
        for id in [from, to] {
            if !seen.contains(&id) {
                let node = if id == from {
                    Some(rec.clone())
                } else {
                    am.get_a_successor(from, id)?
                };
                if let Some(node) = node {
                    agg.node_payload_sum += node.payload.iter().map(|&b| b as u64).sum::<u64>();
                    agg.nodes_retrieved += 1;
                    seen.push(id);
                }
            }
        }
    }
    Ok(Some(agg))
}

/// Evaluates a tour: a route whose last node must equal its first.
/// Returns `None` when the node sequence is not a closed tour.
pub fn evaluate_tour<S: PageStore>(
    am: &dyn AccessMethod<S>,
    tour: &Route,
) -> StorageResult<Option<RouteEvaluation>> {
    if tour.nodes.len() < 2 || tour.nodes.first() != tour.nodes.last() {
        return Ok(None);
    }
    Ok(Some(evaluate_route(am, tour)?))
}

/// One candidate's score in a location-allocation evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationScore {
    /// The candidate facility node.
    pub candidate: NodeId,
    /// Sum of shortest-path costs to every reachable demand node.
    pub total_cost: u64,
    /// Demand nodes unreachable from this candidate.
    pub unreachable: usize,
}

/// Location-allocation evaluation: scores each `candidate` facility by
/// the total shortest-path cost of serving all `demands`, best first.
/// Unreachable demands are counted rather than disqualifying (real road
/// networks have one-way pockets); ties break towards fewer unreachable
/// demands, then lower node id.
pub fn location_allocation<S: PageStore>(
    am: &dyn AccessMethod<S>,
    candidates: &[NodeId],
    demands: &[NodeId],
) -> StorageResult<Vec<AllocationScore>> {
    let mut scores = Vec::with_capacity(candidates.len());
    for &c in candidates {
        let mut total = 0u64;
        let mut unreachable = 0usize;
        for &d in demands {
            match dijkstra(am, c, d)? {
                Some(r) => total += r.cost,
                None => unreachable += 1,
            }
        }
        scores.push(AllocationScore {
            candidate: c,
            total_cost: total,
            unreachable,
        });
    }
    scores.sort_by_key(|s| (s.unreachable, s.total_cost, s.candidate));
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::CcamBuilder;
    use ccam_graph::generators::{grid_network, zorder_id};

    #[test]
    fn route_unit_totals() {
        let net = grid_network(4, 1, 1.0); // line of 4 nodes, unit costs
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let arcs = [
            (zorder_id(0, 0), zorder_id(1, 0)),
            (zorder_id(1, 0), zorder_id(2, 0)),
            (zorder_id(2, 0), zorder_id(3, 0)),
        ];
        let agg = route_unit_aggregate(&am, &arcs).unwrap();
        assert_eq!(agg.arcs_found, 3);
        assert_eq!(agg.arcs_missing, 0);
        assert_eq!(agg.total_cost, 3);
        assert_eq!(agg.nodes_retrieved, 4);
    }

    #[test]
    fn route_unit_cancellation_returns_none() {
        let net = grid_network(4, 1, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let arcs = [
            (zorder_id(0, 0), zorder_id(1, 0)),
            (zorder_id(1, 0), zorder_id(2, 0)),
        ];
        let mut polls = 0;
        let mut cancel = || {
            polls += 1;
            polls > 1
        };
        assert!(route_unit_aggregate_bounded(&am, &arcs, &mut cancel)
            .unwrap()
            .is_none());
        let full = route_unit_aggregate_bounded(&am, &arcs, &mut || false)
            .unwrap()
            .unwrap();
        assert_eq!(full, route_unit_aggregate(&am, &arcs).unwrap());
    }

    #[test]
    fn route_unit_tolerates_missing_arcs() {
        let net = grid_network(3, 3, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let arcs = [
            (zorder_id(0, 0), zorder_id(1, 0)),
            (zorder_id(0, 0), zorder_id(2, 2)), // not an edge
            (ccam_graph::NodeId(99999), zorder_id(0, 0)), // missing node
        ];
        let agg = route_unit_aggregate(&am, &arcs).unwrap();
        assert_eq!(agg.arcs_found, 1);
        assert_eq!(agg.arcs_missing, 2);
    }

    #[test]
    fn tour_requires_closure() {
        let net = grid_network(3, 3, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let open = Route {
            nodes: vec![zorder_id(0, 0), zorder_id(1, 0)],
        };
        assert!(evaluate_tour(&am, &open).unwrap().is_none());
        let closed = Route {
            nodes: vec![
                zorder_id(0, 0),
                zorder_id(1, 0),
                zorder_id(1, 1),
                zorder_id(0, 1),
                zorder_id(0, 0),
            ],
        };
        let eval = evaluate_tour(&am, &closed).unwrap().unwrap();
        assert!(eval.complete);
        assert_eq!(eval.total_cost, 4);
        assert_eq!(eval.nodes_visited, 5);
    }

    #[test]
    fn location_allocation_prefers_central_nodes() {
        let net = grid_network(5, 5, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let corner = zorder_id(0, 0);
        let center = zorder_id(2, 2);
        let demands: Vec<_> = [(0u32, 4u32), (4, 0), (4, 4), (0, 0), (2, 2)]
            .iter()
            .map(|&(x, y)| zorder_id(x, y))
            .collect();
        let scores = location_allocation(&am, &[corner, center], &demands).unwrap();
        assert_eq!(scores[0].candidate, center, "center serves demand cheaper");
        assert!(scores[0].total_cost < scores[1].total_cost);
        assert_eq!(scores[0].unreachable, 0);
    }
}
