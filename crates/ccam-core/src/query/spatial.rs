//! Spatial queries over a network file.
//!
//! The paper's §2.1: CCAM's secondary index is a B⁺-tree over the
//! Z-order of the node coordinates, which "can support point and range
//! queries on spatial databases. Other access methods such as R-tree
//! \[11\] and Grid File \[21\], etc. can alternatively be created on top of
//! the data file as secondary indices." This module provides both
//! flavours over one data file:
//!
//! * [`SpatialIndex::RTree`] — a Guttman R-tree over the node points,
//! * [`SpatialIndex::ZOrder`] — Z-order range decomposition over the
//!   existing node-id B⁺-tree *when node ids are Z-order codes* (the
//!   road-map convention): a window query becomes a set of id-range
//!   scans.
//!
//! Retrieving the matching records costs counted data-page accesses like
//! every other query, so the experiments can compare clustering quality
//! for spatial workloads too.

use ccam_graph::{NodeData, NodeId};
use ccam_index::rtree::{RTree, Rect};
use ccam_index::zorder::{z_decode, z_encode};
use ccam_storage::{PageStore, StorageResult};

use crate::file::NetworkFile;

/// A spatial secondary index over the nodes of a data file.
pub enum SpatialIndex {
    /// Guttman R-tree over node coordinates.
    RTree(RTree<u64>),
    /// Z-order interpretation of the node ids themselves (valid when ids
    /// are Morton codes of the coordinates, as in the road-map
    /// generators).
    ZOrder,
}

impl SpatialIndex {
    /// Builds an R-tree index from the file's current contents
    /// (uncounted scan — index construction is not part of query I/O).
    pub fn build_rtree<S: PageStore>(file: &NetworkFile<S>) -> StorageResult<SpatialIndex> {
        let mut tree = RTree::new(16);
        for (_, records) in file.scan_uncounted()? {
            for rec in records {
                tree.insert(Rect::point(rec.x, rec.y), rec.id.0);
            }
        }
        Ok(SpatialIndex::RTree(tree))
    }

    /// The Z-order-id index (no construction needed; the node-id B⁺-tree
    /// *is* the spatial index).
    pub fn zorder() -> SpatialIndex {
        SpatialIndex::ZOrder
    }

    /// Registers a newly inserted node (no-op for Z-order).
    pub fn insert(&mut self, node: &NodeData) {
        if let SpatialIndex::RTree(t) = self {
            t.insert(Rect::point(node.x, node.y), node.id.0);
        }
    }

    /// Unregisters a deleted node (no-op for Z-order).
    pub fn remove(&mut self, node: &NodeData) {
        if let SpatialIndex::RTree(t) = self {
            t.remove(Rect::point(node.x, node.y), &node.id.0);
        }
    }

    /// Node ids inside the window `[x0, x1] × [y0, y1]` (index-only; no
    /// data-page I/O).
    pub fn window_ids<S: PageStore>(
        &self,
        file: &NetworkFile<S>,
        x0: u32,
        y0: u32,
        x1: u32,
        y1: u32,
    ) -> StorageResult<Vec<NodeId>> {
        match self {
            SpatialIndex::RTree(t) => Ok(t
                .window_query(Rect::new(x0, y0, x1, y1))
                .into_iter()
                .map(|&id| NodeId(id))
                .collect()),
            SpatialIndex::ZOrder => {
                // Scan the covering Z-range on the id index and filter by
                // decoded coordinates. The covering range [z(x0,y0),
                // z(x1,y1)] is correct for Morton codes (both coordinates
                // monotone) but loose; the filter restores exactness.
                let lo = z_encode(x0, y0);
                let hi = z_encode(x1, y1);
                let mut out = Vec::new();
                for (id, _) in file.index_range(lo, hi)? {
                    let (x, y) = z_decode(id);
                    if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                        out.push(NodeId(id));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Full records inside the window; fetching their pages is counted
    /// data-page I/O.
    pub fn window_records<S: PageStore>(
        &self,
        file: &NetworkFile<S>,
        x0: u32,
        y0: u32,
        x1: u32,
        y1: u32,
    ) -> StorageResult<Vec<NodeData>> {
        let ids = self.window_ids(file, x0, y0, x1, y1)?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            // Buffered pages first — window members cluster spatially,
            // and on CCAM also by connectivity.
            let rec = match file.find_in_buffer(id)? {
                Some((_, r)) => Some(r),
                None => file.find(id)?.map(|(_, r)| r),
            };
            if let Some(r) = rec {
                out.push(r);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::{AccessMethod, CcamBuilder};
    use ccam_graph::generators::grid_network;

    fn window_brute(net: &ccam_graph::Network, x0: u32, y0: u32, x1: u32, y1: u32) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = net
            .nodes()
            .filter(|n| n.x >= x0 && n.x <= x1 && n.y >= y0 && n.y <= y1)
            .map(|n| n.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn rtree_window_matches_brute_force() {
        let net = grid_network(15, 15, 1.0);
        let am = CcamBuilder::new(1024).build_static(&net).unwrap();
        let idx = SpatialIndex::build_rtree(am.file()).unwrap();
        for (x0, y0, x1, y1) in [
            (0, 0, 14, 14),
            (3, 4, 7, 9),
            (10, 10, 10, 10),
            (20, 20, 30, 30),
        ] {
            let mut got = idx.window_ids(am.file(), x0, y0, x1, y1).unwrap();
            got.sort_unstable();
            assert_eq!(
                got,
                window_brute(&net, x0, y0, x1, y1),
                "{x0},{y0},{x1},{y1}"
            );
        }
    }

    #[test]
    fn zorder_window_matches_brute_force() {
        let net = grid_network(15, 15, 1.0);
        let am = CcamBuilder::new(1024).build_static(&net).unwrap();
        let idx = SpatialIndex::zorder();
        for (x0, y0, x1, y1) in [(0, 0, 14, 14), (3, 4, 7, 9), (5, 5, 5, 5)] {
            let mut got = idx.window_ids(am.file(), x0, y0, x1, y1).unwrap();
            got.sort_unstable();
            assert_eq!(
                got,
                window_brute(&net, x0, y0, x1, y1),
                "{x0},{y0},{x1},{y1}"
            );
        }
    }

    #[test]
    fn window_records_fetch_full_records() {
        let net = grid_network(10, 10, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let idx = SpatialIndex::build_rtree(am.file()).unwrap();
        let recs = idx.window_records(am.file(), 2, 2, 5, 5).unwrap();
        assert_eq!(recs.len(), 16);
        for r in &recs {
            assert_eq!(net.node(r.id).unwrap(), r);
        }
    }

    #[test]
    fn index_tracks_updates() {
        let net = grid_network(8, 8, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        let mut idx = SpatialIndex::build_rtree(am.file()).unwrap();
        let victim = net.node_ids()[20];
        let victim_rec = am.find(victim).unwrap().unwrap();
        let del = am.delete_node(victim).unwrap().unwrap();
        idx.remove(&victim_rec);
        let ids = idx
            .window_ids(
                am.file(),
                victim_rec.x,
                victim_rec.y,
                victim_rec.x,
                victim_rec.y,
            )
            .unwrap();
        assert!(!ids.contains(&victim));
        am.insert_node(&del.data, &del.incoming).unwrap();
        idx.insert(&del.data);
        let ids = idx
            .window_ids(
                am.file(),
                victim_rec.x,
                victim_rec.y,
                victim_rec.x,
                victim_rec.y,
            )
            .unwrap();
        assert!(ids.contains(&victim));
    }
}
