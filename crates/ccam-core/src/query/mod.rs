//! Aggregate queries on networks (paper §1, §2.3 and the future-work
//! queries of §5).
//!
//! * [`route`] — route evaluation: `Find(n₁)` followed by a chain of
//!   `Get-A-successor()` calls, the paper's flagship IVHS query,
//! * [`search`] — graph search over an access method: Dijkstra and A*
//!   (the `Get-successors()` consumers of §1.2),
//! * [`aggregate`] — tour evaluation, route-unit aggregates and
//!   location-allocation evaluation (§5),
//! * [`spatial`] — point/window queries via R-tree or Z-order range
//!   decomposition (§2.1's secondary-index alternatives),
//! * [`traversal`] — graph traversal, reachability balls and transitive
//!   closure (the related-work path computations of §1.2).

pub mod aggregate;
pub mod route;
pub mod search;
pub mod spatial;
pub mod traversal;

pub use aggregate::{
    evaluate_tour, location_allocation, route_unit_aggregate, route_unit_aggregate_bounded,
};
pub use route::{evaluate_route, evaluate_route_bounded, RouteEvaluation};
pub use search::{a_star, dijkstra, SearchResult};
pub use spatial::SpatialIndex;
pub use traversal::{reachable_hops, reachable_within, transitive_closure_from};
