//! Graph traversal and reachability queries.
//!
//! The related work the paper builds on evaluates storage structures by
//! "path computations, such as graph traversal and transitive closure"
//! (§1.2, citing Larson & Deshpande \[18\] and Hua et al. \[12\]). These are
//! the bulk consumers of `Get-successors()`: every expanded node costs
//! one successor retrieval, so total I/O ≈ `(1−α)·|A|` per expansion
//! (Table 3) and clustering quality dominates the bill.
//!
//! * [`reachable_within`] — the travel-time ball ("service area" in GIS:
//!   everything within 10 minutes of the depot),
//! * [`reachable_hops`] — breadth-first reachability with a hop bound,
//! * [`transitive_closure_from`] — full forward closure of one node.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use ccam_graph::NodeId;
use ccam_storage::{PageStore, StorageResult};

use crate::am::AccessMethod;

/// Nodes reachable from `source` with path cost ≤ `budget`, with their
/// distances, in ascending distance order (ties by id). The source is
/// included at distance 0.
pub fn reachable_within<S: PageStore>(
    am: &dyn AccessMethod<S>,
    source: NodeId,
    budget: u64,
) -> StorageResult<Vec<(NodeId, u64)>> {
    if am.find(source)?.is_none() {
        return Ok(Vec::new());
    }
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0);
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, node))) = heap.pop() {
        if dist.get(&node).copied().unwrap_or(u64::MAX) < d {
            continue;
        }
        let Some(rec) = am.find(node)? else { continue };
        let succs = am.get_successors(node)?;
        for s in succs {
            let Some(edge) = rec.successors.iter().find(|e| e.to == s.id) else {
                continue;
            };
            let nd = d + edge.cost as u64;
            if nd <= budget && nd < dist.get(&s.id).copied().unwrap_or(u64::MAX) {
                dist.insert(s.id, nd);
                heap.push(Reverse((nd, s.id)));
            }
        }
    }
    let mut out: Vec<(NodeId, u64)> = dist.into_iter().collect();
    out.sort_by_key(|&(id, d)| (d, id));
    Ok(out)
}

/// Nodes reachable from `source` in at most `max_hops` successor steps
/// (breadth-first), source included at hop 0.
pub fn reachable_hops<S: PageStore>(
    am: &dyn AccessMethod<S>,
    source: NodeId,
    max_hops: usize,
) -> StorageResult<Vec<(NodeId, usize)>> {
    if am.find(source)?.is_none() {
        return Ok(Vec::new());
    }
    let mut seen: HashMap<NodeId, usize> = HashMap::new();
    let mut queue = VecDeque::new();
    seen.insert(source, 0);
    queue.push_back((source, 0usize));
    while let Some((node, hops)) = queue.pop_front() {
        if hops == max_hops {
            continue;
        }
        for s in am.get_successors(node)? {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(s.id) {
                e.insert(hops + 1);
                queue.push_back((s.id, hops + 1));
            }
        }
    }
    let mut out: Vec<(NodeId, usize)> = seen.into_iter().collect();
    out.sort_by_key(|&(id, h)| (h, id));
    Ok(out)
}

/// The forward transitive closure of `source`: every node reachable by
/// following successor edges, in discovery (DFS) order.
pub fn transitive_closure_from<S: PageStore>(
    am: &dyn AccessMethod<S>,
    source: NodeId,
) -> StorageResult<Vec<NodeId>> {
    if am.find(source)?.is_none() {
        return Ok(Vec::new());
    }
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut order = Vec::new();
    let mut stack = vec![source];
    seen.insert(source);
    while let Some(node) = stack.pop() {
        order.push(node);
        let mut succs = am.get_successors(node)?;
        // Deterministic order.
        succs.sort_by_key(|s| s.id);
        for s in succs.into_iter().rev() {
            if seen.insert(s.id) {
                stack.push(s.id);
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::CcamBuilder;
    use ccam_graph::generators::{grid_network, path_network, zorder_id};

    #[test]
    fn ball_on_a_line() {
        let net = path_network(10); // unit costs, one-way
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let ball = reachable_within(&am, zorder_id(0, 0), 3).unwrap();
        assert_eq!(ball.len(), 4); // distances 0,1,2,3
        assert_eq!(ball[0], (zorder_id(0, 0), 0));
        assert_eq!(ball[3], (zorder_id(3, 0), 3));
        // From the line's end nothing is reachable forward.
        let ball = reachable_within(&am, zorder_id(9, 0), 100).unwrap();
        assert_eq!(ball.len(), 1);
    }

    #[test]
    fn ball_budget_zero_is_just_the_source() {
        let net = grid_network(4, 4, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let ball = reachable_within(&am, zorder_id(1, 1), 0).unwrap();
        assert_eq!(ball, vec![(zorder_id(1, 1), 0)]);
    }

    #[test]
    fn missing_source_is_empty() {
        let net = grid_network(3, 3, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        assert!(reachable_within(&am, ccam_graph::NodeId(9999), 5)
            .unwrap()
            .is_empty());
        assert!(reachable_hops(&am, ccam_graph::NodeId(9999), 5)
            .unwrap()
            .is_empty());
        assert!(transitive_closure_from(&am, ccam_graph::NodeId(9999))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn hops_ball_on_grid() {
        let net = grid_network(7, 7, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let center = zorder_id(3, 3);
        let h1 = reachable_hops(&am, center, 1).unwrap();
        assert_eq!(h1.len(), 5, "center + 4 von-Neumann neighbors");
        let h2 = reachable_hops(&am, center, 2).unwrap();
        assert_eq!(h2.len(), 13, "Manhattan ball of radius 2");
        // Hop counts are exact BFS depths.
        for (id, h) in h1 {
            let n = net.node(id).unwrap();
            let manhattan = (n.x as i64 - 3).unsigned_abs() + (n.y as i64 - 3).unsigned_abs();
            assert_eq!(h as u64, manhattan);
        }
    }

    #[test]
    fn closure_covers_strongly_connected_grid() {
        let net = grid_network(5, 5, 1.0); // all two-way: strongly connected
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let closure = transitive_closure_from(&am, zorder_id(0, 0)).unwrap();
        assert_eq!(closure.len(), 25);
        // No duplicates.
        let set: HashSet<_> = closure.iter().collect();
        assert_eq!(set.len(), 25);
    }

    #[test]
    fn closure_respects_direction() {
        let net = path_network(6);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let from_mid = transitive_closure_from(&am, zorder_id(3, 0)).unwrap();
        assert_eq!(from_mid.len(), 3); // nodes 3, 4, 5
    }

    #[test]
    fn bounded_traversal_io_tracks_crr() {
        // Locality-bounded traversals (hop balls) are where clustering
        // pays: the working set is a neighborhood, so CCAM faults far
        // fewer pages than BFS-AM. (A *full* closure visits every page
        // regardless of placement — there only page count matters.)
        use crate::am::{TopoAm, TraversalOrder};
        use std::collections::HashMap as Map;
        let net = grid_network(12, 12, 1.0);
        let ccam = CcamBuilder::new(512).build_static(&net).unwrap();
        let bfs =
            TopoAm::create(&net, 512, TraversalOrder::BreadthFirst, None, &Map::new()).unwrap();
        let mut ios = Vec::new();
        for am in [&ccam as &dyn AccessMethod, &bfs] {
            am.file().pool().set_capacity(4).unwrap();
            let mut total = 0u64;
            for cx in [2u32, 6, 9] {
                for cy in [2u32, 6, 9] {
                    am.file().pool().clear().unwrap();
                    let before = am.stats().snapshot();
                    let ball = reachable_hops(am, zorder_id(cx, cy), 3).unwrap();
                    assert!(ball.len() >= 20, "ball of radius 3 on a grid");
                    total += am.stats().snapshot().since(&before).physical_reads;
                }
            }
            ios.push(total);
        }
        assert!(
            ios[0] < ios[1],
            "hop balls over CCAM ({}) must beat BFS-AM ({})",
            ios[0],
            ios[1]
        );
    }
}
