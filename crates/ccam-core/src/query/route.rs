//! Route evaluation (paper §2.3, §4.3).
//!
//! "A route specifies a sequence of nodes n₁ … n_k and edges. ... it can
//! be processed as a sequence of Get-A-successor() operations, e.g.
//! Find(n₁), Get-A-successor(n₁, n₂), ..., Get-A-successor(n_{k−1},
//! n_k)." The aggregate property — total travel time here — "is a
//! function of the properties of the nodes and edges in the route."
//!
//! The Figure 6 experiment runs this with a single one-page buffer; the
//! caller sets the buffer capacity (`am.file().pool().set_capacity(1)`)
//! before evaluating.

use ccam_graph::walks::Route;
use ccam_graph::NodeId;
use ccam_storage::{PageStore, StorageResult};

use crate::am::AccessMethod;

/// The result of evaluating one route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteEvaluation {
    /// Sum of the costs of the traversed edges (e.g. total travel time).
    pub total_cost: u64,
    /// Nodes actually visited (== route length when the route is valid).
    pub nodes_visited: usize,
    /// True when every edge of the route existed in the stored network.
    pub complete: bool,
}

/// Evaluates `route` over `am` as `Find` + `Get-A-successor` chain,
/// aggregating edge costs.
///
/// A route referencing a missing node or edge yields `complete ==
/// false` with the partial aggregate (real road databases hit this when
/// a segment is closed; queries must not fail outright).
pub fn evaluate_route<S: PageStore>(
    am: &dyn AccessMethod<S>,
    route: &Route,
) -> StorageResult<RouteEvaluation> {
    Ok(evaluate_route_bounded(am, route, &mut || false)?
        .expect("never-cancelling evaluation always completes"))
}

/// [`evaluate_route`] with a cancellation hook for deadline-bounded
/// callers: `cancel` is polled once per hop (i.e. per
/// `Get-A-successor`), and a `true` abandons the walk, returning
/// `Ok(None)` — distinct from a storage error, and from a complete
/// evaluation. A serving layer maps it to a deadline-exceeded status; a
/// long route over a cold buffer pool is otherwise unboundedly slow.
pub fn evaluate_route_bounded<S: PageStore>(
    am: &dyn AccessMethod<S>,
    route: &Route,
    cancel: &mut dyn FnMut() -> bool,
) -> StorageResult<Option<RouteEvaluation>> {
    let mut eval = RouteEvaluation {
        total_cost: 0,
        nodes_visited: 0,
        complete: true,
    };
    let Some(&first) = route.nodes.first() else {
        return Ok(Some(eval));
    };
    if cancel() {
        return Ok(None);
    }
    let Some(mut current) = am.find(first)? else {
        eval.complete = false;
        return Ok(Some(eval));
    };
    eval.nodes_visited = 1;
    for &next_id in &route.nodes[1..] {
        if cancel() {
            return Ok(None);
        }
        // The edge cost lives on the current node's successor list.
        let Some(edge) = current.successors.iter().find(|e| e.to == next_id) else {
            eval.complete = false;
            break;
        };
        let Some(next) = am.get_a_successor(current.id, next_id)? else {
            eval.complete = false;
            break;
        };
        eval.total_cost += edge.cost as u64;
        eval.nodes_visited += 1;
        current = next;
    }
    Ok(Some(eval))
}

/// Convenience: evaluates a node-id sequence.
pub fn evaluate_path<S: PageStore>(
    am: &dyn AccessMethod<S>,
    nodes: &[NodeId],
) -> StorageResult<RouteEvaluation> {
    evaluate_route(
        am,
        &Route {
            nodes: nodes.to_vec(),
        },
    )
}

/// Convenience: [`evaluate_route_bounded`] over a node-id sequence.
pub fn evaluate_path_bounded<S: PageStore>(
    am: &dyn AccessMethod<S>,
    nodes: &[NodeId],
    cancel: &mut dyn FnMut() -> bool,
) -> StorageResult<Option<RouteEvaluation>> {
    evaluate_route_bounded(
        am,
        &Route {
            nodes: nodes.to_vec(),
        },
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::CcamBuilder;
    use ccam_graph::generators::{grid_network, zorder_id};
    use ccam_graph::walks::random_walk_routes;

    #[test]
    fn straight_route_cost() {
        let net = grid_network(6, 1, 1.0); // a 6-node line, unit costs
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let nodes: Vec<_> = (0..6).map(|x| zorder_id(x, 0)).collect();
        let eval = evaluate_path(&am, &nodes).unwrap();
        assert!(eval.complete);
        assert_eq!(eval.nodes_visited, 6);
        assert_eq!(eval.total_cost, 5);
    }

    #[test]
    fn missing_edge_marks_incomplete() {
        let net = grid_network(4, 4, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        // (0,0) -> (3,3) is not an edge.
        let eval = evaluate_path(&am, &[zorder_id(0, 0), zorder_id(3, 3)]).unwrap();
        assert!(!eval.complete);
        assert_eq!(eval.nodes_visited, 1);
        assert_eq!(eval.total_cost, 0);
    }

    #[test]
    fn missing_start_marks_incomplete() {
        let net = grid_network(3, 3, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let eval = evaluate_path(&am, &[NodeId(u64::MAX)]).unwrap();
        assert!(!eval.complete);
        assert_eq!(eval.nodes_visited, 0);
    }

    #[test]
    fn cancellation_abandons_the_walk_with_none() {
        let net = grid_network(8, 1, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let nodes: Vec<_> = (0..8).map(|x| zorder_id(x, 0)).collect();
        // Cancel after three polls: the walk stops mid-route.
        let mut polls = 0;
        let mut cancel = || {
            polls += 1;
            polls > 3
        };
        let out = evaluate_path_bounded(&am, &nodes, &mut cancel).unwrap();
        assert!(out.is_none(), "cancelled evaluation must return None");
        // A never-firing hook reproduces the unbounded result exactly.
        let full = evaluate_path_bounded(&am, &nodes, &mut || false)
            .unwrap()
            .unwrap();
        assert_eq!(full, evaluate_path(&am, &nodes).unwrap());
    }

    #[test]
    fn empty_route_is_trivially_complete() {
        let net = grid_network(3, 3, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let eval = evaluate_path(&am, &[]).unwrap();
        assert!(eval.complete);
        assert_eq!(eval.nodes_visited, 0);
    }

    #[test]
    fn io_cost_matches_cost_model_shape() {
        // Route evaluation with a 1-page buffer costs
        // ~ 1 + (L-1)(1-α) page accesses (Table 3).
        let net = grid_network(12, 12, 1.0);
        let am = CcamBuilder::new(1024).build_static(&net).unwrap();
        let alpha = am.crr().unwrap();
        am.file().pool().set_capacity(1).unwrap();
        let routes = random_walk_routes(&net, 50, 20, 42);
        am.file().pool().clear().unwrap();
        let before = am.stats().snapshot();
        for r in &routes {
            am.file().pool().clear().unwrap(); // cold start per route
            let snap = am.stats().snapshot();
            let eval = evaluate_route(&am, r).unwrap();
            assert!(eval.complete);
            let _ = snap;
        }
        let total = am.stats().snapshot().since(&before).physical_reads as f64 - 0.0;
        let measured = total / routes.len() as f64;
        let predicted = 1.0 + 19.0 * (1.0 - alpha);
        // Generous envelope: the model is approximate (revisits help).
        assert!(
            measured <= predicted * 1.3 + 1.0,
            "measured {measured:.2} vs predicted {predicted:.2}"
        );
        assert!(measured >= 1.0);
    }
}
