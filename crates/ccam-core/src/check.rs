//! Database integrity verification — `fsck` for CCAM files.
//!
//! A disk-resident access method needs a way to audit an opened file:
//! the secondary index and the data pages are physically separate
//! structures ("a secondary index is created on top of the data file",
//! §2.1), so corruption, a crashed reorganization or an external tool
//! can desynchronise them. [`verify`] cross-checks everything that must
//! hold:
//!
//! * every index entry points at a live page that actually holds the
//!   record,
//! * every stored record is indexed (no orphans),
//! * node ids are unique across pages,
//! * successor/predecessor lists are mutually consistent,
//! * page occupancy respects the half-full goal (reported, not fatal —
//!   the paper's invariant is "whenever possible").

use std::collections::HashMap;
use std::fmt;

use ccam_graph::NodeId;
use ccam_storage::{PageId, PageStore, StorageResult};

use crate::file::NetworkFile;

/// One integrity problem found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    /// An index entry references a page that does not hold the record.
    IndexPointsAway {
        /// The node whose entry is wrong.
        node: NodeId,
        /// Where the index claims the record lives.
        claimed: PageId,
    },
    /// A stored record has no index entry.
    OrphanRecord {
        /// The unindexed node.
        node: NodeId,
        /// The page holding it.
        page: PageId,
    },
    /// The same node id appears on two pages.
    DuplicateRecord {
        /// The duplicated node.
        node: NodeId,
        /// First page holding it.
        first: PageId,
        /// Second page holding it.
        second: PageId,
    },
    /// An edge `from → to` lacks the matching predecessor back-link.
    MissingBackLink {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// A predecessor entry has no matching successor edge.
    DanglingPredecessor {
        /// The node listing the predecessor.
        node: NodeId,
        /// The claimed predecessor.
        pred: NodeId,
    },
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Issue::IndexPointsAway { node, claimed } => {
                write!(
                    f,
                    "index maps {node} to {claimed} but the record is not there"
                )
            }
            Issue::OrphanRecord { node, page } => {
                write!(f, "record {node} on {page} is not indexed")
            }
            Issue::DuplicateRecord {
                node,
                first,
                second,
            } => {
                write!(f, "record {node} stored twice: {first} and {second}")
            }
            Issue::MissingBackLink { from, to } => {
                write!(f, "edge {from} -> {to} has no predecessor back-link")
            }
            Issue::DanglingPredecessor { node, pred } => {
                write!(f, "{node} lists predecessor {pred} but no such edge exists")
            }
        }
    }
}

/// Result of a [`verify`] run.
#[derive(Debug, Default)]
pub struct Report {
    /// Fatal inconsistencies (structure is wrong).
    pub issues: Vec<Issue>,
    /// Records checked.
    pub records: usize,
    /// Live data pages scanned.
    pub pages: usize,
    /// Pages below half occupancy (informational; the paper's invariant
    /// is best-effort).
    pub underfull_pages: usize,
    /// CRR of the placement, as a health indicator.
    pub crr: f64,
}

impl Report {
    /// True when no fatal issues were found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Audits the file (uncounted full scan).
pub fn verify<S: PageStore>(file: &NetworkFile<S>) -> StorageResult<Report> {
    let mut report = Report {
        crr: crate::crr::crr(file)?,
        ..Report::default()
    };
    let index_map = file.page_map()?;
    let scan = file.scan_uncounted()?;
    report.pages = scan.len();

    // Where each record actually lives, detecting duplicates.
    let mut actual: HashMap<NodeId, PageId> = HashMap::new();
    let mut edges: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (page, records) in &scan {
        let mut used = 0usize;
        for rec in records {
            report.records += 1;
            used += crate::file::clustering_weight(rec);
            if let Some(&first) = actual.get(&rec.id) {
                report.issues.push(Issue::DuplicateRecord {
                    node: rec.id,
                    first,
                    second: *page,
                });
            } else {
                actual.insert(rec.id, *page);
            }
            edges.insert(rec.id, rec.successors.iter().map(|e| e.to).collect());
            preds.insert(rec.id, rec.predecessors.clone());
        }
        if !records.is_empty() && used * 2 < file.clustering_budget() {
            report.underfull_pages += 1;
        }
    }

    // Index ↔ pages.
    for (&node, &claimed) in &index_map {
        if actual.get(&node) != Some(&claimed) {
            report.issues.push(Issue::IndexPointsAway { node, claimed });
        }
    }
    for (&node, &page) in &actual {
        if !index_map.contains_key(&node) {
            report.issues.push(Issue::OrphanRecord { node, page });
        }
    }

    // Cross-links (only between stored records; dangling references to
    // never-stored nodes are legal mid-incremental-create).
    for (&from, succs) in &edges {
        for &to in succs {
            if let Some(p) = preds.get(&to) {
                if !p.contains(&from) {
                    report.issues.push(Issue::MissingBackLink { from, to });
                }
            }
        }
    }
    for (&node, ps) in &preds {
        for &pred in ps {
            if let Some(succs) = edges.get(&pred) {
                if !succs.contains(&node) {
                    report
                        .issues
                        .push(Issue::DanglingPredecessor { node, pred });
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::{AccessMethod, CcamBuilder};
    use ccam_graph::generators::grid_network;

    #[test]
    fn fresh_file_is_clean() {
        let net = grid_network(8, 8, 1.0);
        let am = CcamBuilder::new(512).build_static(&net).unwrap();
        let report = verify(am.file()).unwrap();
        assert!(report.is_clean(), "{:?}", report.issues);
        assert_eq!(report.records, 64);
        assert!(report.pages > 0);
        assert!(report.crr > 0.0);
    }

    #[test]
    fn churned_file_stays_clean() {
        let net = grid_network(7, 7, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        for id in net.node_ids().into_iter().step_by(2) {
            let del = am.delete_node(id).unwrap().unwrap();
            am.insert_node(&del.data, &del.incoming).unwrap();
        }
        let report = verify(am.file()).unwrap();
        assert!(report.is_clean(), "{:?}", report.issues);
        assert_eq!(report.records, 49);
    }

    #[test]
    fn detects_index_desync() {
        let net = grid_network(5, 5, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        // Sabotage: remove a record from its page behind the index's back.
        let id = net.node_ids()[7];
        let page = am.file().page_of(id).unwrap().unwrap();
        // remove_from also fixes the index, so re-add the stale entry by
        // reinserting the record on a DIFFERENT page without updating the
        // original entry… simplest sabotage: delete the record bytes via
        // remove_from, then manually re-create an index entry by inserting
        // the record into another page and hand-editing is not exposed —
        // instead remove and verify the orphan/away detection with a raw
        // two-step: take the record out (index entry goes too), then put
        // it back on a fresh page but ALSO leave a duplicate on the page
        // by inserting twice via insert_into.
        let rec = am.file().read_from_page(page, id).unwrap().unwrap();
        let fresh = am.file_mut().allocate_page().unwrap();
        // Duplicate: same id on two pages; index points at the fresh one.
        assert!(am.file_mut().insert_into(fresh, &rec).unwrap());
        let report = verify(am.file()).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, Issue::DuplicateRecord { node, .. } if *node == id)));
    }

    #[test]
    fn detects_broken_cross_links() {
        let net = grid_network(4, 4, 1.0);
        let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
        // Sabotage: drop one predecessor entry without touching the edge.
        let id = net.node_ids()[5];
        let (page, mut rec) = am.file().find(id).unwrap().unwrap();
        assert!(!rec.predecessors.is_empty());
        let dropped = rec.predecessors.remove(0);
        assert!(am.file_mut().update_in(page, &rec).unwrap());
        let report = verify(am.file()).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, Issue::MissingBackLink { from, to }
                 if *from == dropped && *to == id)));
    }

    #[test]
    fn issue_display_is_informative() {
        let i = Issue::DuplicateRecord {
            node: ccam_graph::NodeId(7),
            first: ccam_storage::PageId(1),
            second: ccam_storage::PageId(2),
        };
        let s = i.to_string();
        assert!(s.contains("N7") && s.contains("P1") && s.contains("P2"));
    }
}
