//! Cost-model validation: run a live workload and diff the predictions
//! of [`CostParams`] (paper §3.2, Tables 3–4) against observed I/O.
//!
//! The paper validates its algebraic model by comparing predicted data
//! page accesses with measured ones (Table 5). This module reproduces
//! that methodology as a reusable harness: for each operation class it
//! replays a deterministic sample of operations under the buffering
//! assumption the model makes, measures the [`IoSnapshot`] delta around
//! each call, and reports predicted vs. observed accesses per class
//! together with the relative error.
//!
//! Buffering protocol per class (matching §3.2's assumptions):
//!
//! * `find` — cold buffer before every call; the model charges exactly
//!   one data-page access,
//! * `get_a_successor` — the source node's page is faulted in first, so
//!   only the `1 − α` co-location miss is charged,
//! * `get_successors` — likewise, source page buffered: `(1 − α)·|A|`,
//! * `route` — a single one-page buffer (the paper's route-evaluation
//!   setup): `1 + (L − 1)(1 − α)`,
//! * `insert` / `delete` — reads **and** writes are measured and compared
//!   against `2 ×` the Table 4 worst-case retrieval cost ("the Write
//!   cost is equal to the Read cost", §3.2). Every deleted node is
//!   re-inserted, so validation leaves the file logically unchanged.

use ccam_graph::{NodeData, NodeId};
use ccam_storage::{PageStore, StorageResult};

use crate::am::AccessMethod;
use crate::costmodel::CostParams;
use crate::reorg::ReorgPolicy;

/// Workload shape for [`validate`].
#[derive(Debug, Clone, Copy)]
pub struct ValidationConfig {
    /// Operations sampled per point class (`find`, `get_a_successor`,
    /// `get_successors`, and each update class).
    pub sample: usize,
    /// Number of route-evaluation trials.
    pub routes: usize,
    /// Target route length in nodes (walks stop early at sinks).
    pub route_len: usize,
    /// Seed of the deterministic sampler.
    pub seed: u64,
    /// Reorganization policy assumed for the Table 4 update predictions.
    pub policy: ReorgPolicy,
    /// Also exercise `delete` + re-`insert` (mutates the file during the
    /// run, but restores every record before returning).
    pub updates: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            sample: 64,
            routes: 8,
            route_len: 20,
            seed: 0xC0FFEE,
            policy: ReorgPolicy::SecondOrder,
            updates: true,
        }
    }
}

/// Predicted vs. observed page accesses for one operation class.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Operation class name (`find`, `get_successors`, `route`, ...).
    pub class: String,
    /// Number of operations measured.
    pub trials: usize,
    /// Model prediction, mean page accesses per operation.
    pub predicted: f64,
    /// Observed mean page accesses per operation.
    pub observed: f64,
}

impl ClassReport {
    /// |observed − predicted| / max(predicted, 1): relative error with
    /// the denominator floored at one page so near-zero predictions
    /// (high-α files) do not explode the ratio.
    pub fn rel_error(&self) -> f64 {
        (self.observed - self.predicted).abs() / self.predicted.max(1.0)
    }
}

/// The outcome of a [`validate`] run.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Parameters measured from the file before the workload ran.
    pub params: CostParams,
    /// One entry per operation class exercised.
    pub classes: Vec<ClassReport>,
}

impl ValidationReport {
    /// Mean relative error across classes.
    pub fn mean_rel_error(&self) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        self.classes.iter().map(ClassReport::rel_error).sum::<f64>() / self.classes.len() as f64
    }

    /// Worst relative error across classes.
    pub fn max_rel_error(&self) -> f64 {
        self.classes
            .iter()
            .map(ClassReport::rel_error)
            .fold(0.0, f64::max)
    }

    /// The report for a named class, if that class ran.
    pub fn class(&self, name: &str) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// Plain-text table in the style of the experiment harness.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cost-model validation (α={:.4}, |A|={:.3}, λ={:.3}, γ={:.2})\n",
            self.params.alpha,
            self.params.avg_successors,
            self.params.avg_neighbors,
            self.params.blocking_factor
        ));
        out.push_str(&format!(
            "{:<18} {:>7} {:>11} {:>11} {:>9}\n",
            "class", "trials", "predicted", "observed", "rel.err"
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "{:<18} {:>7} {:>11.3} {:>11.3} {:>8.1}%\n",
                c.class,
                c.trials,
                c.predicted,
                c.observed,
                c.rel_error() * 100.0
            ));
        }
        out.push_str(&format!(
            "mean rel.err {:.1}%   max rel.err {:.1}%\n",
            self.mean_rel_error() * 100.0,
            self.max_rel_error() * 100.0
        ));
        out
    }

    /// Dependency-free JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"params\":{");
        out.push_str(&format!(
            "\"alpha\":{},\"avg_successors\":{},\"avg_neighbors\":{},\"blocking_factor\":{}}},",
            self.params.alpha,
            self.params.avg_successors,
            self.params.avg_neighbors,
            self.params.blocking_factor
        ));
        out.push_str("\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"trials\":{},\"predicted\":{},\"observed\":{},\"rel_error\":{}}}",
                c.class,
                c.trials,
                c.predicted,
                c.observed,
                c.rel_error()
            ));
        }
        out.push_str(&format!(
            "],\"mean_rel_error\":{},\"max_rel_error\":{}}}",
            self.mean_rel_error(),
            self.max_rel_error()
        ));
        out
    }
}

/// Deterministic sampler (64-bit LCG, Knuth constants). `rand` is a
/// dev-only dependency of this crate, and validation must be exactly
/// reproducible from `seed` anyway.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n as u64) as usize
    }
}

/// Runs the validation workload against a live access method and returns
/// the per-class report. The buffer pool's capacity is restored on exit;
/// with `cfg.updates` every deleted node is re-inserted, so the file
/// holds the same records afterwards (possibly re-placed, which can
/// shift α — measure it again if you need the post-run value).
pub fn validate<S, A>(am: &mut A, cfg: &ValidationConfig) -> StorageResult<ValidationReport>
where
    S: PageStore,
    A: AccessMethod<S> + ?Sized,
{
    let params = CostParams::measure(am.file())?;
    let scan = am.file().scan_uncounted()?;
    let nodes: Vec<NodeData> = scan.into_iter().flat_map(|(_, recs)| recs).collect();
    if nodes.is_empty() {
        return Ok(ValidationReport {
            params,
            classes: Vec::new(),
        });
    }

    let stats = am.stats();
    let mut rng = Lcg(cfg.seed);
    let mut classes = Vec::new();

    // -- find: cold buffer, model charges exactly one access -----------------
    let mut observed = 0u64;
    let trials = cfg.sample.min(nodes.len()).max(1);
    for _ in 0..trials {
        let id = nodes[rng.pick(nodes.len())].id;
        am.file().pool().clear()?;
        let before = stats.snapshot();
        am.find(id)?;
        observed += stats.snapshot().since(&before).physical_reads;
    }
    classes.push(ClassReport {
        class: "find".into(),
        trials,
        predicted: 1.0,
        observed: observed as f64 / trials as f64,
    });

    // -- get_a_successor: source page buffered, charge 1 − α ------------------
    let edges: Vec<(NodeId, NodeId)> = nodes
        .iter()
        .flat_map(|n| n.successors.iter().map(|e| (n.id, e.to)))
        .collect();
    if !edges.is_empty() {
        let trials = cfg.sample.min(edges.len()).max(1);
        let mut observed = 0u64;
        for _ in 0..trials {
            let (from, to) = edges[rng.pick(edges.len())];
            am.file().pool().clear()?;
            am.find(from)?; // fault the source node's page in
            let before = stats.snapshot();
            am.get_a_successor(from, to)?;
            observed += stats.snapshot().since(&before).physical_reads;
        }
        classes.push(ClassReport {
            class: "get_a_successor".into(),
            trials,
            predicted: params.get_a_successor_cost(),
            observed: observed as f64 / trials as f64,
        });
    }

    // -- get_successors: source page buffered, charge (1 − α)·|A| -------------
    {
        let trials = cfg.sample.min(nodes.len()).max(1);
        let mut observed = 0u64;
        for _ in 0..trials {
            let id = nodes[rng.pick(nodes.len())].id;
            am.file().pool().clear()?;
            am.find(id)?;
            let before = stats.snapshot();
            am.get_successors(id)?;
            observed += stats.snapshot().since(&before).physical_reads;
        }
        classes.push(ClassReport {
            class: "get_successors".into(),
            trials,
            predicted: params.get_successors_cost(),
            observed: observed as f64 / trials as f64,
        });
    }

    // -- route: random successor walks with a single one-page buffer ----------
    if cfg.routes > 0 && cfg.route_len > 0 {
        use std::collections::HashMap;
        let succ_of: HashMap<NodeId, Vec<NodeId>> = nodes
            .iter()
            .map(|n| (n.id, n.successors.iter().map(|e| e.to).collect()))
            .collect();
        let saved_capacity = am.file().pool().capacity();
        am.file().pool().set_capacity(1)?;
        let mut predicted = 0.0;
        let mut observed = 0u64;
        for _ in 0..cfg.routes {
            let mut cur = nodes[rng.pick(nodes.len())].id;
            am.file().pool().clear()?;
            let before = stats.snapshot();
            am.find(cur)?;
            let mut visited = 1usize;
            while visited < cfg.route_len {
                let Some(succs) = succ_of.get(&cur).filter(|s| !s.is_empty()) else {
                    break;
                };
                let next = succs[rng.pick(succs.len())];
                am.get_a_successor(cur, next)?;
                cur = next;
                visited += 1;
            }
            observed += stats.snapshot().since(&before).physical_reads;
            predicted += params.route_evaluation_cost(visited);
        }
        am.file().pool().set_capacity(saved_capacity)?;
        classes.push(ClassReport {
            class: "route".into(),
            trials: cfg.routes,
            predicted: predicted / cfg.routes as f64,
            observed: observed as f64 / cfg.routes as f64,
        });
    }

    // -- updates: delete + re-insert vs. 2 × Table 4 --------------------------
    if cfg.updates {
        let trials = cfg.sample.min(nodes.len()).max(1);
        let mut del_observed = 0u64;
        let mut ins_observed = 0u64;
        let mut measured = 0usize;
        for _ in 0..trials {
            let id = nodes[rng.pick(nodes.len())].id;
            am.file().pool().clear()?;
            let before = stats.snapshot();
            let Some(deleted) = am.delete_node(id)? else {
                continue; // already deleted this round via an earlier pick
            };
            let d = stats.snapshot().since(&before);
            del_observed += d.physical_reads + d.physical_writes;

            let before = stats.snapshot();
            am.insert_node(&deleted.data, &deleted.incoming)?;
            let d = stats.snapshot().since(&before);
            ins_observed += d.physical_reads + d.physical_writes;
            measured += 1;
        }
        if measured > 0 {
            classes.push(ClassReport {
                class: "delete".into(),
                trials: measured,
                predicted: 2.0 * params.delete_cost(cfg.policy),
                observed: del_observed as f64 / measured as f64,
            });
            classes.push(ClassReport {
                class: "insert".into(),
                trials: measured,
                predicted: 2.0 * params.insert_cost(cfg.policy),
                observed: ins_observed as f64 / measured as f64,
            });
        }
    }

    Ok(ValidationReport { params, classes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_fixture() -> ValidationReport {
        ValidationReport {
            params: CostParams {
                alpha: 0.75,
                avg_successors: 3.0,
                avg_neighbors: 3.2,
                blocking_factor: 12.0,
            },
            classes: vec![
                ClassReport {
                    class: "find".into(),
                    trials: 10,
                    predicted: 1.0,
                    observed: 1.0,
                },
                ClassReport {
                    class: "get_successors".into(),
                    trials: 10,
                    predicted: 0.75,
                    observed: 0.9,
                },
            ],
        }
    }

    #[test]
    fn rel_error_floors_denominator_at_one_page() {
        let c = ClassReport {
            class: "get_a_successor".into(),
            trials: 4,
            predicted: 0.01,
            observed: 0.02,
        };
        // Without the floor this would read as 100% error on a hundredth
        // of a page; with it the error is one hundredth of a page.
        assert!((c.rel_error() - 0.01).abs() < 1e-12);

        let c2 = ClassReport {
            class: "delete".into(),
            trials: 4,
            predicted: 4.0,
            observed: 5.0,
        };
        assert!((c2.rel_error() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates_mean_and_max() {
        let r = report_fixture();
        assert!((r.class("find").unwrap().rel_error() - 0.0).abs() < 1e-12);
        assert!((r.max_rel_error() - 0.15).abs() < 1e-12);
        assert!((r.mean_rel_error() - 0.075).abs() < 1e-12);
        assert!(r.class("route").is_none());
    }

    #[test]
    fn render_and_json_mention_every_class() {
        let r = report_fixture();
        let text = r.render();
        let json = r.to_json();
        for c in &r.classes {
            assert!(text.contains(&c.class));
            assert!(json.contains(&format!("\"class\":\"{}\"", c.class)));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"mean_rel_error\""));
    }

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        for _ in 0..100 {
            let x = a.pick(7);
            assert_eq!(x, b.pick(7));
            assert!(x < 7);
        }
    }
}
