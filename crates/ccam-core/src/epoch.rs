//! Single-writer / multi-reader epochs over an access method.
//!
//! The serving layer shares one open [`crate::am::Ccam`] between many
//! reader threads while a maintenance writer applies inserts, deletes
//! and reorganizations. Every read must observe a *committed* state —
//! either the state before a writer's transaction or the state after it,
//! never a torn mix of the two.
//!
//! # The design this crate ships (and tests)
//!
//! Of the two candidate designs — (a) readers pin the pre-commit state
//! through the no-steal `WalStore` overlay while the writer installs, or
//! (b) readers block for the writer's install window — this module
//! implements **(b): readers block for the writer's whole critical
//! section**, via a reader/writer lock plus a monotone epoch counter:
//!
//! * [`EpochCell::read`] takes the shared side. Any number of readers
//!   run concurrently; each sees the epoch current when it entered.
//! * [`EpochCell::write`] takes the exclusive side. The writer performs
//!   a whole logical transaction — mutate, reorganize, *commit* — under
//!   the guard; dropping the guard bumps the epoch and releases readers.
//!
//! Why (b): the access method commits through the buffer pool's
//! `flush_all` (the `WalStore` commit point), so "the pre-commit state"
//! is partly dirty frames — pinning it for concurrent readers would mean
//! versioning every frame the writer touches. Blocking instead makes
//! the guarantee structural: readers *cannot* run during the install
//! window, so every read executes strictly between committed states.
//! The cost is reader latency bounded by the writer's longest
//! transaction — acceptable for a read-mostly serving workload where
//! writes are maintenance operations, and measured by the
//! reads-during-commit stress test rather than assumed.
//!
//! The epoch counter is observability, not synchronization: a reader
//! that records [`EpochCell::epoch`] before and after a batch can tell
//! whether a commit intervened (`serve` uses this to label whole batches
//! as snapshot-consistent — a batch runs under one read guard, so both
//! observations are equal by construction).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A single-writer / multi-reader cell with a monotone commit epoch.
/// See the module docs for the snapshot-consistency contract.
pub struct EpochCell<T> {
    inner: RwLock<T>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// Wraps `value` at epoch 0.
    pub fn new(value: T) -> Self {
        EpochCell {
            inner: RwLock::new(value),
            epoch: AtomicU64::new(0),
        }
    }

    /// Shared read access. Concurrent with other readers; blocks while a
    /// writer holds the cell (and only then). Everything done under one
    /// guard observes a single committed state.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read()
    }

    /// Exclusive write access. The caller runs a whole logical
    /// transaction (mutate + commit) under the guard; dropping it bumps
    /// the epoch, marking a new committed state.
    pub fn write(&self) -> EpochWriteGuard<'_, T> {
        EpochWriteGuard {
            guard: Some(self.inner.write()),
            epoch: &self.epoch,
        }
    }

    /// The number of write transactions committed so far. Two equal
    /// observations bracket a span in which no writer installed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// Write guard for [`EpochCell::write`]: exclusive access that bumps the
/// epoch when dropped.
pub struct EpochWriteGuard<'a, T> {
    /// `Option` so `Drop` can bump the epoch *before* releasing the
    /// lock (a reader waking on the lock must observe the new count).
    guard: Option<RwLockWriteGuard<'a, T>>,
    epoch: &'a AtomicU64,
}

impl<T> std::ops::Deref for EpochWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for EpochWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live")
    }
}

impl<T> Drop for EpochWriteGuard<'_, T> {
    fn drop(&mut self) {
        // Bump first, then release: a reader entering after the release
        // must see the new epoch.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.guard = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn epoch_counts_write_transactions() {
        let cell = EpochCell::new(0u64);
        assert_eq!(cell.epoch(), 0);
        *cell.write() += 1;
        assert_eq!(cell.epoch(), 1);
        {
            let mut g = cell.write();
            *g += 1;
            // Not bumped until the guard drops.
            assert_eq!(cell.epoch(), 1);
        }
        assert_eq!(cell.epoch(), 2);
        assert_eq!(*cell.read(), 2);
    }

    #[test]
    fn readers_never_see_a_torn_write() {
        // The writer breaks an invariant (a != b) mid-transaction and
        // restores it before releasing; readers must never catch it.
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let g = cell.read();
                        assert_eq!(g.0, g.1, "torn state observed");
                    }
                });
            }
            for i in 1..500u64 {
                let mut g = cell.write();
                g.0 = i;
                // Readers are blocked here — the torn (i, i-1) state is
                // invisible outside the guard.
                g.1 = i;
            }
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 499);
    }

    #[test]
    fn equal_epochs_bracket_a_quiescent_span() {
        let cell = EpochCell::new(7u32);
        let before = cell.epoch();
        let v = *cell.read();
        let after = cell.epoch();
        assert_eq!(before, after);
        assert_eq!(v, 7);
    }
}
