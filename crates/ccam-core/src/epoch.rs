//! Single-writer / multi-version snapshot epochs over an access method.
//!
//! The serving layer shares one open [`crate::am::Ccam`] between many
//! reader threads while a maintenance writer applies inserts, deletes
//! and reorganizations. Every read must observe a *committed* state —
//! either the state before a writer's transaction or the state after it,
//! never a torn mix of the two.
//!
//! # The design this crate ships (and tests)
//!
//! Of the two candidate designs — (a) readers pin the last committed
//! state while the writer mutates, or (b) readers block for the writer's
//! whole critical section — this module implements **(a): MVCC-lite
//! pinned snapshots**. (Design (b), a reader/writer lock around the
//! whole `Ccam`, shipped first and stalled every reader for the length
//! of a reorganization; it also let a panicking writer bump the epoch
//! and expose a torn state, since `parking_lot` locks do not poison.)
//!
//! * [`EpochCell::read`] returns a [`Snapshot`]: an `Arc` of the last
//!   *published* read-only view. Taking it costs one `RwLock` read
//!   acquisition and an `Arc` clone — no lock is held while the query
//!   runs, so readers never wait on a writer and a writer never waits
//!   on readers.
//! * [`EpochCell::write`] keeps single-writer exclusivity over the
//!   mutable value. The writer mutates freely; readers cannot observe
//!   any of it, because they only ever dereference the published view.
//! * [`EpochWriteGuard::commit`] captures a fresh view from the
//!   (committed) writer state via [`Snapshotable::capture`], publishes
//!   it atomically, and bumps the epoch. **The epoch bumps only on
//!   successful commit.**
//!
//! # Version lifecycle
//!
//! For a WAL-backed store with `WalStore::enable_snapshots` on, capture
//! pins a *generation* of the store's multi-version page images
//! (`ccam_storage::snapshot`): the view reads those frozen images and
//! the pin is released when the last `Snapshot` holding the view drops,
//! letting superseded page images be collected. For plain stores,
//! capture freezes a one-shot deep copy. Either way a published view is
//! immutable: snapshots taken before a commit keep reading their own
//! generation for as long as they live.
//!
//! # Commit / abort / panic state machine
//!
//! ```text
//!   write() ──► mutating ──ok──► commit() ──capture ok──► published, epoch+1
//!                  │                  └─capture err─────► Err (view unchanged,
//!                  │                                      writer reusable)
//!                  ├── guard dropped (abort) ───────────► view + epoch unchanged
//!                  └── panic (unwind) ──────────────────► cell POISONED
//! ```
//!
//! A dropped-without-commit guard is a benign abort: the access-method
//! layer has already rolled the writer back to its committed state, the
//! published view never changed, and the epoch does not move. A *panic*
//! mid-transaction may leave the writer value torn, so it poisons the
//! cell: `read()` and `write()` fail with `StorageError::Poisoned`
//! (the server answers `Internal`) until [`EpochCell::recover`] restores
//! the committed state via [`Snapshotable::restore_committed`] and
//! republishes. Snapshots already taken stay valid through poisoning —
//! they are immutable committed data.
//!
//! The epoch counter is observability, not synchronization: a reader
//! that records [`EpochCell::epoch`] before and after a batch can tell
//! whether a commit intervened, and [`Snapshot::epoch`] names the
//! committed generation a snapshot serves.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ccam_storage::{IoStats, StorageError, StorageResult};
use parking_lot::{Mutex, MutexGuard, RwLock};

/// A value that can publish immutable committed views of itself.
///
/// `capture` is called at commit time, after the value's own
/// transactional machinery has made the state durable; it must first
/// ensure the committed state is visible (e.g. flush + sync), then
/// build a read-only view of exactly that state.
pub trait Snapshotable {
    /// The immutable read-only view readers share.
    type View: Send + Sync + 'static;

    /// Builds a view of the current committed state.
    fn capture(&self) -> StorageResult<Self::View>;

    /// Restores the committed state after a panic left the value
    /// possibly torn (used by [`EpochCell::recover`]). The default
    /// assumes the value cannot tear.
    fn restore_committed(&mut self) -> StorageResult<()> {
        Ok(())
    }

    /// The value's I/O counters, if it has any — lets the cell expose
    /// them without locking the writer (a long reorganization holds the
    /// writer lock, and metrics must not block on it).
    fn stats_handle(&self) -> Option<Arc<IoStats>> {
        None
    }
}

struct Published<V> {
    view: Arc<V>,
    epoch: u64,
}

/// A single-writer cell publishing immutable snapshots of `T` with a
/// monotone commit epoch. See the module docs for the design.
pub struct EpochCell<T: Snapshotable> {
    writer: Mutex<T>,
    published: RwLock<Published<T::View>>,
    epoch: AtomicU64,
    poisoned: AtomicBool,
    io: Option<Arc<IoStats>>,
}

impl<T: Snapshotable> EpochCell<T> {
    /// Wraps `value` at epoch 0, capturing and publishing its initial
    /// committed view.
    pub fn new(value: T) -> StorageResult<Self> {
        let view = Arc::new(value.capture()?);
        let io = value.stats_handle();
        Ok(EpochCell {
            writer: Mutex::new(value),
            published: RwLock::new(Published { view, epoch: 0 }),
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            io,
        })
    }

    /// Pins the last published snapshot. Cheap (one `Arc` clone) and
    /// never blocked by a writer's critical section; the snapshot stays
    /// valid — and keeps reading its own committed generation — for as
    /// long as it is held, across any number of later commits.
    ///
    /// Fails with [`StorageError::Poisoned`] after a writer panicked
    /// mid-transaction (see [`EpochCell::recover`]).
    pub fn read(&self) -> StorageResult<Snapshot<T::View>> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(StorageError::Poisoned);
        }
        let p = self.published.read();
        Ok(Snapshot {
            view: Arc::clone(&p.view),
            epoch: p.epoch,
        })
    }

    /// Exclusive write access. The caller runs a whole logical
    /// transaction (mutate + commit) under the guard and then calls
    /// [`EpochWriteGuard::commit`] to publish; dropping the guard
    /// without committing aborts (readers keep the previous view and
    /// the epoch does not move).
    pub fn write(&self) -> StorageResult<EpochWriteGuard<'_, T>> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(StorageError::Poisoned);
        }
        Ok(EpochWriteGuard {
            guard: Some(self.writer.lock()),
            cell: self,
            committed: false,
        })
    }

    /// Clears poison after a writer panic: restores the committed state
    /// ([`Snapshotable::restore_committed`]), captures and publishes a
    /// fresh view, and re-opens the cell. Returns the new epoch.
    pub fn recover(&self) -> StorageResult<u64> {
        let mut writer = self.writer.lock();
        writer.restore_committed()?;
        let view = Arc::new(writer.capture()?);
        let epoch = self.publish(view);
        self.poisoned.store(false, Ordering::Release);
        Ok(epoch)
    }

    /// Runs `f` with shared access to the writer-side value, briefly
    /// holding the writer lock without opening a transaction (no commit,
    /// no epoch movement — snapshot readers are unaffected). The
    /// replication streamer uses this to collect committed log records
    /// between writer transactions; keep `f` short, since it excludes
    /// writers for its duration.
    pub fn with_writer<R>(&self, f: impl FnOnce(&T) -> R) -> StorageResult<R> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(StorageError::Poisoned);
        }
        let w = self.writer.lock();
        Ok(f(&w))
    }

    /// True after a writer panicked mid-transaction and before
    /// [`EpochCell::recover`] succeeded.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The number of commits published so far. Two equal observations
    /// bracket a span in which no writer committed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The wrapped value's I/O counters, without touching the writer
    /// lock (usable while a long transaction is in flight).
    pub fn io_stats(&self) -> Option<Arc<IoStats>> {
        self.io.clone()
    }

    /// Consumes the cell, returning the inner (writer) value.
    pub fn into_inner(self) -> T {
        self.writer.into_inner()
    }

    fn publish(&self, view: Arc<T::View>) -> u64 {
        let mut p = self.published.write();
        let epoch = p.epoch + 1;
        *p = Published { view, epoch };
        // Inside the lock so `epoch()` can never run ahead of the view
        // a concurrent `read()` would pin.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

/// A pinned, immutable committed view (see [`EpochCell::read`]).
pub struct Snapshot<V> {
    view: Arc<V>,
    epoch: u64,
}

impl<V> Snapshot<V> {
    /// The commit epoch this snapshot serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<V> Clone for Snapshot<V> {
    fn clone(&self) -> Self {
        Snapshot {
            view: Arc::clone(&self.view),
            epoch: self.epoch,
        }
    }
}

impl<V> std::ops::Deref for Snapshot<V> {
    type Target = V;
    fn deref(&self) -> &V {
        &self.view
    }
}

/// Write guard for [`EpochCell::write`]: exclusive access that
/// publishes only on explicit [`EpochWriteGuard::commit`]. Dropping it
/// without committing aborts; unwinding through it poisons the cell.
pub struct EpochWriteGuard<'a, T: Snapshotable> {
    /// `Option` so `commit` can release the lock after publishing
    /// without running the poison check in `Drop`.
    guard: Option<MutexGuard<'a, T>>,
    cell: &'a EpochCell<T>,
    committed: bool,
}

impl<T: Snapshotable> EpochWriteGuard<'_, T> {
    /// Captures the writer's committed state, publishes it as the next
    /// snapshot, bumps the epoch and releases the guard. Returns the
    /// new epoch.
    ///
    /// On capture failure the previous view stays published, the epoch
    /// does not move, and the cell is *not* poisoned (the writer state
    /// is still its committed self; the caller may retry).
    pub fn commit(mut self) -> StorageResult<u64> {
        let view = Arc::new(self.guard.as_ref().expect("guard live").capture()?);
        let epoch = self.cell.publish(view);
        self.committed = true;
        Ok(epoch)
    }
}

impl<T: Snapshotable> std::ops::Deref for EpochWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live")
    }
}

impl<T: Snapshotable> std::ops::DerefMut for EpochWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live")
    }
}

impl<T: Snapshotable> Drop for EpochWriteGuard<'_, T> {
    fn drop(&mut self) {
        if !self.committed && std::thread::panicking() {
            // The writer may be torn; fail readers fast rather than
            // serving an ever-staler snapshot while maintenance is dead.
            self.cell.poisoned.store(true, Ordering::Release);
        }
        self.guard = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test double: a pair whose invariant is `a == b`, with a
    /// "repair" that re-establishes it from the first element.
    #[derive(Clone)]
    struct Pair(u64, u64);

    impl Snapshotable for Pair {
        type View = Pair;
        fn capture(&self) -> StorageResult<Self::View> {
            Ok(self.clone())
        }
        fn restore_committed(&mut self) -> StorageResult<()> {
            self.1 = self.0;
            Ok(())
        }
    }

    #[test]
    fn epoch_counts_committed_transactions_only() {
        let cell = EpochCell::new(Pair(0, 0)).unwrap();
        assert_eq!(cell.epoch(), 0);
        let mut g = cell.write().unwrap();
        g.0 = 1;
        g.1 = 1;
        assert_eq!(cell.epoch(), 0); // not bumped until commit
        assert_eq!(g.commit().unwrap(), 1);
        assert_eq!(cell.epoch(), 1);

        // Abort: drop without commit — no bump, readers keep the old view.
        {
            let mut g = cell.write().unwrap();
            g.0 = 99;
            g.1 = 99;
        }
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.read().unwrap().0, 1);
    }

    #[test]
    fn snapshots_pin_their_generation_across_commits() {
        let cell = EpochCell::new(Pair(1, 1)).unwrap();
        let old = cell.read().unwrap();
        let mut g = cell.write().unwrap();
        g.0 = 2;
        g.1 = 2;
        g.commit().unwrap();
        // The pinned snapshot still serves its own committed generation.
        assert_eq!(old.0, 1);
        assert_eq!(old.epoch(), 0);
        let new = cell.read().unwrap();
        assert_eq!(new.0, 2);
        assert_eq!(new.epoch(), 1);
    }

    #[test]
    fn readers_never_see_a_torn_write() {
        // The writer breaks the invariant (a != b) mid-transaction;
        // readers resolve published snapshots only and can never catch it.
        let cell = std::sync::Arc::new(EpochCell::new(Pair(0, 0)).unwrap());
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = std::sync::Arc::clone(&cell);
                let stop = std::sync::Arc::clone(&stop);
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let g = cell.read().unwrap();
                        assert_eq!(g.0, g.1, "torn state observed");
                    }
                });
            }
            for i in 1..500u64 {
                let mut g = cell.write().unwrap();
                g.0 = i;
                // The torn (i, i-1) state exists only in the writer
                // value, which no reader dereferences.
                g.1 = i;
                g.commit().unwrap();
            }
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 499);
    }

    #[test]
    fn panicking_writer_poisons_and_recover_reopens() {
        let cell = std::sync::Arc::new(EpochCell::new(Pair(5, 5)).unwrap());
        let pre_panic = cell.read().unwrap();

        let cell2 = std::sync::Arc::clone(&cell);
        let r = std::thread::spawn(move || {
            let mut g = cell2.write().unwrap();
            g.0 = 6; // torn: invariant broken…
            panic!("injected writer panic"); // …and never restored
        })
        .join();
        assert!(r.is_err());

        // New reads and writes fail typed; pinned snapshots stay valid.
        assert!(cell.is_poisoned());
        assert!(matches!(cell.read(), Err(StorageError::Poisoned)));
        assert!(matches!(cell.write(), Err(StorageError::Poisoned)));
        assert_eq!(pre_panic.0, 5);
        assert_eq!(cell.epoch(), 0);

        // Recover: committed state restored, fresh view published.
        cell.recover().unwrap();
        assert!(!cell.is_poisoned());
        let g = cell.read().unwrap();
        assert_eq!(g.0, g.1, "recover must republish a consistent state");

        // The cell is fully usable again.
        let mut w = cell.write().unwrap();
        w.0 = 7;
        w.1 = 7;
        w.commit().unwrap();
        assert_eq!(cell.read().unwrap().0, 7);
    }

    #[test]
    fn equal_epochs_bracket_a_quiescent_span() {
        let cell = EpochCell::new(Pair(7, 7)).unwrap();
        let before = cell.epoch();
        let v = cell.read().unwrap().0;
        let after = cell.epoch();
        assert_eq!(before, after);
        assert_eq!(v, 7);
    }
}
