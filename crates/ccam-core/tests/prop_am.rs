//! Property test: every access method, driven by an arbitrary sequence
//! of node/edge inserts and deletes, stays in lockstep with an
//! in-memory [`Network`] model — same records, same successor sets,
//! consistent cross-references — under every reorganization policy.

use ccam_core::am::{AccessMethod, CcamBuilder, GridAm, TopoAm, TraversalOrder};
use ccam_core::reorg::ReorgPolicy;
use ccam_graph::generators::grid_network;
use ccam_graph::{EdgeTo, Network, NodeData, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Delete the i-th (mod live) node.
    DeleteNode(usize),
    /// Re-insert a previously deleted node.
    ReinsertNode(usize),
    /// Insert edge between the i-th and j-th live nodes.
    InsertEdge(usize, usize, u32),
    /// Delete the i-th (mod existing) edge.
    DeleteEdge(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<usize>().prop_map(Op::DeleteNode),
        2 => any::<usize>().prop_map(Op::ReinsertNode),
        2 => (any::<usize>(), any::<usize>(), 1u32..50).prop_map(|(a, b, c)| Op::InsertEdge(a, b, c)),
        2 => any::<usize>().prop_map(Op::DeleteEdge),
    ]
}

/// Applies one op to both the AM and the model network; returns false if
/// the op was a no-op (e.g. nothing to delete).
fn apply(
    am: &mut dyn AccessMethod,
    model: &mut Network,
    graveyard: &mut Vec<(NodeData, Vec<(NodeId, u32)>)>,
    op: &Op,
) -> bool {
    match op {
        Op::DeleteNode(i) => {
            let ids = model.node_ids();
            if ids.is_empty() {
                return false;
            }
            let id = ids[i % ids.len()];
            let deleted = am.delete_node(id).unwrap().expect("model says present");
            let model_data = model.remove_node(id).expect("model agrees");
            assert_eq!(deleted.data, model_data, "deleted record mismatch");
            graveyard.push((deleted.data, deleted.incoming));
            true
        }
        Op::ReinsertNode(i) => {
            if graveyard.is_empty() {
                return false;
            }
            let (mut data, incoming) = graveyard.remove(i % graveyard.len());
            // Drop references to nodes that died after this one.
            data.successors.retain(|e| model.node(e.to).is_some());
            data.predecessors.retain(|p| model.node(*p).is_some());
            let incoming: Vec<(NodeId, u32)> = incoming
                .into_iter()
                .filter(|(p, _)| model.node(*p).is_some())
                .collect();
            am.insert_node(&data, &incoming).unwrap();
            // Mirror in the model.
            model.add_node(data.id, data.x, data.y, data.payload.clone());
            for e in &data.successors {
                model.add_edge(data.id, e.to, e.cost);
            }
            for &(p, c) in &incoming {
                model.add_edge(p, data.id, c);
            }
            true
        }
        Op::InsertEdge(a, b, cost) => {
            let ids = model.node_ids();
            if ids.len() < 2 {
                return false;
            }
            let from = ids[a % ids.len()];
            let to = ids[b % ids.len()];
            if from == to {
                return false; // road networks have no self-loops
            }
            if model
                .node(from)
                .unwrap()
                .successors
                .iter()
                .any(|e| e.to == to)
            {
                // Duplicate edges must be rejected by the AM too.
                assert!(!am.insert_edge(from, to, *cost).unwrap());
                return false;
            }
            assert!(am.insert_edge(from, to, *cost).unwrap());
            model.add_edge(from, to, *cost);
            true
        }
        Op::DeleteEdge(i) => {
            let edges: Vec<(NodeId, NodeId, u32)> = model.edges().collect();
            if edges.is_empty() {
                return false;
            }
            let (from, to, cost) = edges[i % edges.len()];
            assert_eq!(am.delete_edge(from, to).unwrap(), Some(cost));
            assert_eq!(model.remove_edge(from, to), Some(cost));
            true
        }
    }
}

/// Full equivalence check between AM contents and the model.
fn check_equiv(am: &dyn AccessMethod, model: &Network) {
    assert_eq!(am.file().len(), model.len(), "record count");
    for id in model.node_ids() {
        let rec = am
            .find(id)
            .unwrap()
            .unwrap_or_else(|| panic!("{id:?} lost"));
        let want = model.node(id).unwrap();
        assert_eq!(rec.id, want.id);
        assert_eq!((rec.x, rec.y), (want.x, want.y));
        assert_eq!(rec.payload, want.payload);
        let mut got_s: Vec<EdgeTo> = rec.successors.clone();
        let mut want_s: Vec<EdgeTo> = want.successors.clone();
        got_s.sort_by_key(|e| e.to);
        want_s.sort_by_key(|e| e.to);
        assert_eq!(got_s, want_s, "successors of {id:?}");
        let mut got_p = rec.predecessors.clone();
        let mut want_p = want.predecessors.clone();
        got_p.sort_unstable();
        want_p.sort_unstable();
        assert_eq!(got_p, want_p, "predecessors of {id:?}");
    }
    let crr = am.crr().unwrap();
    assert!((0.0..=1.0).contains(&crr));
}

fn run_ops(mut am: Box<dyn AccessMethod>, ops: &[Op]) {
    let mut model = grid_network(6, 6, 0.7);
    let mut graveyard = Vec::new();
    for op in ops {
        apply(am.as_mut(), &mut model, &mut graveyard, op);
    }
    check_equiv(am.as_ref(), &model);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ccam_matches_model_under_every_policy(
        ops in prop::collection::vec(op(), 1..40),
        policy_sel in 0usize..4,
    ) {
        let net = grid_network(6, 6, 0.7);
        let policy = [
            ReorgPolicy::FirstOrder,
            ReorgPolicy::SecondOrder,
            ReorgPolicy::HigherOrder,
            ReorgPolicy::Lazy { every: 3 },
        ][policy_sel];
        let am = CcamBuilder::new(512).policy(policy).build_static(&net).unwrap();
        run_ops(Box::new(am), &ops);
    }

    #[test]
    fn topo_ams_match_model(
        ops in prop::collection::vec(op(), 1..40),
        order_sel in 0usize..2,
    ) {
        let net = grid_network(6, 6, 0.7);
        let order = [TraversalOrder::DepthFirst, TraversalOrder::BreadthFirst][order_sel];
        let am = TopoAm::create(&net, 512, order, None, &HashMap::new()).unwrap();
        run_ops(Box::new(am), &ops);
    }

    #[test]
    fn grid_am_matches_model(ops in prop::collection::vec(op(), 1..40)) {
        let net = grid_network(6, 6, 0.7);
        let am = GridAm::create(&net, 512).unwrap();
        run_ops(Box::new(am), &ops);
    }
}

/// Workload traces: parse ∘ format is the identity for arbitrary op
/// sequences (fuzzed constructor side), and replay never panics on
/// arbitrary traces over a small network.
mod workload_props {
    use ccam_core::am::{AccessMethod, CcamBuilder};
    use ccam_core::workload::{format_trace, parse_trace, replay, Op};
    use ccam_graph::generators::grid_network;
    use ccam_graph::NodeId;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = Op> {
        let node = any::<u64>().prop_map(NodeId);
        prop_oneof![
            node.clone().prop_map(Op::Find),
            node.clone().prop_map(Op::Successors),
            (node.clone(), node.clone()).prop_map(|(a, b)| Op::ASuccessor(a, b)),
            prop::collection::vec(node.clone(), 2..8).prop_map(Op::Route),
            (node.clone(), node.clone()).prop_map(|(a, b)| Op::AStar(a, b)),
            (node.clone(), node.clone(), any::<u32>())
                .prop_map(|(a, b, c)| Op::InsertEdge(a, b, c)),
            (node.clone(), node.clone()).prop_map(|(a, b)| Op::DeleteEdge(a, b)),
            node.clone().prop_map(Op::DeleteNode),
            node.prop_map(Op::ReinsertNode),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn trace_text_roundtrip(ops in prop::collection::vec(arb_op(), 0..40)) {
            let text = format_trace(&ops);
            let parsed = parse_trace(&text).unwrap();
            prop_assert_eq!(parsed, ops);
        }

        /// Replay over arbitrary (mostly-missing) ids is total: it counts
        /// misses instead of failing, and leaves the file consistent.
        #[test]
        fn replay_is_total(ops in prop::collection::vec(arb_op(), 0..30)) {
            let net = grid_network(4, 4, 1.0);
            let mut am = CcamBuilder::new(512).build_static(&net).unwrap();
            let stats = replay(&mut am, &ops).unwrap();
            prop_assert_eq!(stats.executed, ops.len());
            let report = ccam_core::check::verify(am.file()).unwrap();
            prop_assert!(report.is_clean(), "{:?}", report.issues);
        }
    }
}
