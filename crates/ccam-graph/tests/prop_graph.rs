//! Property tests for the network model, record codec, and generators.

use ccam_graph::record::{decode_record, encode_record, encoded_len, peek_id};
use ccam_graph::{EdgeTo, Network, NodeData, NodeId};
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeData> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..64),
        prop::collection::vec((any::<u64>(), any::<u32>()), 0..12),
        prop::collection::vec(any::<u64>(), 0..12),
    )
        .prop_map(|(id, x, y, payload, succs, preds)| NodeData {
            id: NodeId(id),
            x,
            y,
            payload,
            successors: succs
                .into_iter()
                .map(|(to, cost)| EdgeTo {
                    to: NodeId(to),
                    cost,
                })
                .collect(),
            predecessors: preds.into_iter().map(NodeId).collect(),
        })
}

proptest! {
    /// The record codec is a bijection and its length function is exact.
    #[test]
    fn record_codec_roundtrip(node in arb_node()) {
        let buf = encode_record(&node);
        prop_assert_eq!(buf.len(), encoded_len(&node));
        prop_assert_eq!(peek_id(&buf), node.id);
        prop_assert_eq!(decode_record(&buf), node);
    }

    /// Network edge insert/remove sequences keep successor/predecessor
    /// lists mutually consistent.
    #[test]
    fn network_edges_stay_consistent(
        n in 2usize..12,
        ops in prop::collection::vec((any::<usize>(), any::<usize>(), any::<bool>()), 1..80),
    ) {
        let mut net = Network::new();
        for i in 0..n {
            net.add_node(NodeId(i as u64), i as u32, 0, vec![]);
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (a, b, insert) in ops {
            let from = NodeId((a % n) as u64);
            let to = NodeId((b % n) as u64);
            if insert {
                if from != to && !edges.contains(&(from, to)) {
                    net.add_edge(from, to, 1);
                    edges.push((from, to));
                }
            } else if let Some(pos) = edges.iter().position(|&e| e == (from, to)) {
                prop_assert_eq!(net.remove_edge(from, to), Some(1));
                edges.remove(pos);
            } else {
                prop_assert_eq!(net.remove_edge(from, to), None);
            }
            net.validate();
            prop_assert_eq!(net.num_edges(), edges.len());
        }
    }

    /// Removing any node leaves a consistent network with no references
    /// to the removed node.
    #[test]
    fn node_removal_is_clean(victim_sel in any::<usize>(), seed in any::<u64>()) {
        let mut net = ccam_graph::generators::random_network(20, 60, 1 << 12, seed);
        let ids = net.node_ids();
        let victim = ids[victim_sel % ids.len()];
        net.remove_node(victim).unwrap();
        net.validate();
        for n in net.nodes() {
            prop_assert!(!n.successors.iter().any(|e| e.to == victim));
            prop_assert!(!n.predecessors.contains(&victim));
        }
    }

    /// Network save/load round-trips exactly.
    #[test]
    fn network_io_roundtrip(seed in any::<u64>(), n in 2usize..30) {
        let net = ccam_graph::generators::random_network(n, n * 3, 1 << 12, seed);
        let mut path = std::env::temp_dir();
        path.push(format!("ccam-propio-{}-{seed}-{n}", std::process::id()));
        ccam_graph::save_network(&net, &path).unwrap();
        let back = ccam_graph::load_network(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.len(), net.len());
        for id in net.node_ids() {
            prop_assert_eq!(back.node(id).unwrap(), net.node(id).unwrap());
        }
    }

    /// Road-map generator invariants across seeds: exact counts,
    /// uniqueness of ids, undirected connectivity.
    #[test]
    fn roadmap_invariants(seed in 0u64..50) {
        let cfg = ccam_graph::roadmap::RoadMapConfig {
            grid_w: 8,
            grid_h: 8,
            removed_nodes: 2,
            target_segments: 90,
            target_directed: 160,
            cell: 64,
            jitter: 24,
            seed,
        };
        let net = ccam_graph::roadmap::road_map(&cfg);
        prop_assert_eq!(net.len(), 62);
        prop_assert_eq!(net.num_edges(), 160);
        net.validate();
        // Undirected connectivity.
        let ids = net.node_ids();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![ids[0]];
        seen.insert(ids[0]);
        while let Some(v) = stack.pop() {
            for nb in net.node(v).unwrap().neighbors() {
                if seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        prop_assert_eq!(seen.len(), net.len());
    }
}
