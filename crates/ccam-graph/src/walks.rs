//! Random-walk route workloads.
//!
//! "We generate routes by performing random walks on the network. ... A
//! route of length L has L nodes and L−1 edges. Each set contains 100
//! routes. The weights on the edges of the network are derived by
//! counting the number of times that an edge is accessed by those
//! routes." (paper §4.3)

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::network::{Network, NodeId};

/// A route: a connected node sequence following successor edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The nodes, in travel order.
    pub nodes: Vec<NodeId>,
}

impl Route {
    /// Number of nodes (the paper's route length `L`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a degenerate empty route.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `L − 1` directed edges of the route.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}

/// Generates `count` random-walk routes of exactly `length` nodes each.
///
/// A walk starts at a uniformly random node and repeatedly follows a
/// uniformly random successor edge; walks that strand on a node without
/// successors restart from scratch. Panics (after a bounded number of
/// retries) if the network cannot support walks of the requested length —
/// e.g. an edgeless network.
pub fn random_walk_routes(net: &Network, count: usize, length: usize, seed: u64) -> Vec<Route> {
    assert!(length >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = net.node_ids();
    assert!(!ids.is_empty(), "empty network");
    let mut routes = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count * 1000;
    while routes.len() < count {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "network cannot support {count} walks of length {length}"
        );
        let mut nodes = Vec::with_capacity(length);
        let mut cur = ids[rng.random_range(0..ids.len())];
        nodes.push(cur);
        while nodes.len() < length {
            let succ = &net.node(cur).expect("walk stays in network").successors;
            if succ.is_empty() {
                break; // stranded — restart
            }
            cur = succ[rng.random_range(0..succ.len())].to;
            nodes.push(cur);
        }
        if nodes.len() == length {
            routes.push(Route { nodes });
        }
    }
    routes
}

/// Generates `count` commuter routes: shortest paths between random
/// origin/destination pairs — the workload the paper's IVHS motivation
/// actually describes ("evaluating a set of familiar routes" between
/// home and work, §1.1). Compared with random walks, commuter routes
/// never revisit nodes and follow cost-optimal corridors, concentrating
/// edge weight on arterials.
///
/// Pairs whose destination is unreachable are redrawn; gives up (panics)
/// when the network cannot supply `count` connected pairs.
pub fn commuter_routes(net: &Network, count: usize, seed: u64) -> Vec<Route> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = net.node_ids();
    assert!(ids.len() >= 2, "need at least two nodes");
    let mut routes = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while routes.len() < count {
        attempts += 1;
        assert!(
            attempts <= count * 200,
            "network cannot supply {count} connected O/D pairs"
        );
        let o = ids[rng.random_range(0..ids.len())];
        let d = ids[rng.random_range(0..ids.len())];
        if o == d {
            continue;
        }
        if let Some(nodes) = shortest_path(net, o, d) {
            if nodes.len() >= 2 {
                routes.push(Route { nodes });
            }
        }
    }
    routes
}

/// In-memory Dijkstra used by the workload generator (queries over access
/// methods live in `ccam-core`; the generator must not depend on it).
fn shortest_path(net: &Network, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push(Reverse((0u64, from)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if v == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if dist.get(&v).copied().unwrap_or(u64::MAX) < d {
            continue;
        }
        for e in &net.node(v)?.successors {
            let nd = d + e.cost as u64;
            if nd < dist.get(&e.to).copied().unwrap_or(u64::MAX) {
                dist.insert(e.to, nd);
                prev.insert(e.to, v);
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    None
}

/// Edge access counts over a route workload: the WCRR edge weights of
/// §4.3. Only edges traversed at least once appear in the map.
pub fn edge_weights_from_routes(routes: &[Route]) -> HashMap<(NodeId, NodeId), u64> {
    let mut weights = HashMap::new();
    for route in routes {
        for e in route.edges() {
            *weights.entry(e).or_insert(0) += 1;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid_network;

    #[test]
    fn routes_have_requested_shape() {
        let net = grid_network(6, 6, 1.0);
        let routes = random_walk_routes(&net, 20, 10, 99);
        assert_eq!(routes.len(), 20);
        for r in &routes {
            assert_eq!(r.len(), 10);
            assert_eq!(r.edges().count(), 9);
        }
    }

    #[test]
    fn routes_follow_real_edges() {
        let net = grid_network(5, 5, 0.5);
        for r in random_walk_routes(&net, 30, 8, 7) {
            for (a, b) in r.edges() {
                assert!(
                    net.node(a).unwrap().successors.iter().any(|e| e.to == b),
                    "{a:?} -> {b:?} is not a network edge"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = grid_network(6, 6, 1.0);
        assert_eq!(
            random_walk_routes(&net, 10, 10, 5),
            random_walk_routes(&net, 10, 10, 5)
        );
        assert_ne!(
            random_walk_routes(&net, 10, 10, 5),
            random_walk_routes(&net, 10, 10, 6)
        );
    }

    #[test]
    fn weights_count_traversals() {
        let a = NodeId(1);
        let b = NodeId(2);
        let c = NodeId(3);
        let routes = vec![
            Route {
                nodes: vec![a, b, c],
            },
            Route { nodes: vec![a, b] },
        ];
        let w = edge_weights_from_routes(&routes);
        assert_eq!(w[&(a, b)], 2);
        assert_eq!(w[&(b, c)], 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.values().sum::<u64>(), 3); // total edge accesses
    }

    #[test]
    fn total_weight_is_routes_times_length_minus_one() {
        let net = grid_network(8, 8, 1.0);
        let routes = random_walk_routes(&net, 100, 20, 1);
        let w = edge_weights_from_routes(&routes);
        assert_eq!(w.values().sum::<u64>(), 100 * 19);
    }

    #[test]
    fn commuter_routes_are_shortest_paths() {
        let net = grid_network(8, 8, 1.0);
        let routes = commuter_routes(&net, 25, 11);
        assert_eq!(routes.len(), 25);
        for r in &routes {
            // Simple paths (no revisits) over real edges.
            let mut seen = std::collections::HashSet::new();
            for &n in &r.nodes {
                assert!(seen.insert(n), "commuter route revisited {n:?}");
            }
            for (a, b) in r.edges() {
                assert!(net.node(a).unwrap().successors.iter().any(|e| e.to == b));
            }
            // On a unit-cost grid the path length equals the Manhattan
            // distance + 1 (shortest-path property).
            let s = net.node(r.nodes[0]).unwrap();
            let t = net.node(*r.nodes.last().unwrap()).unwrap();
            let manhattan =
                (s.x as i64 - t.x as i64).unsigned_abs() + (s.y as i64 - t.y as i64).unsigned_abs();
            assert_eq!(r.len() as u64, manhattan + 1, "not a shortest path");
        }
    }

    #[test]
    fn commuter_routes_deterministic() {
        let net = grid_network(6, 6, 1.0);
        assert_eq!(commuter_routes(&net, 10, 3), commuter_routes(&net, 10, 3));
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn edgeless_network_panics_for_long_walks() {
        let mut net = Network::new();
        net.add_node(NodeId(1), 0, 0, vec![]);
        random_walk_routes(&net, 1, 2, 0);
    }

    #[test]
    fn length_one_routes_work_everywhere() {
        let mut net = Network::new();
        net.add_node(NodeId(1), 0, 0, vec![]);
        let r = random_walk_routes(&net, 3, 1, 0);
        assert_eq!(r.len(), 3);
    }
}
