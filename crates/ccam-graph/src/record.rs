//! Variable-length binary codec for node records.
//!
//! "For each node, a record stores the node data, successor-list and
//! predecessor-list. ... the records do not have fixed formats, since the
//! size of the successor-list and predecessor-list varies across nodes."
//! (paper §2.1). Coordinates are stored too, "since our benchmark
//! networks are embedded in geographic space".
//!
//! Layout (little-endian):
//!
//! ```text
//! id: u64 | x: u32 | y: u32
//! payload_len: u16 | payload bytes
//! succ_count: u16  | (to: u64, cost: u32)*
//! pred_count: u16  | (from: u64)*
//! ```

use crate::network::{EdgeTo, NodeData, NodeId};

const FIXED: usize = 8 + 4 + 4 + 2 + 2 + 2;
const SUCC_ENTRY: usize = 12;
const PRED_ENTRY: usize = 8;

/// Exact encoded size of `node`, in bytes. The clustering algorithms use
/// this as the node's weight against the page byte budget.
pub fn encoded_len(node: &NodeData) -> usize {
    FIXED
        + node.payload.len()
        + SUCC_ENTRY * node.successors.len()
        + PRED_ENTRY * node.predecessors.len()
}

/// Serialises `node` into a fresh byte vector.
pub fn encode_record(node: &NodeData) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(node));
    out.extend_from_slice(&node.id.0.to_le_bytes());
    out.extend_from_slice(&node.x.to_le_bytes());
    out.extend_from_slice(&node.y.to_le_bytes());
    out.extend_from_slice(&(node.payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&node.payload);
    out.extend_from_slice(&(node.successors.len() as u16).to_le_bytes());
    for e in &node.successors {
        out.extend_from_slice(&e.to.0.to_le_bytes());
        out.extend_from_slice(&e.cost.to_le_bytes());
    }
    out.extend_from_slice(&(node.predecessors.len() as u16).to_le_bytes());
    for p in &node.predecessors {
        out.extend_from_slice(&p.0.to_le_bytes());
    }
    debug_assert_eq!(out.len(), encoded_len(node));
    out
}

/// Deserialises a record produced by [`encode_record`].
///
/// Panics on truncated input — records only ever come from pages this
/// library wrote.
pub fn decode_record(buf: &[u8]) -> NodeData {
    let mut at = 0usize;
    let mut take = |n: usize| {
        let s = &buf[at..at + n];
        at += n;
        s
    };
    let id = NodeId(u64::from_le_bytes(take(8).try_into().unwrap()));
    let x = u32::from_le_bytes(take(4).try_into().unwrap());
    let y = u32::from_le_bytes(take(4).try_into().unwrap());
    let plen = u16::from_le_bytes(take(2).try_into().unwrap()) as usize;
    let payload = take(plen).to_vec();
    let scount = u16::from_le_bytes(take(2).try_into().unwrap()) as usize;
    let mut successors = Vec::with_capacity(scount);
    for _ in 0..scount {
        let to = NodeId(u64::from_le_bytes(take(8).try_into().unwrap()));
        let cost = u32::from_le_bytes(take(4).try_into().unwrap());
        successors.push(EdgeTo { to, cost });
    }
    let pcount = u16::from_le_bytes(take(2).try_into().unwrap()) as usize;
    let mut predecessors = Vec::with_capacity(pcount);
    for _ in 0..pcount {
        predecessors.push(NodeId(u64::from_le_bytes(take(8).try_into().unwrap())));
    }
    NodeData {
        id,
        x,
        y,
        payload,
        successors,
        predecessors,
    }
}

/// Reads only the node id from an encoded record (page scans looking for
/// a specific node avoid full decodes).
#[inline]
pub fn peek_id(buf: &[u8]) -> NodeId {
    NodeId(u64::from_le_bytes(buf[..8].try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeData {
        NodeData {
            id: NodeId(0xDEADBEEF),
            x: 123,
            y: 456,
            payload: vec![1, 2, 3, 4, 5],
            successors: vec![
                EdgeTo {
                    to: NodeId(7),
                    cost: 70,
                },
                EdgeTo {
                    to: NodeId(9),
                    cost: 90,
                },
            ],
            predecessors: vec![NodeId(7), NodeId(11)],
        }
    }

    #[test]
    fn roundtrip() {
        let n = sample();
        let buf = encode_record(&n);
        assert_eq!(buf.len(), encoded_len(&n));
        assert_eq!(decode_record(&buf), n);
    }

    #[test]
    fn roundtrip_empty_lists() {
        let n = NodeData {
            id: NodeId(1),
            x: 0,
            y: 0,
            payload: vec![],
            successors: vec![],
            predecessors: vec![],
        };
        let buf = encode_record(&n);
        assert_eq!(buf.len(), FIXED);
        assert_eq!(decode_record(&buf), n);
    }

    #[test]
    fn peek_id_reads_without_decode() {
        let buf = encode_record(&sample());
        assert_eq!(peek_id(&buf), NodeId(0xDEADBEEF));
    }

    #[test]
    fn size_grows_with_degree() {
        let mut n = sample();
        let before = encoded_len(&n);
        n.successors.push(EdgeTo {
            to: NodeId(99),
            cost: 1,
        });
        assert_eq!(encoded_len(&n), before + SUCC_ENTRY);
        n.predecessors.push(NodeId(99));
        assert_eq!(encoded_len(&n), before + SUCC_ENTRY + PRED_ENTRY);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let n = NodeData {
            id: NodeId(u64::MAX),
            x: u32::MAX,
            y: u32::MAX,
            payload: vec![0xFF; 1000],
            successors: vec![EdgeTo {
                to: NodeId(u64::MAX),
                cost: u32::MAX,
            }],
            predecessors: vec![NodeId(0)],
        };
        assert_eq!(decode_record(&encode_record(&n)), n);
    }
}
