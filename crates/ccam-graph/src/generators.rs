//! Synthetic network generators for tests and benchmarks.
//!
//! All generators are deterministic given their parameters (and seed,
//! where randomised), so every experiment regenerates identical inputs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ccam_index::zorder::z_encode;

use crate::network::{Network, NodeId};

/// Node id for a point: its Z-order code — the paper's id convention
/// ("node-id values ... represent the Z-order of the location", §2.2).
pub fn zorder_id(x: u32, y: u32) -> NodeId {
    NodeId(z_encode(x, y))
}

/// A `w × h` rectangular grid road network with unit-ish edge costs.
///
/// `two_way_fraction` of the grid segments get edges in both directions;
/// the rest are one-way (alternating direction by parity, deterministic).
/// Node ids are Z-order codes of the coordinates.
pub fn grid_network(w: u32, h: u32, two_way_fraction: f64) -> Network {
    let mut net = Network::new();
    for y in 0..h {
        for x in 0..w {
            net.add_node(zorder_id(x, y), x, y, vec![0u8; 8]);
        }
    }
    let mut segment = 0u64;
    let mut add = |net: &mut Network, a: NodeId, b: NodeId| {
        // Deterministic "fraction" via a rolling counter.
        let two_way = (segment as f64 * two_way_fraction).fract() + two_way_fraction >= 1.0;
        if two_way {
            net.add_edge_bidir(a, b, 1);
        } else if segment.is_multiple_of(2) {
            net.add_edge(a, b, 1);
        } else {
            net.add_edge(b, a, 1);
        }
        segment += 1;
    };
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                add(&mut net, zorder_id(x, y), zorder_id(x + 1, y));
            }
            if y + 1 < h {
                add(&mut net, zorder_id(x, y), zorder_id(x, y + 1));
            }
        }
    }
    net
}

/// A directed path `0 → 1 → ... → n-1` (ids are Z-orders of `(i, 0)`).
pub fn path_network(n: u32) -> Network {
    let mut net = Network::new();
    for i in 0..n {
        net.add_node(zorder_id(i, 0), i, 0, vec![0u8; 8]);
    }
    for i in 0..n.saturating_sub(1) {
        net.add_edge(zorder_id(i, 0), zorder_id(i + 1, 0), 1);
    }
    net
}

/// A star: hub at the centre with `spokes` bidirectional edges.
pub fn star_network(spokes: u32) -> Network {
    let mut net = Network::new();
    let hub = zorder_id(1000, 1000);
    net.add_node(hub, 1000, 1000, vec![0u8; 8]);
    for i in 0..spokes {
        let id = zorder_id(i, 0);
        net.add_node(id, i, 0, vec![0u8; 8]);
        net.add_edge_bidir(hub, id, 1);
    }
    net
}

/// A random connected directed network: `n` nodes scattered in
/// `[0, extent)²`, a random spanning tree (bidirectional, guarantees
/// connectivity) plus extra random directed edges up to ~`m` total.
pub fn random_network(n: usize, m: usize, extent: u32, seed: u64) -> Network {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let mut coords: Vec<(u32, u32)> = Vec::with_capacity(n);
    while coords.len() < n {
        let p = (rng.random_range(0..extent), rng.random_range(0..extent));
        // Z-order ids must be unique: retry coordinate collisions.
        if !coords.contains(&p) {
            coords.push(p);
        }
    }
    let ids: Vec<NodeId> = coords.iter().map(|&(x, y)| zorder_id(x, y)).collect();
    for (&id, &(x, y)) in ids.iter().zip(&coords) {
        net.add_node(id, x, y, vec![0u8; 8]);
    }
    // Spanning tree: attach each node to a random earlier node.
    for i in 1..n {
        let j = rng.random_range(0..i);
        let cost = 1 + rng.random_range(0..10);
        net.add_edge_bidir(ids[i], ids[j], cost);
    }
    // Extra directed edges.
    let mut edges = net.num_edges();
    let mut attempts = 0;
    while edges < m && attempts < m * 20 {
        attempts += 1;
        let a = ids[rng.random_range(0..n)];
        let b = ids[rng.random_range(0..n)];
        if a == b || net.node(a).unwrap().successors.iter().any(|e| e.to == b) {
            continue;
        }
        net.add_edge(a, b, 1 + rng.random_range(0..10));
        edges += 1;
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = grid_network(4, 3, 1.0);
        assert_eq!(g.len(), 12);
        // 4x3 grid: 3*3 horizontal + 4*2 vertical = 17 segments, all two-way.
        assert_eq!(g.num_edges(), 34);
        g.validate();
    }

    #[test]
    fn grid_one_way_fraction() {
        let all_two = grid_network(5, 5, 1.0);
        let half = grid_network(5, 5, 0.5);
        let none = grid_network(5, 5, 0.0);
        assert!(none.num_edges() < half.num_edges());
        assert!(half.num_edges() < all_two.num_edges());
        // 40 segments in a 5x5 grid.
        assert_eq!(none.num_edges(), 40);
        assert_eq!(all_two.num_edges(), 80);
        half.validate();
    }

    #[test]
    fn grid_ids_are_zorder() {
        let g = grid_network(3, 3, 1.0);
        let n = g.node(zorder_id(2, 1)).unwrap();
        assert_eq!((n.x, n.y), (2, 1));
    }

    #[test]
    fn path_and_star() {
        let p = path_network(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.num_edges(), 4);
        p.validate();
        let s = star_network(6);
        assert_eq!(s.len(), 7);
        assert_eq!(s.num_edges(), 12);
        assert_eq!(s.node(zorder_id(1000, 1000)).unwrap().successors.len(), 6);
        s.validate();
    }

    #[test]
    fn random_network_connected_and_deterministic() {
        let a = random_network(50, 150, 1 << 12, 42);
        let b = random_network(50, 150, 1 << 12, 42);
        assert_eq!(a.len(), 50);
        assert!(a.num_edges() >= 98, "spanning tree must be present");
        a.validate();
        // Determinism.
        assert_eq!(a.node_ids(), b.node_ids());
        assert_eq!(a.num_edges(), b.num_edges());
        // Different seeds differ.
        let c = random_network(50, 150, 1 << 12, 43);
        assert_ne!(a.node_ids(), c.node_ids());
    }
}
