#![warn(missing_docs)]

//! Network model and workloads for the CCAM reproduction.
//!
//! * [`network`] — the adjacency-list network model of the paper §1.2:
//!   nodes with coordinates, application payload, a successor-list
//!   (outgoing edges with costs) and a predecessor-list (incoming edge
//!   sources, used to patch successor lists during `Insert()`/`Delete()`),
//! * [`record`] — the variable-length binary codec that turns a node into
//!   the record stored on a data page,
//! * [`generators`] — synthetic networks (grids, random, paths, stars)
//!   for tests and benches,
//! * [`roadmap`] — the Minneapolis-like road network used by every
//!   experiment (the substitution for the paper's 1079-node / 3057-edge
//!   Minneapolis road map; see DESIGN.md §4),
//! * [`walks`] — random-walk route generation and the derived edge
//!   weights for the WCRR experiments (paper §4.3).

pub mod generators;
pub mod io;
pub mod network;
pub mod record;
pub mod roadmap;
pub mod walks;

pub use io::{load_network, save_network};
pub use network::{EdgeTo, Network, NodeData, NodeId};
pub use record::{decode_record, encode_record, encoded_len};
pub use roadmap::minneapolis_like;
pub use walks::{commuter_routes, edge_weights_from_routes, random_walk_routes, Route};
