//! Synthetic road-map generator — the stand-in for the paper's
//! Minneapolis road map.
//!
//! The paper's experiments run on "the Minneapolis road map consisted of
//! 1079 nodes and 3057 edges, representing the road intersections and
//! highway segments for a 20-square-mile section of the Minneapolis
//! area" (§4). That 1990s dataset is not redistributable, so this module
//! generates a network with the same characteristics that drive CCAM's
//! behaviour (DESIGN.md §4 records the substitution):
//!
//! * the same node count and (directed) edge count,
//! * mean out-degree `|A| ≈ 2.83` and mean neighbor-list size `λ ≈ 3.2`
//!   (achieved with a calibrated mix of two-way and one-way streets),
//! * planar, grid-like connectivity with jittered intersection
//!   coordinates (connectivity correlates with spatial proximity, the
//!   property the Grid File exploits in §4.1),
//! * node ids assigned as the Z-order of the coordinates, the paper's id
//!   convention.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::generators::zorder_id;
use crate::network::{Network, NodeId};

/// Parameters of the road-map generator.
#[derive(Debug, Clone)]
pub struct RoadMapConfig {
    /// Lattice width (intersections per row before removals).
    pub grid_w: u32,
    /// Lattice height.
    pub grid_h: u32,
    /// Intersections removed to break the perfect lattice.
    pub removed_nodes: usize,
    /// Road segments kept (undirected pairs).
    pub target_segments: usize,
    /// Directed edges after one-way/two-way assignment.
    pub target_directed: usize,
    /// Coordinate distance between adjacent lattice points.
    pub cell: u32,
    /// Maximum coordinate jitter (must stay below `cell / 2`).
    pub jitter: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RoadMapConfig {
    /// The Minneapolis-calibrated configuration: 33×33 lattice − 10
    /// intersections = 1079 nodes; 1726 segments of which 1331 two-way →
    /// 3057 directed edges, giving |A| = 2.833 and λ = 3.200 exactly as
    /// reported under Table 5.
    pub fn minneapolis(seed: u64) -> Self {
        RoadMapConfig {
            grid_w: 33,
            grid_h: 33,
            removed_nodes: 10,
            target_segments: 1726,
            target_directed: 3057,
            cell: 64,
            jitter: 24,
            seed,
        }
    }
}

impl RoadMapConfig {
    /// A Minneapolis-*proportioned* configuration at an arbitrary lattice
    /// size: ~1.6 road segments and ~2.83 directed edges per intersection,
    /// 1% of intersections removed. Used by the scaling experiment and
    /// the CLI generator.
    pub fn scaled(grid: u32, seed: u64) -> Self {
        assert!(grid >= 3, "lattice too small to keep a border");
        let nodes = grid * grid;
        RoadMapConfig {
            grid_w: grid,
            grid_h: grid,
            removed_nodes: (nodes / 100) as usize,
            target_segments: (nodes as f64 * 1.6) as usize,
            target_directed: (nodes as f64 * 2.83) as usize,
            cell: 64,
            jitter: 24,
            seed,
        }
    }
}

/// Generates the Minneapolis-like benchmark network.
pub fn minneapolis_like(seed: u64) -> Network {
    road_map(&RoadMapConfig::minneapolis(seed))
}

/// Generates a road network per `cfg`. See the module docs.
pub fn road_map(cfg: &RoadMapConfig) -> Network {
    assert!(cfg.jitter * 2 < cfg.cell, "jitter must not collide cells");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let w = cfg.grid_w as usize;
    let h = cfg.grid_h as usize;

    // 1. Lattice minus a few random intersections.
    let mut alive = vec![true; w * h];
    let mut removed = 0;
    while removed < cfg.removed_nodes {
        let v = rng.random_range(0..w * h);
        // Keep the border intact so removals cannot disconnect corners.
        let (x, y) = (v % w, v / w);
        if alive[v] && x > 0 && y > 0 && x < w - 1 && y < h - 1 {
            alive[v] = false;
            removed += 1;
        }
    }

    // 2. Jittered coordinates and Z-order ids.
    let mut coord = vec![(0u32, 0u32); w * h];
    let mut net = Network::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if !alive[v] {
                continue;
            }
            let cx = (x as u32 + 1) * cfg.cell + rng.random_range(0..=2 * cfg.jitter) - cfg.jitter;
            let cy = (y as u32 + 1) * cfg.cell + rng.random_range(0..=2 * cfg.jitter) - cfg.jitter;
            coord[v] = (cx, cy);
            // Variable-size application payload (street attributes).
            let payload_len = 4 + rng.random_range(0..9);
            let payload: Vec<u8> = (0..payload_len)
                .map(|_| rng.random_range(0..=255))
                .collect();
            net.add_node(zorder_id(cx, cy), cx, cy, payload);
        }
    }

    // 3. Candidate segments: lattice-adjacent alive pairs.
    let mut segments: Vec<(usize, usize)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if !alive[v] {
                continue;
            }
            if x + 1 < w && alive[v + 1] {
                segments.push((v, v + 1));
            }
            if y + 1 < h && alive[v + w] {
                segments.push((v, v + w));
            }
        }
    }

    // 4. Thin to the target count, keeping the street graph connected.
    segments.shuffle(&mut rng);
    let mut kept = segments.clone();
    let mut i = 0;
    while kept.len() > cfg.target_segments && i < kept.len() {
        let candidate = kept[i];
        let mut trial = kept.clone();
        trial.remove(i);
        if undirected_connected(w * h, &alive, &trial) {
            kept = trial;
            // Do not advance: position i now holds the next candidate.
        } else {
            i += 1;
        }
        let _ = candidate;
    }

    // 5. One-way / two-way assignment hitting the directed-edge target.
    let two_way = cfg
        .target_directed
        .saturating_sub(kept.len())
        .min(kept.len());
    for (si, &(a, b)) in kept.iter().enumerate() {
        let (ida, idb) = (id_of(coord[a]), id_of(coord[b]));
        let cost = travel_time(coord[a], coord[b], &mut rng);
        if si < two_way {
            net.add_edge_bidir(ida, idb, cost);
        } else if rng.random_range(0..2u32) == 0 {
            net.add_edge(ida, idb, cost);
        } else {
            net.add_edge(idb, ida, cost);
        }
    }

    net
}

fn id_of((x, y): (u32, u32)) -> NodeId {
    zorder_id(x, y)
}

/// Travel time: scaled Euclidean distance plus congestion noise.
fn travel_time(a: (u32, u32), b: (u32, u32), rng: &mut StdRng) -> u32 {
    let dx = a.0 as f64 - b.0 as f64;
    let dy = a.1 as f64 - b.1 as f64;
    let dist = (dx * dx + dy * dy).sqrt();
    (dist / 4.0) as u32 + 1 + rng.random_range(0..8)
}

/// Connectivity of the alive nodes under the given undirected segments.
fn undirected_connected(n: usize, alive: &[bool], segments: &[(usize, usize)]) -> bool {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in segments {
        adj[a].push(b);
        adj[b].push(a);
    }
    let start = match (0..n).find(|&v| alive[v]) {
        Some(s) => s,
        None => return true,
    };
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start] = true;
    let mut visited = 0usize;
    while let Some(v) = stack.pop() {
        visited += 1;
        for &u in &adj[v] {
            if !seen[u] {
                seen[u] = true;
                stack.push(u);
            }
        }
    }
    visited == alive.iter().filter(|&&a| a).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minneapolis_counts_match_the_paper() {
        let net = minneapolis_like(1995);
        assert_eq!(net.len(), 1079, "node count");
        assert_eq!(net.num_edges(), 3057, "directed edge count");
        net.validate();
    }

    #[test]
    fn minneapolis_degree_statistics() {
        let net = minneapolis_like(1995);
        let a = net.avg_out_degree();
        let lambda = net.avg_neighbor_count();
        assert!((a - 2.833).abs() < 0.02, "|A| = {a}");
        assert!((lambda - 3.20).abs() < 0.05, "lambda = {lambda}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = minneapolis_like(7);
        let b = minneapolis_like(7);
        assert_eq!(a.node_ids(), b.node_ids());
        assert_eq!(a.num_edges(), b.num_edges());
        let c = minneapolis_like(8);
        assert_ne!(a.node_ids(), c.node_ids());
    }

    #[test]
    fn street_graph_is_connected() {
        let net = minneapolis_like(3);
        // Undirected reachability over successor∪predecessor lists.
        let ids = net.node_ids();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![ids[0]];
        seen.insert(ids[0]);
        while let Some(v) = stack.pop() {
            for n in net.node(v).unwrap().neighbors() {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        assert_eq!(seen.len(), net.len(), "road network must be connected");
    }

    #[test]
    fn ids_are_zorder_of_coordinates() {
        let net = minneapolis_like(5);
        for n in net.nodes().take(50) {
            assert_eq!(n.id, zorder_id(n.x, n.y));
        }
    }

    #[test]
    fn scaled_config_keeps_minneapolis_proportions() {
        let net = road_map(&RoadMapConfig::scaled(20, 9));
        let a = net.avg_out_degree();
        assert!((a - 2.83).abs() < 0.1, "|A| = {a}");
        assert_eq!(net.len(), 396); // 400 - 4 removed
        net.validate();
    }

    #[test]
    fn smaller_config_scales() {
        let cfg = RoadMapConfig {
            grid_w: 10,
            grid_h: 10,
            removed_nodes: 2,
            target_segments: 150,
            target_directed: 260,
            cell: 64,
            jitter: 24,
            seed: 1,
        };
        let net = road_map(&cfg);
        assert_eq!(net.len(), 98);
        assert_eq!(net.num_edges(), 260);
        net.validate();
    }
}
