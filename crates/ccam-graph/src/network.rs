//! The adjacency-list network model.
//!
//! "A network (structurally identical to a graph) is modeled as a list of
//! nodes, and each node has attributes named successor-list and
//! predecessor-list, which represent the outgoing and incoming edges. The
//! predecessor-list facilitates updating the successor-lists during the
//! insertion and deletion of nodes." (paper §1.2)

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a network node.
///
/// In the paper "the node-id values ... represent the Z-order of the
/// location of the nodes in space" — the road-map generator follows that
/// convention, but the model itself accepts any unique `u64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One outgoing edge: destination and cost (e.g. current travel time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTo {
    /// Destination node.
    pub to: NodeId,
    /// Edge cost / travel time.
    pub cost: u32,
}

/// All data of one node — exactly what a CCAM record stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    /// Node id.
    pub id: NodeId,
    /// X coordinate (networks of interest are spatially embedded, §2.1).
    pub x: u32,
    /// Y coordinate.
    pub y: u32,
    /// Application attribute bytes (street names, sensor data, ...).
    pub payload: Vec<u8>,
    /// Outgoing edges (the successor / adjacency list).
    pub successors: Vec<EdgeTo>,
    /// Sources of incoming edges (the predecessor list).
    pub predecessors: Vec<NodeId>,
}

impl NodeData {
    /// The neighbor-list of the paper: every node appearing in the
    /// successor or predecessor list, deduplicated.
    pub fn neighbors(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .successors
            .iter()
            .map(|e| e.to)
            .chain(self.predecessors.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// An in-memory network: the source of truth the access methods load
/// from (Create) and the workloads traverse.
///
/// ```
/// use ccam_graph::{Network, NodeId};
///
/// let mut net = Network::new();
/// net.add_node(NodeId(1), 0, 0, vec![]);
/// net.add_node(NodeId(2), 1, 0, vec![]);
/// net.add_edge(NodeId(1), NodeId(2), 7);
/// assert_eq!(net.num_edges(), 1);
/// assert_eq!(net.node(NodeId(2)).unwrap().predecessors, vec![NodeId(1)]);
/// net.remove_node(NodeId(2));
/// assert!(net.node(NodeId(1)).unwrap().successors.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    nodes: BTreeMap<u64, NodeData>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.values().map(|n| n.successors.len()).sum()
    }

    /// Adds an isolated node. Panics if the id is taken.
    pub fn add_node(&mut self, id: NodeId, x: u32, y: u32, payload: Vec<u8>) {
        match self.nodes.entry(id.0) {
            Entry::Occupied(_) => panic!("duplicate node id {id:?}"),
            Entry::Vacant(e) => {
                e.insert(NodeData {
                    id,
                    x,
                    y,
                    payload,
                    successors: Vec::new(),
                    predecessors: Vec::new(),
                });
            }
        }
    }

    /// Adds directed edge `from → to` with `cost`. Panics when either
    /// endpoint is missing or the edge already exists.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cost: u32) {
        assert!(self.nodes.contains_key(&to.0), "missing target {to:?}");
        let src = self
            .nodes
            .get_mut(&from.0)
            .unwrap_or_else(|| panic!("missing source {from:?}"));
        assert!(
            !src.successors.iter().any(|e| e.to == to),
            "duplicate edge {from:?}->{to:?}"
        );
        src.successors.push(EdgeTo { to, cost });
        self.nodes
            .get_mut(&to.0)
            .expect("checked above")
            .predecessors
            .push(from);
    }

    /// Adds the pair of edges `a ↔ b` (a two-way road segment).
    pub fn add_edge_bidir(&mut self, a: NodeId, b: NodeId, cost: u32) {
        self.add_edge(a, b, cost);
        self.add_edge(b, a, cost);
    }

    /// Removes directed edge `from → to`, returning its cost.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Option<u32> {
        let src = self.nodes.get_mut(&from.0)?;
        let pos = src.successors.iter().position(|e| e.to == to)?;
        let cost = src.successors.remove(pos).cost;
        let dst = self.nodes.get_mut(&to.0).expect("edge target exists");
        let ppos = dst
            .predecessors
            .iter()
            .position(|&p| p == from)
            .expect("predecessor entry exists");
        dst.predecessors.remove(ppos);
        Some(cost)
    }

    /// Removes a node and all incident edges, returning its data.
    pub fn remove_node(&mut self, id: NodeId) -> Option<NodeData> {
        let data = self.nodes.remove(&id.0)?;
        // Patch the neighbors' lists — this is what the predecessor-list
        // is for (paper §1.2).
        for e in &data.successors {
            if let Some(n) = self.nodes.get_mut(&e.to.0) {
                n.predecessors.retain(|&p| p != id);
            }
        }
        for p in &data.predecessors {
            if let Some(n) = self.nodes.get_mut(&p.0) {
                n.successors.retain(|e| e.to != id);
            }
        }
        Some(data)
    }

    /// The node with `id`.
    pub fn node(&self, id: NodeId) -> Option<&NodeData> {
        self.nodes.get(&id.0)
    }

    /// Mutable access to a node (tests and generators only — keeping
    /// succ/pred lists consistent is the caller's burden here).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut NodeData> {
        self.nodes.get_mut(&id.0)
    }

    /// All node ids, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().map(|&k| NodeId(k)).collect()
    }

    /// Iterates nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeData> {
        self.nodes.values()
    }

    /// Iterates directed edges `(from, to, cost)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.nodes
            .values()
            .flat_map(|n| n.successors.iter().map(move |e| (n.id, e.to, e.cost)))
    }

    /// The paper's `|A|`: mean successor-list length.
    pub fn avg_out_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.num_edges() as f64 / self.len() as f64
    }

    /// The paper's `λ`: mean neighbor-list length (distinct successor ∪
    /// predecessor nodes).
    pub fn avg_neighbor_count(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = self.nodes.values().map(|n| n.neighbors().len()).sum();
        total as f64 / self.len() as f64
    }

    /// Verifies succ/pred cross-consistency; panics with a description on
    /// violation (test-support API).
    pub fn validate(&self) {
        for n in self.nodes.values() {
            for e in &n.successors {
                let t = self
                    .nodes
                    .get(&e.to.0)
                    .unwrap_or_else(|| panic!("{:?} points at missing {:?}", n.id, e.to));
                assert!(
                    t.predecessors.contains(&n.id),
                    "{:?} -> {:?} lacks the predecessor back-link",
                    n.id,
                    e.to
                );
            }
            for p in &n.predecessors {
                let s = self
                    .nodes
                    .get(&p.0)
                    .unwrap_or_else(|| panic!("{:?} lists missing predecessor {:?}", n.id, p));
                assert!(
                    s.successors.iter().any(|e| e.to == n.id),
                    "{:?} lists {:?} as predecessor but no such edge",
                    n.id,
                    p
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Network {
        // 1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 1
        let mut n = Network::new();
        for id in 1..=4 {
            n.add_node(NodeId(id), id as u32, id as u32, vec![id as u8]);
        }
        n.add_edge(NodeId(1), NodeId(2), 10);
        n.add_edge(NodeId(1), NodeId(3), 20);
        n.add_edge(NodeId(2), NodeId(4), 30);
        n.add_edge(NodeId(3), NodeId(4), 40);
        n.add_edge(NodeId(4), NodeId(1), 50);
        n
    }

    #[test]
    fn counts_and_degrees() {
        let n = diamond();
        assert_eq!(n.len(), 4);
        assert_eq!(n.num_edges(), 5);
        assert!((n.avg_out_degree() - 1.25).abs() < 1e-12);
        n.validate();
    }

    #[test]
    fn neighbors_deduplicate() {
        let mut n = diamond();
        // Make 1 <-> 2 mutual: 2 appears in both lists of 1.
        n.add_edge(NodeId(2), NodeId(1), 5);
        let nbrs = n.node(NodeId(1)).unwrap().neighbors();
        assert_eq!(nbrs, vec![NodeId(2), NodeId(3), NodeId(4)]);
        n.validate();
    }

    #[test]
    fn remove_edge_patches_both_lists() {
        let mut n = diamond();
        assert_eq!(n.remove_edge(NodeId(1), NodeId(2)), Some(10));
        assert_eq!(n.remove_edge(NodeId(1), NodeId(2)), None);
        assert!(n.node(NodeId(2)).unwrap().predecessors.is_empty());
        n.validate();
    }

    #[test]
    fn remove_node_patches_neighbors() {
        let mut n = diamond();
        let data = n.remove_node(NodeId(4)).unwrap();
        assert_eq!(data.successors.len(), 1);
        assert_eq!(data.predecessors.len(), 2);
        assert!(n.node(NodeId(4)).is_none());
        // 2 and 3 no longer point at 4; 1 no longer lists 4 as pred.
        assert!(n.node(NodeId(2)).unwrap().successors.is_empty());
        assert!(n.node(NodeId(3)).unwrap().successors.is_empty());
        assert!(n.node(NodeId(1)).unwrap().predecessors.is_empty());
        n.validate();
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let mut n = Network::new();
        n.add_node(NodeId(1), 0, 0, vec![]);
        n.add_node(NodeId(1), 1, 1, vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut n = Network::new();
        n.add_node(NodeId(1), 0, 0, vec![]);
        n.add_node(NodeId(2), 0, 0, vec![]);
        n.add_edge(NodeId(1), NodeId(2), 1);
        n.add_edge(NodeId(1), NodeId(2), 2);
    }

    #[test]
    fn bidirectional_helper() {
        let mut n = Network::new();
        n.add_node(NodeId(1), 0, 0, vec![]);
        n.add_node(NodeId(2), 0, 0, vec![]);
        n.add_edge_bidir(NodeId(1), NodeId(2), 7);
        assert_eq!(n.num_edges(), 2);
        assert!((n.avg_neighbor_count() - 1.0).abs() < 1e-12);
        n.validate();
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let n = diamond();
        let edges: Vec<_> = n.edges().collect();
        assert_eq!(edges.len(), n.num_edges());
        assert!(edges.contains(&(NodeId(4), NodeId(1), 50)));
    }
}
