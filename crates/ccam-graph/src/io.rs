//! Network import/export.
//!
//! A tiny self-describing binary format so networks can move between the
//! generator, the CLI and external tools:
//!
//! ```text
//! magic "CCAMNET1" | node_count: u32 | (record_len: u32 | record bytes)*
//! ```
//!
//! Records reuse the page codec ([`crate::record`]), so a network file is
//! literally the records CCAM would store, with explicit lengths for
//! framing.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::network::Network;
use crate::record::{decode_record, encode_record};

const MAGIC: &[u8; 8] = b"CCAMNET1";

/// Errors from network file I/O.
#[derive(Debug)]
pub enum NetworkIoError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// Not a network file / truncated / inconsistent.
    Format(String),
}

impl std::fmt::Display for NetworkIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkIoError::Io(e) => write!(f, "I/O error: {e}"),
            NetworkIoError::Format(m) => write!(f, "bad network file: {m}"),
        }
    }
}

impl std::error::Error for NetworkIoError {}

impl From<io::Error> for NetworkIoError {
    fn from(e: io::Error) -> Self {
        NetworkIoError::Io(e)
    }
}

/// Writes `net` to `path`.
pub fn save_network(net: &Network, path: &Path) -> Result<(), NetworkIoError> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&(net.len() as u32).to_le_bytes())?;
    for node in net.nodes() {
        let rec = encode_record(node);
        out.write_all(&(rec.len() as u32).to_le_bytes())?;
        out.write_all(&rec)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a network written by [`save_network`], validating
/// successor/predecessor cross-consistency.
pub fn load_network(path: &Path) -> Result<Network, NetworkIoError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NetworkIoError::Format("bad magic".into()));
    }
    let mut count_buf = [0u8; 4];
    input.read_exact(&mut count_buf)?;
    let count = u32::from_le_bytes(count_buf) as usize;

    // Two passes over decoded records: nodes first, then edges, so edge
    // targets always exist.
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let mut len_buf = [0u8; 4];
        input.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > 1 << 24 {
            return Err(NetworkIoError::Format(format!(
                "record {i} implausibly large ({len} bytes)"
            )));
        }
        let mut rec = vec![0u8; len];
        input.read_exact(&mut rec)?;
        records.push(decode_record(&rec));
    }
    let mut net = Network::new();
    for r in &records {
        net.add_node(r.id, r.x, r.y, r.payload.clone());
    }
    for r in &records {
        for e in &r.successors {
            if net.node(e.to).is_none() {
                return Err(NetworkIoError::Format(format!(
                    "edge {:?} -> {:?} references a missing node",
                    r.id, e.to
                )));
            }
            net.add_edge(r.id, e.to, e.cost);
        }
    }
    // Predecessor lists are implied by the edges; verify they match what
    // the records claimed.
    for r in &records {
        let mut want = r.predecessors.clone();
        want.sort_unstable();
        let mut got = net.node(r.id).expect("just added").predecessors.clone();
        got.sort_unstable();
        if want != got {
            return Err(NetworkIoError::Format(format!(
                "predecessor list of {:?} inconsistent with edges",
                r.id
            )));
        }
        // Restore the recorded list order (reconstruction visits sources
        // in id order; the original order is part of the record).
        net.node_mut(r.id).expect("just added").predecessors = r.predecessors.clone();
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid_network;
    use crate::roadmap::minneapolis_like;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ccam-netio-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_small_grid() {
        let net = grid_network(5, 4, 0.7);
        let path = temp("grid");
        save_network(&net, &path).unwrap();
        let back = load_network(&path).unwrap();
        assert_eq!(back.len(), net.len());
        assert_eq!(back.num_edges(), net.num_edges());
        for id in net.node_ids() {
            assert_eq!(back.node(id).unwrap(), net.node(id).unwrap());
        }
        back.validate();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_road_map() {
        let net = minneapolis_like(3);
        let path = temp("roadmap");
        save_network(&net, &path).unwrap();
        let back = load_network(&path).unwrap();
        assert_eq!(back.len(), 1079);
        assert_eq!(back.num_edges(), 3057);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_is_rejected() {
        let path = temp("garbage");
        std::fs::write(&path, b"not a network file").unwrap();
        assert!(matches!(
            load_network(&path),
            Err(NetworkIoError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let net = grid_network(4, 4, 1.0);
        let path = temp("truncated");
        save_network(&net, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_network(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_network_roundtrips() {
        let net = Network::new();
        let path = temp("empty");
        save_network(&net, &path).unwrap();
        let back = load_network(&path).unwrap();
        assert!(back.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
