//! Property-based tests for the storage substrate.
//!
//! The slotted page is model-checked against a `HashMap<SlotId, Vec<u8>>`;
//! the buffer pool is checked to be transparent (reads through the pool
//! always observe the latest writes, for any capacity).

use std::collections::HashMap;

use ccam_storage::{BufferPool, MemPageStore, PageId, SlottedPage, StorageError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
    Compact,
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 0..60).prop_map(PageOp::Insert),
        2 => any::<usize>().prop_map(PageOp::Delete),
        2 => (any::<usize>(), prop::collection::vec(any::<u8>(), 0..60))
            .prop_map(|(i, v)| PageOp::Update(i, v)),
        1 => Just(PageOp::Compact),
    ]
}

proptest! {
    /// Any sequence of inserts/deletes/updates/compactions leaves the page
    /// agreeing with an in-memory model, and free-space accounting never
    /// goes negative.
    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(page_op(), 1..80)) {
        let mut buf = vec![0u8; 512];
        let mut page = SlottedPage::init(&mut buf);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live: Vec<u16> = Vec::new();

        for op in ops {
            match op {
                PageOp::Insert(data) => match page.insert(&data) {
                    Ok(slot) => {
                        prop_assert!(!model.contains_key(&slot),
                            "insert returned an already-live slot");
                        model.insert(slot, data);
                        live.push(slot);
                    }
                    Err(StorageError::PageFull { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
                PageOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let slot = live.remove(i % live.len());
                    page.delete(slot).unwrap();
                    model.remove(&slot);
                }
                PageOp::Update(i, data) => {
                    if live.is_empty() { continue; }
                    let slot = live[i % live.len()];
                    match page.update(slot, &data) {
                        Ok(()) => { model.insert(slot, data); }
                        Err(StorageError::PageFull { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Compact => page.compact(),
            }

            // Model agreement after every step.
            prop_assert_eq!(page.live_count() as usize, model.len());
            for (&slot, data) in &model {
                prop_assert_eq!(page.get(slot), Some(&data[..]));
            }
            let used: usize = model.values().map(|d| d.len()).sum();
            prop_assert_eq!(page.used_bytes(), used);
            prop_assert!(page.free_space() <= 512);
        }
    }

    /// The buffer pool is transparent for any capacity: interleaved writes
    /// and reads across many pages always observe the latest data.
    #[test]
    fn buffer_pool_is_transparent(
        cap in 1usize..6,
        ops in prop::collection::vec((0u32..12, any::<u8>()), 1..120),
    ) {
        let pool = BufferPool::new(MemPageStore::new(64).unwrap(), cap);
        let mut ids: Vec<PageId> = Vec::new();
        let mut shadow: Vec<u8> = Vec::new();
        for (page_sel, value) in ops {
            // Lazily allocate pages as the op stream references them.
            while ids.len() <= page_sel as usize {
                ids.push(pool.allocate().unwrap());
                shadow.push(0);
            }
            let id = ids[page_sel as usize];
            pool.with_page_mut(id, |buf| buf.fill(value)).unwrap();
            shadow[page_sel as usize] = value;

            // Every page readable with its latest value.
            for (i, &id) in ids.iter().enumerate() {
                let ok = pool
                    .with_page(id, |buf| buf.iter().all(|&x| x == shadow[i]))
                    .unwrap();
                prop_assert!(ok, "page {i} lost its bytes (cap={cap})");
            }
            prop_assert!(pool.resident_pages().len() <= cap);
        }
        // And the data survives a full flush + clear (i.e. it is durable in
        // the store, not just in frames).
        pool.clear().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            let ok = pool
                .with_page(id, |buf| buf.iter().all(|&x| x == shadow[i]))
                .unwrap();
            prop_assert!(ok);
        }
    }

    /// Allocate/free on the memory store never hands out the same live id
    /// twice and always recycles freed ids before growing.
    #[test]
    fn store_allocation_discipline(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        use ccam_storage::PageStore;
        let mut store = MemPageStore::new(64).unwrap();
        let mut live: Vec<PageId> = Vec::new();
        let mut high_water = 0u32;
        for alloc in ops {
            if alloc || live.is_empty() {
                let id = store.allocate().unwrap();
                prop_assert!(!live.contains(&id));
                // Either recycled or brand new right above the high water mark.
                prop_assert!(id.index() <= high_water);
                high_water = high_water.max(id.index() + 1);
                live.push(id);
            } else {
                let id = live.swap_remove(live.len() / 2);
                store.free(id).unwrap();
            }
            prop_assert_eq!(store.live_pages().len(), live.len());
        }
    }
}
