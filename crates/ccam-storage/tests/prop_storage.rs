//! Property-based tests for the storage substrate.
//!
//! The slotted page is model-checked against a `HashMap<SlotId, Vec<u8>>`;
//! the buffer pool is checked to be transparent (reads through the pool
//! always observe the latest writes, for any capacity); WAL recovery is
//! checked to preserve every committed page and to be idempotent under
//! repeated replay (a crash *during* recovery is itself recoverable).

use std::collections::HashMap;

use ccam_storage::{BufferPool, MemPageStore, PageId, PoolStrategy, SlottedPage, StorageError};
use proptest::prelude::*;

/// Both pool organizations must satisfy every pool property — the
/// strategy is an internal performance choice, never a semantic one.
fn pool_strategy() -> impl Strategy<Value = PoolStrategy> {
    prop_oneof![Just(PoolStrategy::Linear), Just(PoolStrategy::Sharded)]
}

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
    Compact,
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 0..60).prop_map(PageOp::Insert),
        2 => any::<usize>().prop_map(PageOp::Delete),
        2 => (any::<usize>(), prop::collection::vec(any::<u8>(), 0..60))
            .prop_map(|(i, v)| PageOp::Update(i, v)),
        1 => Just(PageOp::Compact),
    ]
}

#[derive(Debug, Clone)]
enum PoolOp {
    Alloc,
    Free(usize),
    Read(usize),
    Write(usize, u8),
    Clear,
    SetCapacity(usize),
    Corrupt(usize),
    FaultBurst,
    Heal,
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        4 => Just(PoolOp::Alloc),
        2 => any::<usize>().prop_map(PoolOp::Free),
        4 => any::<usize>().prop_map(PoolOp::Read),
        4 => (any::<usize>(), any::<u8>()).prop_map(|(i, v)| PoolOp::Write(i, v)),
        1 => Just(PoolOp::Clear),
        2 => (1usize..5).prop_map(PoolOp::SetCapacity),
        1 => any::<usize>().prop_map(PoolOp::Corrupt),
        1 => Just(PoolOp::FaultBurst),
        2 => Just(PoolOp::Heal),
    ]
}

#[derive(Debug, Clone)]
enum LruOp {
    Alloc,
    /// Access a page (`true` = through `with_page_mut`); hit or miss,
    /// it becomes the most recently used.
    Touch(usize, bool),
    Free(usize),
    Clear,
    SetCapacity(usize),
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        3 => Just(LruOp::Alloc),
        8 => (any::<usize>(), any::<bool>()).prop_map(|(i, w)| LruOp::Touch(i, w)),
        2 => any::<usize>().prop_map(LruOp::Free),
        1 => Just(LruOp::Clear),
        2 => (1usize..6).prop_map(LruOp::SetCapacity),
    ]
}

#[derive(Debug, Clone)]
enum WalOp {
    Alloc,
    Write(usize, u8),
    Free(usize),
    Sync,
}

fn wal_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        3 => Just(WalOp::Alloc),
        4 => (any::<usize>(), any::<u8>()).prop_map(|(i, v)| WalOp::Write(i, v)),
        2 => any::<usize>().prop_map(WalOp::Free),
        3 => Just(WalOp::Sync),
    ]
}

/// Per-case WAL file in the temp dir (proptest runs cases sequentially,
/// but a counter keeps shrink re-runs from colliding with leftovers).
fn unique_wal_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ccam-prop-{}-{}.wal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

proptest! {
    /// Any sequence of inserts/deletes/updates/compactions leaves the page
    /// agreeing with an in-memory model, and free-space accounting never
    /// goes negative.
    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(page_op(), 1..80)) {
        let mut buf = vec![0u8; 512];
        let mut page = SlottedPage::init(&mut buf);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live: Vec<u16> = Vec::new();

        for op in ops {
            match op {
                PageOp::Insert(data) => match page.insert(&data) {
                    Ok(slot) => {
                        prop_assert!(!model.contains_key(&slot),
                            "insert returned an already-live slot");
                        model.insert(slot, data);
                        live.push(slot);
                    }
                    Err(StorageError::PageFull { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
                PageOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let slot = live.remove(i % live.len());
                    page.delete(slot).unwrap();
                    model.remove(&slot);
                }
                PageOp::Update(i, data) => {
                    if live.is_empty() { continue; }
                    let slot = live[i % live.len()];
                    match page.update(slot, &data) {
                        Ok(()) => { model.insert(slot, data); }
                        Err(StorageError::PageFull { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Compact => page.compact(),
            }

            // Model agreement after every step.
            prop_assert_eq!(page.live_count() as usize, model.len());
            for (&slot, data) in &model {
                prop_assert_eq!(page.get(slot), Some(&data[..]));
            }
            let used: usize = model.values().map(|d| d.len()).sum();
            prop_assert_eq!(page.used_bytes(), used);
            prop_assert!(page.free_space() <= 512);
        }
    }

    /// The buffer pool is transparent for any capacity: interleaved writes
    /// and reads across many pages always observe the latest data.
    #[test]
    fn buffer_pool_is_transparent(
        cap in 1usize..6,
        strategy in pool_strategy(),
        ops in prop::collection::vec((0u32..12, any::<u8>()), 1..120),
    ) {
        let pool = BufferPool::with_strategy(MemPageStore::new(64).unwrap(), cap, strategy);
        let mut ids: Vec<PageId> = Vec::new();
        let mut shadow: Vec<u8> = Vec::new();
        for (page_sel, value) in ops {
            // Lazily allocate pages as the op stream references them.
            while ids.len() <= page_sel as usize {
                ids.push(pool.allocate().unwrap());
                shadow.push(0);
            }
            let id = ids[page_sel as usize];
            pool.with_page_mut(id, |buf| buf.fill(value)).unwrap();
            shadow[page_sel as usize] = value;

            // Every page readable with its latest value.
            for (i, &id) in ids.iter().enumerate() {
                let ok = pool
                    .with_page(id, |buf| buf.iter().all(|&x| x == shadow[i]))
                    .unwrap();
                prop_assert!(ok, "page {i} lost its bytes (cap={cap})");
            }
            prop_assert!(pool.resident_pages().len() <= cap);
        }
        // And the data survives a full flush + clear (i.e. it is durable in
        // the store, not just in frames).
        pool.clear().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            let ok = pool
                .with_page(id, |buf| buf.iter().all(|&x| x == shadow[i]))
                .unwrap();
            prop_assert!(ok);
        }
    }

    /// WAL recovery is correct and idempotent: after random committed
    /// batches and a crash at a random physical mutation, (1) every
    /// committed page survives byte-for-byte, (2) any extra live page is
    /// an unreferenced zero-filled allocation leak, and (3) replaying the
    /// same log twice — a crash in the middle of recovery — leaves the
    /// store byte-identical to a single replay.
    #[test]
    fn wal_replay_is_idempotent(
        ops in prop::collection::vec(wal_op(), 1..60),
        crash_countdown in 1u64..50,
    ) {
        use ccam_storage::testing::{CrashStore, TornWrite};
        use ccam_storage::{recovery, PageStore, Wal, WalStore};

        const PS: usize = 64;
        let wal_path = unique_wal_path();
        std::fs::remove_file(&wal_path).ok();

        let (cstore, ctl) = CrashStore::new(MemPageStore::new(PS).unwrap());
        let mut ws = WalStore::create(cstore, &wal_path).unwrap();
        ctl.crash_after(crash_countdown, TornWrite::Partial);

        // Shadow state: `working` tracks every applied op, `committed`
        // the state as of the last durable commit.
        let mut working: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut committed: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();
        for op in ops {
            match op {
                WalOp::Alloc => match ws.allocate() {
                    Ok(id) => {
                        working.insert(id.index(), vec![0; PS]);
                        live.push(id);
                    }
                    Err(_) => break,
                },
                WalOp::Write(i, v) => {
                    if live.is_empty() { continue; }
                    let id = live[i % live.len()];
                    if ws.write(id, &[v; PS]).is_ok() {
                        working.insert(id.index(), vec![v; PS]);
                    } else {
                        break;
                    }
                }
                WalOp::Free(i) => {
                    if live.is_empty() { continue; }
                    let id = live.remove(i % live.len());
                    if ws.free(id).is_ok() {
                        working.remove(&id.index());
                    } else {
                        break;
                    }
                }
                WalOp::Sync => {
                    let logged = ws.pending_ops() > 0;
                    match ws.sync() {
                        Ok(()) => { committed = working.clone(); }
                        Err(_) => {
                            // The WAL file itself never fails here, so a
                            // non-empty batch was logged (durable) before
                            // the inner store died mid-apply.
                            if logged { committed = working.clone(); }
                            break;
                        }
                    }
                }
            }
        }

        // Reboot: take the surviving inner store and recover it, twice
        // over the same scan (as if recovery itself was interrupted).
        let mut store = ws.simulate_crash().into_inner();
        let (mut wal, scan) = Wal::open(&wal_path, PS).unwrap();
        recovery::replay(&mut store, &mut wal, &scan).unwrap();
        let snap1 = recovery::live_snapshot(&store).unwrap();
        recovery::replay(&mut store, &mut wal, &scan).unwrap();
        let snap2 = recovery::live_snapshot(&store).unwrap();
        prop_assert_eq!(&snap1, &snap2, "second replay changed the store");

        // Every committed page is there, byte-for-byte.
        for (&idx, data) in &committed {
            let got = snap1.iter().find(|(id, _)| id.index() == idx);
            prop_assert_eq!(
                got.map(|(_, b)| &b[..]), Some(&data[..]),
                "committed page {} lost or damaged", idx
            );
        }
        // Anything extra is an allocation that crashed before its batch
        // was logged: live but still zero-filled, never stale data.
        for (id, bytes) in &snap1 {
            if !committed.contains_key(&id.index()) {
                prop_assert!(
                    bytes.iter().all(|&b| b == 0),
                    "leaked page {} holds non-zero data", id.index()
                );
            }
        }

        // A fresh open after recovery finds a clean, checkpointed log:
        // nothing beyond the checkpoint marker recovery left behind.
        let (_wal, scan) = Wal::open(&wal_path, PS).unwrap();
        prop_assert!(scan
            .records
            .iter()
            .all(|r| matches!(r.record, ccam_storage::LogRecord::Checkpoint)));
        prop_assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_file(&wal_path).ok();
    }

    /// The buffer pool's frame table and page map stay in agreement under
    /// any interleaving of allocate/free/read/write/clear/set_capacity —
    /// including mid-operation failures injected by a [`CorruptStore`]
    /// (checksum-corrupt pages and transient fault bursts). After every
    /// step [`BufferPool::check_invariants`] must hold and residency must
    /// respect the capacity; once the store is healed the pool must be
    /// fully operational again.
    #[test]
    fn buffer_pool_invariants_hold_under_faults(
        cap in 1usize..5,
        strategy in pool_strategy(),
        ops in prop::collection::vec(pool_op(), 1..100),
    ) {
        use ccam_storage::testing::CorruptStore;

        let (store, ctl) = CorruptStore::new(MemPageStore::new(64).unwrap(), 7);
        let pool = BufferPool::with_strategy(store, cap, strategy);
        let mut live: Vec<PageId> = Vec::new();

        for op in ops {
            match op {
                PoolOp::Alloc => {
                    if let Ok(id) = pool.allocate() {
                        live.push(id);
                    }
                }
                PoolOp::Free(i) => {
                    if live.is_empty() { continue; }
                    let idx = i % live.len();
                    // A failed free leaves the page live; only drop it
                    // from the model when the pool reported success.
                    if pool.free(live[idx]).is_ok() {
                        live.remove(idx);
                    }
                }
                PoolOp::Read(i) => {
                    if live.is_empty() { continue; }
                    let _ = pool.with_page(live[i % live.len()], |_| ());
                }
                PoolOp::Write(i, v) => {
                    if live.is_empty() { continue; }
                    let _ = pool.with_page_mut(live[i % live.len()], |buf| buf.fill(v));
                }
                PoolOp::Clear => { let _ = pool.clear(); }
                PoolOp::SetCapacity(n) => { let _ = pool.set_capacity(n); }
                PoolOp::Corrupt(i) => {
                    if live.is_empty() { continue; }
                    ctl.mark_corrupt(live[i % live.len()]);
                }
                PoolOp::FaultBurst => ctl.set_fault_rate(1024, 2),
                PoolOp::Heal => {
                    ctl.set_fault_rate(0, 1);
                    for id in ctl.corrupt_pages() {
                        ctl.clear_corrupt(id);
                    }
                }
            }
            pool.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert!(pool.resident_pages().len() <= pool.capacity());
        }

        // Heal every injected fault: the pool must flush cleanly and every
        // live page must still be reachable through it.
        ctl.set_fault_rate(0, 1);
        for id in ctl.corrupt_pages() {
            ctl.clear_corrupt(id);
        }
        pool.clear().unwrap();
        pool.check_invariants().map_err(TestCaseError::fail)?;
        for &id in &live {
            pool.with_page(id, |_| ()).unwrap();
        }
    }

    /// The pool's recency order matches an exact LRU model: every access
    /// (hit or miss) moves the page to MRU, misses evict the LRU-most
    /// resident, `free` drops the page, `clear` empties the pool and
    /// `set_capacity` sheds LRU-most first. [`BufferPool::resident_pages`]
    /// reports MRU-first, so it must equal the model list verbatim —
    /// this pins the O(1) intrusive-list implementation to the semantics
    /// of the old linear-scan pool.
    #[test]
    fn buffer_pool_matches_lru_model(
        cap in 1usize..6,
        strategy in pool_strategy(),
        ops in prop::collection::vec(lru_op(), 1..150),
    ) {
        let pool = BufferPool::with_strategy(MemPageStore::new(64).unwrap(), cap, strategy);
        let mut live: Vec<PageId> = Vec::new();
        let mut model: Vec<PageId> = Vec::new(); // MRU-first
        let mut cap = cap;

        for op in ops {
            match op {
                LruOp::Alloc => {
                    // Allocation touches only the store — never a frame.
                    live.push(pool.allocate().unwrap());
                }
                LruOp::Touch(i, write) => {
                    if live.is_empty() { continue; }
                    let id = live[i % live.len()];
                    if write {
                        pool.with_page_mut(id, |_| ()).unwrap();
                    } else {
                        pool.with_page(id, |_| ()).unwrap();
                    }
                    if let Some(pos) = model.iter().position(|&p| p == id) {
                        model.remove(pos);
                    } else if model.len() == cap {
                        model.pop(); // miss at capacity evicts LRU-most
                    }
                    model.insert(0, id);
                }
                LruOp::Free(i) => {
                    if live.is_empty() { continue; }
                    let id = live.remove(i % live.len());
                    pool.free(id).unwrap();
                    model.retain(|&p| p != id);
                }
                LruOp::Clear => {
                    pool.clear().unwrap();
                    model.clear();
                }
                LruOp::SetCapacity(n) => {
                    pool.set_capacity(n).unwrap();
                    model.truncate(n);
                    cap = n;
                }
            }
            prop_assert_eq!(&pool.resident_pages(), &model);
            pool.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Allocate/free on the memory store never hands out the same live id
    /// twice and always recycles freed ids before growing.
    #[test]
    fn store_allocation_discipline(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        use ccam_storage::PageStore;
        let mut store = MemPageStore::new(64).unwrap();
        let mut live: Vec<PageId> = Vec::new();
        let mut high_water = 0u32;
        for alloc in ops {
            if alloc || live.is_empty() {
                let id = store.allocate().unwrap();
                prop_assert!(!live.contains(&id));
                // Either recycled or brand new right above the high water mark.
                prop_assert!(id.index() <= high_water);
                high_water = high_water.max(id.index() + 1);
                live.push(id);
            } else {
                let id = live.swap_remove(live.len() / 2);
                store.free(id).unwrap();
            }
            prop_assert_eq!(store.live_pages().len(), live.len());
        }
    }
}
