//! Bounded-attempt retry with deterministic exponential backoff.
//!
//! Transient faults — a glitched bus read, a momentary `EIO`, a page
//! whose checksum fails once and verifies on the next read — should be
//! absorbed below the access-method layer, not surfaced to every query.
//! [`RetryStore`] wraps any [`PageStore`] and re-issues failed operations
//! according to a [`RetryPolicy`]: at most `max_attempts` tries, with an
//! exponentially growing backoff between them.
//!
//! Backoff is expressed in abstract *ticks*, not wall-clock time: the
//! store reports each computed delay to a pluggable sleeper callback
//! (default: do nothing). Tests install a recording sleeper and assert
//! the exact delay sequence; production callers may translate ticks to
//! `Duration`s. Nothing in this module reads a clock, so retry behaviour
//! is fully deterministic.
//!
//! Only *transient-looking* errors are retried: [`StorageError::Io`] and
//! [`StorageError::ChecksumMismatch`] (a mismatch can be a one-off
//! glitch on the wire; a persistent mismatch keeps failing and is
//! surfaced after the attempt budget, at which point scrub/quarantine —
//! see [`crate::integrity`] — takes over). Logical errors such as
//! [`StorageError::InvalidPage`] fail immediately.
//!
//! # Jitter
//!
//! With [`RetryPolicy::jitter_seed`] set, each delay is drawn uniformly
//! from `[backoff/2, backoff]` using a seeded xorshift stream private to
//! the store. Concurrent workers retrying the same faulted page then
//! spread out instead of hammering it in lockstep (a retry storm re-fails
//! for all of them at once); with the seed unset the schedule stays
//! exactly the deterministic doubled sequence the tests assert.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::PageId;
use crate::stats::IoStats;
use crate::store::PageStore;

/// Retry budget and backoff schedule for a [`RetryStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in abstract ticks.
    pub base_delay_ticks: u64,
    /// Ceiling on any single backoff delay.
    pub max_delay_ticks: u64,
    /// `Some(seed)` jitters each delay uniformly into
    /// `[backoff/2, backoff]` from a seeded stream; `None` keeps the
    /// exact deterministic exponential sequence.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    /// Three attempts with delays of 1 and 2 ticks between them.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ticks: 1,
            max_delay_ticks: 64,
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (useful as an explicit "off" switch).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ticks: 0,
            max_delay_ticks: 0,
            jitter_seed: None,
        }
    }

    /// The same policy with jitter enabled under `seed`.
    pub fn with_jitter(self, seed: u64) -> Self {
        RetryPolicy {
            jitter_seed: Some(seed),
            ..self
        }
    }

    /// Backoff in ticks before retry number `retry` (1-based): the base
    /// delay doubled per retry, capped at `max_delay_ticks`.
    pub fn backoff(&self, retry: u32) -> u64 {
        let shifted = self.base_delay_ticks.saturating_mul(
            1u64.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u64::MAX),
        );
        shifted.min(self.max_delay_ticks)
    }

    fn is_transient(err: &StorageError) -> bool {
        matches!(
            err,
            StorageError::Io(_) | StorageError::ChecksumMismatch { .. }
        )
    }
}

/// Callback invoked with each backoff delay (in ticks) before a retry.
pub type Sleeper = dyn Fn(u64) + Send + Sync;

/// A [`PageStore`] wrapper that retries transient failures with bounded
/// attempts and exponential backoff (see [`RetryPolicy`]).
///
/// Every extra attempt is counted in the shared [`IoStats`]
/// (`retries`); checksum mismatches observed along the way are counted
/// as `checksum_failures` even when a later attempt succeeds.
pub struct RetryStore<S: PageStore> {
    inner: S,
    policy: RetryPolicy,
    stats: Arc<IoStats>,
    sleeper: Box<Sleeper>,
    /// xorshift64* state for jittered delays; `None` when the policy has
    /// no jitter seed. Shared across readers so concurrent retries draw
    /// from one interleaved stream (which is what desynchronizes them).
    jitter: Option<Mutex<u64>>,
}

impl<S: PageStore> RetryStore<S> {
    /// Wraps `inner` with `policy`; backoff delays are computed but not
    /// acted on (no sleeping — ticks are abstract).
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self::with_sleeper(inner, policy, |_| {})
    }

    /// Like [`RetryStore::new`], but reports each backoff delay to
    /// `sleeper` (a test records them; a server might sleep).
    pub fn with_sleeper(
        inner: S,
        policy: RetryPolicy,
        sleeper: impl Fn(u64) + Send + Sync + 'static,
    ) -> Self {
        RetryStore {
            inner,
            policy,
            stats: IoStats::new_shared(),
            sleeper: Box::new(sleeper),
            // xorshift needs a nonzero state.
            jitter: policy.jitter_seed.map(|seed| Mutex::new(seed | 1)),
        }
    }

    /// The delay before retry `retry` (1-based): the policy's backoff,
    /// jittered into `[backoff/2, backoff]` when a jitter seed is set.
    fn delay(&self, retry: u32) -> u64 {
        let full = self.policy.backoff(retry);
        let Some(state) = &self.jitter else {
            return full;
        };
        let mut s = state.lock();
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        full / 2 + r % (full / 2 + 1)
    }

    /// The policy this store retries under.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Shared counters recording retries and observed checksum failures.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Consumes the wrapper, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn run<T>(&self, mut op: impl FnMut(&S) -> StorageResult<T>) -> StorageResult<T> {
        let mut attempt = 1;
        loop {
            match op(&self.inner) {
                Ok(v) => return Ok(v),
                Err(err) => {
                    if matches!(err, StorageError::ChecksumMismatch { .. }) {
                        self.stats.record_checksum_failure();
                    }
                    if attempt >= self.policy.max_attempts || !RetryPolicy::is_transient(&err) {
                        return Err(err);
                    }
                    crate::trace_event!(
                        "retry",
                        "transient fault ({err}), attempt {attempt}/{}",
                        self.policy.max_attempts
                    );
                    (self.sleeper)(self.delay(attempt));
                    self.stats.record_retry();
                    attempt += 1;
                }
            }
        }
    }

    fn run_mut<T>(&mut self, mut op: impl FnMut(&mut S) -> StorageResult<T>) -> StorageResult<T> {
        let mut attempt = 1;
        loop {
            match op(&mut self.inner) {
                Ok(v) => return Ok(v),
                Err(err) => {
                    if matches!(err, StorageError::ChecksumMismatch { .. }) {
                        self.stats.record_checksum_failure();
                    }
                    if attempt >= self.policy.max_attempts || !RetryPolicy::is_transient(&err) {
                        return Err(err);
                    }
                    crate::trace_event!(
                        "retry",
                        "transient fault ({err}), attempt {attempt}/{}",
                        self.policy.max_attempts
                    );
                    (self.sleeper)(self.delay(attempt));
                    self.stats.record_retry();
                    attempt += 1;
                }
            }
        }
    }
}

impl<S: PageStore> PageStore for RetryStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        self.run_mut(|s| s.allocate())
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.run(|s| s.read(id, buf))
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> StorageResult<()> {
        self.run_mut(|s| s.write(id, buf))
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        self.run_mut(|s| s.free(id))
    }

    fn is_live(&self, id: PageId) -> bool {
        self.inner.is_live(id)
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.run_mut(|s| s.sync())
    }

    fn live_pages(&self) -> Vec<PageId> {
        self.inner.live_pages()
    }

    fn ensure_allocated(&mut self, id: PageId) -> StorageResult<()> {
        self.run_mut(|s| s.ensure_allocated(id))
    }

    // Transactional hooks pass straight through (rollback/checkpoint are
    // not retried: a failed rollback means the inner store is poisoned,
    // not glitched). NoSpace is likewise never transient — `is_transient`
    // only matches Io and ChecksumMismatch.

    fn supports_rollback(&self) -> bool {
        self.inner.supports_rollback()
    }

    fn rollback(&mut self) -> StorageResult<()> {
        self.inner.rollback()
    }

    fn checkpoint(&mut self) -> StorageResult<()> {
        self.inner.checkpoint()
    }

    fn set_max_wal_bytes(&mut self, limit: Option<u64>) {
        self.inner.set_max_wal_bytes(limit)
    }

    fn wal_info(&self) -> Option<crate::store::WalInfo> {
        self.inner.wal_info()
    }

    fn page_versions(&self) -> Option<std::sync::Arc<crate::snapshot::PageVersions>> {
        self.inner.page_versions()
    }

    fn enable_snapshots(
        &mut self,
    ) -> StorageResult<Option<std::sync::Arc<crate::snapshot::PageVersions>>> {
        self.inner.enable_snapshots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemPageStore;
    use crate::testing::FlakyStore;
    use parking_lot::Mutex;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ticks: 3,
            max_delay_ticks: 20,
            jitter_seed: None,
        };
        assert_eq!(p.backoff(1), 3);
        assert_eq!(p.backoff(2), 6);
        assert_eq!(p.backoff(3), 12);
        assert_eq!(p.backoff(4), 20); // capped
        assert_eq!(p.backoff(63), 20);
    }

    #[test]
    fn transient_faults_are_absorbed_and_counted() {
        // FlakyStore keeps failing while armed, so disarm from the
        // sleeper after the second failure — models a two-op glitch
        // absorbed within a four-attempt budget.
        let (flaky, switch) = FlakyStore::new(MemPageStore::new(64).unwrap());
        let sw = std::sync::Arc::clone(&switch);
        let fails = std::sync::atomic::AtomicU64::new(0);
        let mut s = RetryStore::with_sleeper(
            flaky,
            RetryPolicy {
                max_attempts: 4,
                base_delay_ticks: 1,
                max_delay_ticks: 8,
                jitter_seed: None,
            },
            move |_| {
                if fails.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1 >= 2 {
                    sw.disarm();
                }
            },
        );
        let p = s.allocate().unwrap();
        s.write(p, &[7u8; 64]).unwrap();
        switch.arm_after(0);
        let mut buf = [0u8; 64];
        s.read(p, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        assert_eq!(s.stats().snapshot().retries, 2);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let (flaky, switch) = FlakyStore::new(MemPageStore::new(64).unwrap());
        let mut s = RetryStore::new(flaky, RetryPolicy::default());
        let p = s.allocate().unwrap();
        switch.arm_after(0); // fail forever
        let mut buf = [0u8; 64];
        assert!(matches!(s.read(p, &mut buf), Err(StorageError::Io(_))));
        // max_attempts = 3 ⇒ 2 retries recorded.
        assert_eq!(s.stats().snapshot().retries, 2);
    }

    #[test]
    fn logical_errors_fail_fast() {
        let s = RetryStore::new(MemPageStore::new(64).unwrap(), RetryPolicy::default());
        let mut buf = [0u8; 64];
        assert!(matches!(
            s.read(PageId(99), &mut buf),
            Err(StorageError::InvalidPage(_))
        ));
        assert_eq!(s.stats().snapshot().retries, 0);
    }

    /// Runs one store to delay exhaustion and returns the recorded
    /// jittered delay sequence for `policy`.
    fn recorded_delays(policy: RetryPolicy) -> Vec<u64> {
        let delays: std::sync::Arc<Mutex<Vec<u64>>> = std::sync::Arc::new(Mutex::new(Vec::new()));
        let d = std::sync::Arc::clone(&delays);
        let (flaky, switch) = FlakyStore::new(MemPageStore::new(64).unwrap());
        let mut s = RetryStore::with_sleeper(flaky, policy, move |t| d.lock().push(t));
        let p = s.allocate().unwrap();
        switch.arm_after(0);
        let mut buf = [0u8; 64];
        assert!(s.read(p, &mut buf).is_err());
        let out = delays.lock().clone();
        out
    }

    #[test]
    fn jittered_delays_stay_within_half_to_full_backoff() {
        let policy = RetryPolicy {
            max_attempts: 12,
            base_delay_ticks: 8,
            max_delay_ticks: 1024,
            jitter_seed: Some(7),
        };
        let delays = recorded_delays(policy);
        assert_eq!(delays.len(), 11);
        let mut saw_jitter = false;
        for (i, &d) in delays.iter().enumerate() {
            let full = policy.backoff(i as u32 + 1);
            assert!(
                d >= full / 2 && d <= full,
                "delay {d} outside [{}, {full}]",
                full / 2
            );
            saw_jitter |= d != full;
        }
        assert!(saw_jitter, "12 draws never jittered below full backoff");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_differs_across_seeds() {
        let base = RetryPolicy {
            max_attempts: 8,
            base_delay_ticks: 16,
            max_delay_ticks: 4096,
            jitter_seed: None,
        };
        let a = recorded_delays(base.with_jitter(1));
        let b = recorded_delays(base.with_jitter(1));
        let c = recorded_delays(base.with_jitter(2));
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds should desynchronize");
    }

    #[test]
    fn sleeper_sees_the_exact_backoff_sequence() {
        let delays: std::sync::Arc<Mutex<Vec<u64>>> = std::sync::Arc::new(Mutex::new(Vec::new()));
        let d = std::sync::Arc::clone(&delays);
        let (flaky, switch) = FlakyStore::new(MemPageStore::new(64).unwrap());
        let mut s = RetryStore::with_sleeper(
            flaky,
            RetryPolicy {
                max_attempts: 5,
                base_delay_ticks: 2,
                max_delay_ticks: 6,
                jitter_seed: None,
            },
            move |t| d.lock().push(t),
        );
        let p = s.allocate().unwrap();
        switch.arm_after(0);
        let mut buf = [0u8; 64];
        assert!(s.read(p, &mut buf).is_err());
        assert_eq!(*delays.lock(), vec![2, 4, 6, 6]);
    }
}
