//! Shared I/O counters and per-operation profiling spans.
//!
//! The paper's experiments report "the number of data pages accessed" for
//! each operation (§4). [`IoStats`] is the single source of truth for that
//! number: the buffer pool bumps `physical_reads` on every miss and
//! `buffer_hits` on every hit, and the experiment harness snapshots /
//! subtracts around each measured operation.
//!
//! On top of the counters sits opt-in *operation profiling*: with
//! [`IoStats::set_profiling`] enabled, every access-method entry point
//! opens an [`OpSpan`] and the buffer pool attributes each page event
//! (`hit` / `miss` / `write`, with its page id) to the innermost-open
//! top-level span, yielding one [`OpProfile`] per operation — the
//! observable counterpart of the `costmodel` predictions. Profiling off
//! costs one relaxed atomic load per page access.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::{OpProfile, PageAccessKind, PageEvent};
use crate::page::PageId;

/// Monotonic I/O counters, cheap to share between the buffer pool and the
/// measurement harness.
#[derive(Default)]
pub struct IoStats {
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    buffer_hits: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
    syncs: AtomicU64,
    retries: AtomicU64,
    checksum_failures: AtomicU64,
    evictions: AtomicU64,
    prefetch_issued: AtomicU64,
    /// Fast-path switch for the profiler (checked on every page access).
    profiling: AtomicBool,
    profile: Mutex<ProfileState>,
}

/// Profiler state: operation spans may nest (e.g. `get_successors` calls
/// `find`); only the outermost span records, and events are attributed
/// to it.
#[derive(Debug, Default)]
struct ProfileState {
    depth: u32,
    current: Option<OpenOp>,
    done: Vec<OpProfile>,
}

#[derive(Debug)]
struct OpenOp {
    op: String,
    events: Vec<PageEvent>,
    before: IoSnapshot,
    started: Instant,
}

impl std::fmt::Debug for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoStats")
            .field("snapshot", &self.snapshot())
            .field("profiling", &self.profiling_enabled())
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of the counters, used to compute per-operation
/// deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages fetched from the store because they were not buffered.
    pub physical_reads: u64,
    /// Dirty pages written back to the store.
    pub physical_writes: u64,
    /// Page requests satisfied from the buffer pool.
    pub buffer_hits: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
    /// Store syncs — commit points when the store is a
    /// write-ahead-logged `WalStore`, so benches can attribute WAL
    /// overhead per operation.
    pub syncs: u64,
    /// Store operations re-issued by a `RetryStore` after a transient
    /// fault (one per extra attempt, not per faulted operation).
    pub retries: u64,
    /// Page reads that failed CRC32 verification (recorded by the buffer
    /// pool and by `RetryStore` when the store surfaces
    /// `ChecksumMismatch`).
    pub checksum_failures: u64,
    /// Frames evicted from the buffer pool (dirty or clean) to make room
    /// or satisfy a shrink/clear.
    pub evictions: u64,
    /// Pages speculatively read by the buffer pool's connectivity-aware
    /// prefetcher. Always zero with prefetch off (the default); prefetch
    /// reads also count as `physical_reads` — the accounting is honest,
    /// not free.
    pub prefetch_issued: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier`. Saturating: when
    /// [`IoStats::reset`] ran between the two snapshots, a counter in
    /// `self` may be *smaller* than in `earlier`; the delta clamps to
    /// zero instead of panicking (debug) or wrapping to ~2⁶⁴ (release).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            frees: self.frees.saturating_sub(earlier.frees),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            retries: self.retries.saturating_sub(earlier.retries),
            checksum_failures: self
                .checksum_failures
                .saturating_sub(earlier.checksum_failures),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            prefetch_issued: self.prefetch_issued.saturating_sub(earlier.prefetch_issued),
        }
    }

    /// Total page accesses in the paper's sense: data pages brought in from
    /// disk. Buffer hits are free by definition of the cost model (§3.2).
    pub fn data_page_accesses(&self) -> u64 {
        self.physical_reads
    }
}

impl IoStats {
    /// Creates a fresh, shareable counter set.
    pub fn new_shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    pub(crate) fn record_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_prefetch(&self) {
        self.prefetch_issued.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
        }
    }

    /// Snapshot-and-subtract in one step: the counter deltas accumulated
    /// since `before` (itself a [`IoStats::snapshot`]). The standard
    /// around-one-operation measurement idiom:
    ///
    /// ```ignore
    /// let before = pool.stats().snapshot();
    /// am.insert_node(&rec)?;
    /// let cost = pool.stats().delta_since(&before);
    /// ```
    pub fn delta_since(&self, before: &IoSnapshot) -> IoSnapshot {
        self.snapshot().since(before)
    }

    /// Resets every counter to zero (between experiment phases).
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.buffer_hits.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.prefetch_issued.store(0, Ordering::Relaxed);
    }

    // -- operation profiling -------------------------------------------------

    /// Switches per-operation profiling on or off. Turning it off
    /// discards any open span and all collected profiles.
    pub fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
        if !on {
            *self.profile.lock() = ProfileState::default();
        }
    }

    /// True when profiling is enabled.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// Opens an operation span named `op`. While the span guard lives,
    /// page events and counter deltas are attributed to the operation;
    /// dropping it finishes the [`OpProfile`]. Spans nest — only the
    /// outermost records (a `get_successors` internally issuing `find`s
    /// yields *one* profile). No-op (cheap) when profiling is off.
    pub fn span(self: Arc<Self>, op: &str) -> OpSpan {
        let active = self.profiling_enabled();
        if active {
            let before = self.snapshot();
            let mut st = self.profile.lock();
            st.depth += 1;
            if st.depth == 1 {
                st.current = Some(OpenOp {
                    op: op.to_string(),
                    events: Vec::new(),
                    before,
                    started: Instant::now(),
                });
            }
        }
        OpSpan {
            stats: self,
            active,
        }
    }

    /// Attributes one page event to the open span, if any (called by the
    /// buffer pool next to the matching counter bump).
    pub(crate) fn record_page_event(&self, page: PageId, kind: PageAccessKind) {
        if !self.profiling.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.profile.lock();
        if let Some(cur) = st.current.as_mut() {
            cur.events.push(PageEvent { page, kind });
        }
    }

    fn end_span(&self) {
        let after = self.snapshot();
        let mut st = self.profile.lock();
        st.depth = st.depth.saturating_sub(1);
        if st.depth == 0 {
            if let Some(cur) = st.current.take() {
                let profile = OpProfile {
                    op: cur.op,
                    events: cur.events,
                    io: after.since(&cur.before),
                    elapsed_us: cur.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                };
                st.done.push(profile);
            }
        }
    }

    /// Drains every finished operation profile collected so far.
    pub fn take_profiles(&self) -> Vec<OpProfile> {
        std::mem::take(&mut self.profile.lock().done)
    }
}

/// Guard for one profiled operation (see [`IoStats::span`]); the profile
/// is finished when the guard drops.
#[must_use = "the span records until the guard is dropped"]
pub struct OpSpan {
    stats: Arc<IoStats>,
    active: bool,
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        if self.active {
            self.stats.end_span();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = IoStats::new_shared();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_hit();
        s.record_alloc();
        s.record_free();
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.buffer_hits, 1);
        assert_eq!(snap.allocations, 1);
        assert_eq!(snap.frees, 1);
        assert_eq!(snap.data_page_accesses(), 2);
    }

    #[test]
    fn since_computes_deltas() {
        let s = IoStats::new_shared();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_read();
        s.record_hit();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.physical_reads, 2);
        assert_eq!(delta.buffer_hits, 1);
        assert_eq!(delta.physical_writes, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new_shared();
        s.record_read();
        s.record_write();
        s.record_sync();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn retry_and_checksum_counters_accumulate_and_reset() {
        let s = IoStats::new_shared();
        s.record_retry();
        s.record_retry();
        s.record_checksum_failure();
        let snap = s.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.checksum_failures, 1);
        let before = snap;
        s.record_retry();
        assert_eq!(s.delta_since(&before).retries, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    /// Regression: `reset()` between two snapshots used to make `since`
    /// panic in debug (unchecked subtraction) and wrap to ~2⁶⁴ in
    /// release; it must saturate to zero instead.
    #[test]
    fn since_saturates_across_a_reset() {
        let s = IoStats::new_shared();
        s.record_read();
        s.record_read();
        s.record_write();
        let before = s.snapshot();
        s.reset();
        s.record_read();
        let d = s.delta_since(&before);
        assert_eq!(d.physical_reads, 0, "must clamp, not wrap");
        assert_eq!(d.physical_writes, 0);
        // The other direction still subtracts normally.
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        assert_eq!(s.delta_since(&before).physical_reads, 1);
    }

    #[test]
    fn spans_collect_profiles_only_when_enabled() {
        use crate::metrics::PageAccessKind;
        let s = IoStats::new_shared();
        // Disabled: span is a no-op.
        drop(Arc::clone(&s).span("find"));
        assert!(s.take_profiles().is_empty());

        s.set_profiling(true);
        {
            let _g = Arc::clone(&s).span("find");
            s.record_read();
            s.record_page_event(crate::page::PageId(3), PageAccessKind::Miss);
        }
        let profiles = s.take_profiles();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].op, "find");
        assert_eq!(profiles[0].io.physical_reads, 1);
        assert_eq!(profiles[0].trace_string(), "3:miss");
        assert!(s.take_profiles().is_empty(), "drained");
    }

    #[test]
    fn nested_spans_record_one_profile_for_the_outermost() {
        use crate::metrics::PageAccessKind;
        let s = IoStats::new_shared();
        s.set_profiling(true);
        {
            let _outer = Arc::clone(&s).span("get_successors");
            s.record_page_event(crate::page::PageId(1), PageAccessKind::Miss);
            {
                let _inner = Arc::clone(&s).span("find");
                s.record_page_event(crate::page::PageId(2), PageAccessKind::Hit);
            }
            s.record_page_event(crate::page::PageId(3), PageAccessKind::Write);
        }
        let profiles = s.take_profiles();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].op, "get_successors");
        assert_eq!(profiles[0].trace_string(), "1:miss 2:hit 3:write");
    }

    #[test]
    fn disabling_profiling_discards_state() {
        let s = IoStats::new_shared();
        s.set_profiling(true);
        drop(Arc::clone(&s).span("find"));
        s.set_profiling(false);
        assert!(s.take_profiles().is_empty());
    }

    #[test]
    fn syncs_counted_and_delta_since_matches_manual_subtraction() {
        let s = IoStats::new_shared();
        s.record_sync();
        let before = s.snapshot();
        s.record_sync();
        s.record_read();
        assert_eq!(s.delta_since(&before), s.snapshot().since(&before));
        assert_eq!(s.delta_since(&before).syncs, 1);
        assert_eq!(s.snapshot().syncs, 2);
    }
}
